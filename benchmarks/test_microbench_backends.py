"""Microbenchmarks: storage backend comparison.

Measures the three StorageBackend implementations on the ingest and
query patterns the Collect Agent generates, quantifying what the
wide-column design buys over the SQLite alternative (the paper's
argument for Cassandra-style storage: "high ingest and retrieval
performance for this kind of streaming data", section 3.1).
"""

import pytest

from repro.core.sid import SensorId
from repro.storage.cluster import StorageCluster
from repro.storage.memory import MemoryBackend
from repro.storage.node import StorageNode
from repro.storage.sqlite import SqliteBackend

SIDS = [SensorId.from_codes([1, i]) for i in range(1, 51)]
BATCH = [
    (SIDS[i % 50], 1_000_000 * (i // 50), i, 0) for i in range(5_000)
]  # 100 readings per sensor, interleaved like agent traffic


def make_backend(kind: str):
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        return SqliteBackend(":memory:")
    return StorageCluster([StorageNode("a"), StorageNode("b")])


@pytest.mark.parametrize("kind", ["memory", "sqlite", "cluster"])
class TestIngest:
    def test_insert_batch_5k(self, benchmark, kind):
        def run():
            backend = make_backend(kind)
            count = backend.insert_batch(BATCH)
            backend.close()
            return count

        assert benchmark(run) == 5_000


@pytest.mark.parametrize("kind", ["memory", "sqlite", "cluster"])
class TestQuery:
    def test_range_query_after_bulk_load(self, benchmark, kind):
        backend = make_backend(kind)
        backend.insert_batch(BATCH)
        backend.flush()

        def run():
            total = 0
            for sid in SIDS[:10]:
                ts, _vals = backend.query(sid, 0, 200_000_000)
                total += ts.size
            return total

        assert benchmark(run) == 10 * 100
        backend.close()
