"""Ablation: storage replication factor.

The paper picks Cassandra for "its data distribution mechanism that
allows us to distribute a single database over multiple server nodes
... either for redundancy, scalability, or both" (section 3.3).  This
bench quantifies the redundancy half of that trade: write
amplification and real ingest cost as the replication factor grows,
and the availability it buys (a subtree remains readable from a
surviving replica).
"""

import pytest

from conftest import emit, format_table
from repro.core.sid import SensorId
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode
from repro.storage.partitioner import HierarchicalPartitioner

SIDS = [SensorId.from_codes([1, i, 1]) for i in range(1, 33)]
BATCH = [(SIDS[i % 32], i // 32, i, 0) for i in range(4_000)]


def ingest(replication: int):
    nodes = [StorageNode(f"n{i}") for i in range(3)]
    cluster = StorageCluster(
        nodes,
        partitioner=HierarchicalPartitioner(3, levels=2),
        replication=replication,
    )
    cluster.insert_batch(BATCH)
    return cluster


def test_replication_write_amplification(benchmark):
    rows = []
    clusters = {}
    for rf in (1, 2, 3):
        cluster = ingest(rf)
        clusters[rf] = cluster
        rows.append([f"RF={rf}", cluster.row_count, f"{cluster.row_count / len(BATCH):.1f}x"])
    benchmark.pedantic(ingest, args=(2,), rounds=3, iterations=1)
    emit(
        "Ablation: replication factor vs stored rows (4k readings, 3 nodes)",
        format_table(["Config", "Total rows", "Write amplification"], rows),
    )
    assert clusters[1].row_count == len(BATCH)
    assert clusters[2].row_count == 2 * len(BATCH)
    assert clusters[3].row_count == 3 * len(BATCH)


def test_replication_survives_node_loss(benchmark):
    def run():
        cluster = ingest(2)
        # "Lose" the primary of a subtree: blank the owning node and
        # read from the surviving replica ring position.
        victim_sid = SIDS[0]
        owner = cluster.partitioner.node_for(victim_sid)
        cluster.nodes[owner] = StorageNode(f"n{owner}-replaced")
        # Reads walk the replica list; with the primary empty the
        # second replica still holds everything.
        replicas = cluster.partitioner.replicas_for(victim_sid, 2)
        survivor = cluster.nodes[replicas[1]]
        ts, vals = survivor.query(victim_sid, 0, 10**9)
        return ts.size

    readings_per_sensor = len(BATCH) // 32
    assert benchmark(run) == readings_per_sensor


def test_rf1_loses_data_on_node_loss(benchmark):
    def run():
        cluster = ingest(1)
        victim_sid = SIDS[0]
        owner = cluster.partitioner.node_for(victim_sid)
        cluster.nodes[owner] = StorageNode(f"n{owner}-replaced")
        ts, _ = cluster.query(victim_sid, 0, 10**9)
        return ts.size

    assert benchmark(run) == 0  # the redundancy argument, negatively
