"""Microbenchmarks: streaming-analytics overhead on the ingest path.

The analytics layer runs inline in the Collect Agent (paper section 9
design), so its per-reading cost adds directly to ingest.  These
benches measure that cost for representative operator sets and for the
pattern-matching fan-out.
"""

from repro.analytics import (
    Aggregator,
    AnalyticsManager,
    EmaSmoother,
    MovingAverage,
    ThresholdAlarm,
    ZScoreDetector,
)
from repro.common.timeutil import NS_PER_SEC
from repro.core.sensor import SensorReading


def _feeder(manager, topics):
    state = {"t": 0}

    def feed_round():
        state["t"] += NS_PER_SEC
        for i, topic in enumerate(topics):
            manager.feed(topic, SensorReading(state["t"], 100 + i))
        return len(topics)

    return feed_round


class TestAnalyticsOverhead:
    def test_passthrough_no_matching_operator(self, benchmark):
        manager = AnalyticsManager()
        manager.add_operator(MovingAverage("ma", ["/elsewhere/#"], window=5))
        feed = _feeder(manager, [f"/node/g/s{i}" for i in range(100)])
        assert benchmark(feed) == 100

    def test_smoothing_100_sensors(self, benchmark):
        manager = AnalyticsManager()
        manager.add_operator(EmaSmoother("ema", ["/node/#"], alpha=0.2))
        feed = _feeder(manager, [f"/node/g/s{i}" for i in range(100)])
        assert benchmark(feed) == 100

    def test_full_stack_of_operators(self, benchmark):
        manager = AnalyticsManager()
        manager.add_operator(MovingAverage("ma", ["/node/#"], window=10))
        manager.add_operator(Aggregator("agg", ["/node/#"], func="sum"))
        manager.add_operator(ZScoreDetector("z", ["/node/#"], window=20))
        manager.add_operator(ThresholdAlarm("cap", ["/node/#"], high=10**9))
        feed = _feeder(manager, [f"/node/g/s{i}" for i in range(100)])
        assert benchmark(feed) == 100

    def test_zscore_detector_single_sensor(self, benchmark):
        detector = ZScoreDetector("z", ["#"], window=30)
        state = {"t": 0}

        def one():
            state["t"] += NS_PER_SEC
            return detector.process("/s", SensorReading(state["t"], 100))

        benchmark(one)
