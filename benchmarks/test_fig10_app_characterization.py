"""Figure 10 / case study 2: application characterization.

Paper: four CORAL-2 applications run on one CooLMUC-3 (KNL) node while
DCDB samples at 100 ms; the probability density of per-core retired
instructions per Watt separates the applications — Kripke and
Quicksilver high-mean and single-trend, LAMMPS and AMG lower with
multiple trends (dynamic phase behaviour).

Regeneration runs the real monitoring path: each application's
workload model drives the perfevents plugin's counter source
(instructions, published as deltas at 100 ms) alongside a node power
sensor; readings flow through the Pusher/Collect Agent into storage;
the instructions-per-Watt series is computed from *queried* data and
its KDE modality is asserted.
"""

import numpy as np
import pytest

from conftest import emit, format_table
from repro.analysis import distribution_modes, kde_pdf
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.libdcdb.api import DCDBClient
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.plugins.perfevents import PerfGroup, PerfSensor, SyntheticPerfSource
from repro.simulation.workloads import CORAL2_APPS
from repro.storage import MemoryBackend

DURATION_S = 600
INTERVAL_MS = 100
CORES = 64  # KNL node


def run_app(app_name: str) -> np.ndarray:
    """Monitor one application through the pipeline; return IPW series."""
    app = CORAL2_APPS[app_name]
    clock = SimClock(0)
    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    pusher = Pusher(
        PusherConfig(mqtt_prefix=f"/cm3/node0/{app_name}"),
        client=InProcClient("p", hub),
        clock=clock,
    )
    # Build the perf group programmatically so the workload's rate
    # function drives the counter source (one aggregated
    # instructions counter standing for the per-core average, plus a
    # power "sensor" derived from the same phase model).
    rate_fn = app.perf_rate_fn(seed=42)
    source = SyntheticPerfSource(rate_fn=rate_fn)
    group = PerfGroup(
        "instr", interval_ns=INTERVAL_MS * 1_000_000, source=source
    )
    sensor = PerfSensor(cpu=0, event="instructions", name="instr", mqtt_suffix="/instr")
    sensor.metadata.delta = True
    group.add_sensor(sensor)

    _, _, power_trace = app.trace(DURATION_S + 5, INTERVAL_MS, seed=42)

    from repro.core.pusher.plugin import SensorGroup, PluginSensor

    class PowerGroup(SensorGroup):
        def read_raw(self, timestamp):
            idx = min(int(timestamp // (INTERVAL_MS * 1_000_000)) - 1, power_trace.size - 1)
            return [int(round(power_trace[idx] * 1000.0))]  # mW resolution

    power_group = PowerGroup("power", interval_ns=INTERVAL_MS * 1_000_000)
    power_group.add_sensor(PluginSensor("node_power", "/power"))

    from repro.core.pusher.plugin import Plugin
    from repro.core.pusher.registry import register_plugin
    from repro.plugins.tester import TesterConfigurator

    plugin = Plugin(name="charL", configurator=TesterConfigurator(), groups=[group, power_group])
    pusher.plugins["char"] = plugin
    for g in plugin.groups:
        for s in g.sensors:
            pusher._topics[s] = pusher.config.mqtt_prefix + s.mqtt_suffix
    pusher.client.connect()
    pusher.start_plugin("char")
    pusher.advance_to(DURATION_S * NS_PER_SEC)

    dcdb = DCDBClient(backend)
    prefix = f"/cm3/node0/{app_name}"
    ts_i, instr = dcdb.query(f"{prefix}/instr", 0, DURATION_S * NS_PER_SEC)
    ts_p, power = dcdb.query(f"{prefix}/power", 0, DURATION_S * NS_PER_SEC)
    # Align: instruction deltas start one interval late.
    n = min(instr.size, power.size)
    instr, power = instr[-n:], power[-n:]
    # Per-100ms instruction deltas -> per-second rate; power stored in mW.
    instr_rate = instr * (1000.0 / INTERVAL_MS)
    power_w = power / 1000.0
    return instr_rate / power_w


def run_all():
    return {name: run_app(name) for name in CORAL2_APPS}


def test_fig10_shape(benchmark):
    series = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    modality = {}
    for name, ipw in series.items():
        modes = distribution_modes(ipw)
        modality[name] = modes
        rows.append(
            [
                name,
                f"{ipw.mean():.3g}",
                f"{ipw.std():.3g}",
                len(modes),
                ", ".join(f"{m:.3g}" for m in modes),
            ]
        )
    emit(
        "Figure 10: instructions-per-Watt distributions (100 ms sampling, KNL node)",
        format_table(["Application", "Mean IPW", "Std", "Modes", "Mode locations"], rows),
    )
    means = {name: ipw.mean() for name, ipw in series.items()}
    # Kripke & Quicksilver high computational density.
    assert means["kripke"] > 2.0 * means["lammps"]
    assert means["kripke"] > 2.0 * means["amg"]
    assert means["quicksilver"] > 1.5 * means["lammps"]
    assert means["quicksilver"] > 1.5 * means["amg"]
    # Paper's axis: everything within 0 .. 4.5e5 IPW.
    for name, ipw in series.items():
        assert 0 <= ipw.min() and ipw.max() < 4.5e5, name
    # Single trend vs multiple trends.
    assert len(modality["kripke"]) == 1
    assert len(modality["quicksilver"]) == 1
    assert len(modality["lammps"]) >= 2
    assert len(modality["amg"]) >= 2
    # The KDE itself is well-formed (a probability density).
    grid, density = kde_pdf(series["amg"])
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    assert trapezoid(density, grid) == pytest.approx(1.0, abs=0.05)
