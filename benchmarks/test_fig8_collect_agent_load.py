"""Figure 8: Collect Agent CPU load under concurrent Pushers.

Paper: tester Pushers on 1-50 hosts, each sampling 10-10 000 sensors
at 1 s.  Findings: a single core saturates only at 50 hosts x 1000
sensors; the worst case (50 x 10 000 = 500 000 inserts/s) averages
~900 % CPU, i.e. nine fully-loaded cores.

Two parts: (1) the calibrated load model regenerates the figure's
series and asserts the anchors; (2) the *real* Python Collect Agent
ingests a 50-host x 1000-sensor minute of traffic through the
in-process transport, verifying the pipeline sustains Figure 8's
message pattern losslessly (throughput of this reproduction itself is
reported by the microbenchmarks).
"""

import pytest

from conftest import emit, format_table
from repro.simulation.agentload import AgentLoadModel
from repro.simulation.simcluster import SimClusterConfig, SimulatedCluster

HOSTS = (1, 2, 5, 10, 20, 50)
SENSORS = (10, 100, 1000, 5000, 10_000)


def run_fig8_model():
    model = AgentLoadModel()
    return {
        (h, s): model.cpu_load_measured(h, s) for h in HOSTS for s in SENSORS
    }


def test_fig8_shape(benchmark):
    loads = benchmark(run_fig8_model)
    rows = [
        [f"{h} hosts"] + [f"{loads[(h, s)]:.1f}" for s in SENSORS] for h in HOSTS
    ]
    emit(
        "Figure 8: Collect Agent per-core CPU load [%] by hosts x sensors (1 s interval)",
        format_table(["Hosts"] + [str(s) for s in SENSORS], rows),
    )
    # Single-core saturation appears only at 50 hosts for <=1000 sensors.
    for h in HOSTS[:-1]:
        for s in (10, 100, 1000):
            assert loads[(h, s)] < 100.0, (h, s)
    assert 90.0 <= loads[(50, 1000)] <= 140.0
    # Worst case: ~900% = nine cores at 500k inserts/s.
    assert loads[(50, 10_000)] == pytest.approx(900.0, abs=100.0)
    # Monotone in both axes.
    for s in SENSORS:
        series = [loads[(h, s)] for h in HOSTS]
        assert series == sorted(series)


def test_fig8_real_agent_ingests_50_host_pattern(benchmark):
    """The actual Collect Agent handles the 50x1000 pattern losslessly."""

    def run():
        sim = SimulatedCluster(
            SimClusterConfig(hosts=50, sensors_per_host=1000, interval_ms=1000)
        )
        stored = sim.run(5)  # five 1 s cycles of 50,000 readings
        return sim, stored

    sim, stored = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = sim.expected_readings(5)
    emit(
        "Figure 8 pipeline check: real agent, 50 hosts x 1000 sensors x 5 s",
        [
            f"readings stored: {stored} (expected {expected})",
            f"decode errors:   {sim.agent.decode_errors}",
            f"distinct topics: {len(sim.agent.sid_mapper)}",
        ],
    )
    assert stored == expected == 250_000
    assert sim.agent.decode_errors == 0
    assert len(sim.agent.sid_mapper) == 50_000
