"""Microbenchmarks of this reproduction's own components.

These quantify the Python implementation itself with pytest-benchmark
(real measured time, not the calibrated model): MQTT codec, topic
routing, SID translation, payload framing, storage ingest and query,
one full Pusher collection cycle, and virtual-sensor evaluation.
"""

import numpy as np

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core import payload as payload_mod
from repro.core.sensor import SensorReading
from repro.core.sid import SensorId, SidMapper
from repro.mqtt import packets as pkt
from repro.mqtt.topics import SubscriptionTree
from repro.storage.node import StorageNode


class TestMqttCodec:
    def test_publish_encode(self, benchmark):
        packet = pkt.Publish(
            topic="/hpc/rack03/chassis1/node17/cpu12/instructions",
            payload=b"\x00" * 16,
            qos=1,
            packet_id=77,
        )
        benchmark(packet.encode)

    def test_publish_decode(self, benchmark):
        data = pkt.Publish(
            topic="/hpc/rack03/chassis1/node17/cpu12/instructions",
            payload=b"\x00" * 16,
            qos=1,
            packet_id=77,
        ).encode()
        benchmark(pkt.decode_packet, data)

    def test_stream_decoder_bulk(self, benchmark):
        # 1000 readings' worth of publishes in one TCP chunk.
        chunk = b"".join(
            pkt.Publish(topic=f"/s/{i % 50}", payload=b"\x00" * 16).encode()
            for i in range(1000)
        )

        def run():
            decoder = pkt.StreamDecoder()
            return len(decoder.feed(chunk))

        assert benchmark(run) == 1000


class TestTopicRouting:
    def test_subscription_match_large_tree(self, benchmark):
        tree = SubscriptionTree()
        for rack in range(20):
            for node in range(20):
                tree.subscribe(f"/hpc/rack{rack}/node{node}/#", f"s{rack}-{node}")
        tree.subscribe("/hpc/#", "storage")
        result = benchmark(tree.match, "/hpc/rack7/node13/cpu5/instructions")
        assert set(result.values()) == {0}
        assert len(result) == 2


class TestSidTranslation:
    def test_topic_to_sid_cached(self, benchmark):
        mapper = SidMapper()
        for i in range(5000):
            mapper.sid_for_topic(f"/hpc/rack{i % 20}/node{i % 100}/s{i}")
        topic = "/hpc/rack7/node42/s1234"
        mapper.sid_for_topic(topic)
        benchmark(mapper.sid_for_topic, topic)

    def test_topic_to_sid_first_sight(self, benchmark):
        counter = [0]

        def register():
            mapper = SidMapper()
            counter[0] += 1
            return mapper.sid_for_topic(f"/a/b/c/new{counter[0]}")

        benchmark(register)


class TestPayloadFraming:
    def test_encode_single(self, benchmark):
        benchmark(payload_mod.encode_reading, 1_700_000_000_000_000_000, 42)

    def test_decode_batch_of_60(self, benchmark):
        readings = [SensorReading(i * NS_PER_SEC, i) for i in range(60)]
        payload = payload_mod.encode_readings(readings)
        assert len(benchmark(payload_mod.decode_readings, payload)) == 60


class TestStorage:
    def test_insert_batch_10k(self, benchmark):
        sid = SensorId.from_codes([1, 2, 3])
        items = [(sid, t, t, 0) for t in range(10_000)]

        def run():
            node = StorageNode(flush_threshold=1_000_000)
            return node.insert_batch(items)

        assert benchmark(run) == 10_000

    def test_query_100k_rows(self, benchmark):
        sid = SensorId.from_codes([1, 2, 3])
        node = StorageNode()
        node.insert_batch([(sid, t, t, 0) for t in range(100_000)])
        node.flush()

        def run():
            ts, vals = node.query(sid, 25_000, 75_000)
            return ts.size

        assert benchmark(run) == 50_001
        if benchmark.enabled:
            # The zero-copy searchsorted path must beat the pre-change
            # merge (always concatenate + argsort + dedup), kept
            # in-test as the reference so the gate is machine-independent.
            import time as time_mod

            from test_query_path import legacy_node_query

            legacy_seconds = float("inf")
            for _ in range(5):
                t0 = time_mod.perf_counter()
                legacy_node_query(node, sid, 25_000, 75_000)
                legacy_seconds = min(legacy_seconds, time_mod.perf_counter() - t0)
            new_seconds = benchmark.stats.stats.min
            print(
                f"\nquery 100k rows: legacy {legacy_seconds * 1e6:.0f} us, "
                f"pruned {new_seconds * 1e6:.0f} us "
                f"({legacy_seconds / new_seconds:.1f}x)"
            )
            assert new_seconds < legacy_seconds

    def test_compaction_of_8_segments(self, benchmark):
        sid = SensorId.from_codes([1, 1])

        def run():
            node = StorageNode()
            for segment in range(8):
                node.insert_batch(
                    [(sid, segment * 10_000 + t, t, 0) for t in range(10_000)]
                )
                node.flush()
            node.compact()
            return node.segment_count

        assert benchmark(run) == 1


class TestPipeline:
    def test_full_pusher_cycle_1000_sensors(self, benchmark):
        """One synchronized collection+publish cycle at Figure-5 scale."""
        from repro.core.pusher import Pusher, PusherConfig
        from repro.mqtt.inproc import InProcClient, InProcHub

        hub = InProcHub(allow_subscribe=False)
        clock = SimClock(0)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/bench/h0"),
            client=InProcClient("p", hub),
            clock=clock,
        )
        pusher.load_plugin("tester", "group g { interval 1000\n numSensors 1000 }")
        pusher.client.connect()
        pusher.start_plugin("tester")
        state = {"t": 0}

        def cycle():
            state["t"] += NS_PER_SEC
            return pusher.advance_to(state["t"])

        assert benchmark(cycle) == 1

    def test_agent_ingest_throughput(self, benchmark):
        """Batched async ingest vs synchronous per-message writes (Fig. 8).

        The paper's Collect Agent reaches millions of inserts/s because
        readings are staged and written to Cassandra in large
        asynchronous batches.  This benchmark reproduces that
        comparison on a replicated 4-node cluster under the Figure-8
        workload shape (many single-reading publishes): the batched
        path must sustain at least 2x the synchronous throughput.
        The measured time includes the drain, so every reading is
        durable inside the timed region.
        """
        import time as time_mod

        from repro.core.collectagent import CollectAgent, WriterConfig
        from repro.mqtt.inproc import InProcClient, InProcHub
        from repro.storage.cluster import StorageCluster
        from repro.storage.node import StorageNode

        MESSAGES = 2000

        def build(writer_config):
            hub = InProcHub(allow_subscribe=False)
            nodes = [
                StorageNode(f"n{i}", flush_threshold=100_000_000) for i in range(4)
            ]
            cluster = StorageCluster(nodes, replication=2)
            agent = CollectAgent(
                cluster,
                broker=hub,
                writer_config=writer_config,
                trace_sample_every=0,
            )
            client = InProcClient("p", hub)
            client.connect()
            payloads = [
                (f"/t/h{i % 50}/g/s{i % 200}", payload_mod.encode_reading(i * 1000, i))
                for i in range(MESSAGES)
            ]
            return agent, client, payloads

        def blast(agent, client, payloads):
            for topic, payload in payloads:
                client.publish(topic, payload)
            if agent.writer is not None:
                assert agent.writer.drain()
            return MESSAGES

        # Synchronous reference path: best of 3 after a warm-up round.
        sync_agent, sync_client, sync_payloads = build(None)
        blast(sync_agent, sync_client, sync_payloads)
        sync_seconds = min(
            self._timed(time_mod, blast, sync_agent, sync_client, sync_payloads)
            for _ in range(3)
        )
        sync_agent.stop()

        batch_agent, batch_client, batch_payloads = build(
            WriterConfig(max_batch=8192, max_delay_ns=50_000_000, queue_capacity=1 << 20)
        )
        blast(batch_agent, batch_client, batch_payloads)
        assert benchmark(blast, batch_agent, batch_client, batch_payloads) == MESSAGES
        batched_seconds = benchmark.stats.stats.min
        assert batch_agent.decode_errors == 0
        batch_agent.stop()

        speedup = sync_seconds / batched_seconds
        print(
            f"\ningest throughput: sync {MESSAGES / sync_seconds:,.0f} msg/s, "
            f"batched {MESSAGES / batched_seconds:,.0f} msg/s ({speedup:.2f}x)"
        )
        assert speedup >= 2.0, (
            f"batched ingest only {speedup:.2f}x faster than synchronous "
            f"({sync_seconds * 1e3:.1f} ms vs {batched_seconds * 1e3:.1f} ms)"
        )

    @staticmethod
    def _timed(time_mod, fn, *args):
        start = time_mod.perf_counter()
        fn(*args)
        return time_mod.perf_counter() - start


class TestVirtualSensors:
    def test_evaluate_sum_over_32_sensors(self, benchmark):
        from repro.core.sid import SidMapper
        from repro.libdcdb.api import DCDBClient
        from repro.libdcdb.virtualsensors import VirtualSensorDef
        from repro.storage.memory import MemoryBackend

        backend = MemoryBackend()
        mapper = SidMapper()
        for i in range(32):
            topic = f"/vb/node{i}/power"
            sid = mapper.sid_for_topic(topic)
            backend.put_metadata(f"sidmap{topic}", sid.hex())
            backend.insert_batch(
                [(sid, t * NS_PER_SEC, 200 + i, 0) for t in range(1, 601)]
            )
        client = DCDBClient(backend)
        client.define_virtual_sensor(
            VirtualSensorDef(name="total", expression="sum(</vb>)", unit="W")
        )

        def run():
            ts, vals = client.evaluate_virtual("total", NS_PER_SEC, 600 * NS_PER_SEC)
            return vals

        vals = benchmark(run)
        assert vals[0] == sum(200 + i for i in range(32))
