"""Figure 6: Pusher CPU load and memory usage on SuperMUC-NG nodes.

Paper: across the 25 tester configurations, (a) average per-core CPU
load peaks at ~3 % in the most intensive configuration (10 000 sensors
at 100 ms = 100 000 readings/s); (b) memory usage depends on both
sensors and interval through the cache contents, peaking at ~350 MB
and staying well below 50 MB for production-like configurations
(<= 1000 sensors).

Shape assertions: those anchors plus monotonicity in rate and the
cache-driven memory structure.  A second test validates the memory
model's mechanism against the real SensorCache implementation.
"""

import pytest

from conftest import emit, format_table
from repro.simulation.architectures import SKYLAKE
from repro.simulation.resources import ResourceModel

INTERVALS_MS = (100, 250, 500, 1000, 10_000)
SENSORS = (10, 100, 1000, 5000, 10_000)


def run_fig6():
    model = ResourceModel(SKYLAKE)
    cpu = {
        (i, s): model.cpu_load_measured(s, i) for i in INTERVALS_MS for s in SENSORS
    }
    mem = {
        (i, s): model.memory_measured(s, i) for i in INTERVALS_MS for s in SENSORS
    }
    return cpu, mem


def test_fig6_shape(benchmark):
    cpu, mem = benchmark(run_fig6)
    for title, data, unit in (
        ("Figure 6a: average per-core CPU load [%]", cpu, "%"),
        ("Figure 6b: average memory usage [MB]", mem, "MB"),
    ):
        rows = [
            [f"{interval} ms"] + [f"{data[(interval, s)]:.2f}" for s in SENSORS]
            for interval in INTERVALS_MS
        ]
        emit(title, format_table(["Interval"] + [str(s) for s in SENSORS], rows))
    # CPU anchors: ~3% at the hottest cell; <1% at rate <= 1000/s.
    assert cpu[(100, 10_000)] == pytest.approx(3.0, abs=0.5)
    assert cpu[(1000, 1000)] < 1.0
    # Memory anchors: ~350 MB hottest; < 50 MB for typical production
    # configurations (<= 1000 sensors at >= 1 s sampling).
    assert mem[(100, 10_000)] == pytest.approx(350.0, abs=40.0)
    for interval in (1000, 10_000):
        for sensors in (10, 100, 1000):
            assert mem[(interval, sensors)] < 50.0
    # Memory decreases when the same sensors sample more slowly
    # (fewer cached readings per window).
    assert mem[(100, 10_000)] > mem[(1000, 10_000)] > mem[(10_000, 10_000)]


def test_fig6_memory_mechanism_matches_sensor_cache(benchmark):
    """The model's memory slope mirrors the real cache's growth."""
    from repro.common.timeutil import NS_PER_SEC
    from repro.core.sensor import SensorCache, SensorReading

    def fill(interval_ms: int) -> int:
        cache = SensorCache(maxage_ns=120 * NS_PER_SEC)
        t, step = 0, interval_ms * 1_000_000
        # Fill well past the window to reach steady state.
        for _ in range(2 * (120_000 // interval_ms)):
            t += step
            cache.store(SensorReading(t, 1))
        return len(cache)

    steady_1000 = benchmark(fill, 1000)
    steady_100 = fill(100)
    # Cache population scales inversely with the interval: 10x faster
    # sampling -> ~10x more cached readings (the Figure 6b mechanism).
    assert steady_100 == pytest.approx(10 * steady_1000, rel=0.05)
