"""Ablation: hierarchical SID-prefix partitioning vs hash partitioning.

Paper section 4.3: the hierarchical partitioner "allows for storing a
sensor's reading on the nearest server and thus to avoid network
traffic.  The same logic is applied for queries to minimize network
traffic between the database servers by directing them directly to the
respective server."

This bench loads the same deployment (4 clusters' sensor subtrees onto
4 storage nodes) under both partitioners and measures:

* insert locality — the fraction of writes that leave the contact
  (nearest) node when each cluster writes through its own coordinator;
* query fan-out — storage nodes touched by a subtree query.
"""

import pytest

from conftest import emit, format_table
from repro.core.sid import SidMapper
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode
from repro.storage.partitioner import HashPartitioner, HierarchicalPartitioner

CLUSTERS = 4
NODES_PER_CLUSTER = 32
SENSORS_PER_NODE = 16
READINGS = 10


def build(partitioner_name: str):
    nodes = [StorageNode(f"sb{i}") for i in range(CLUSTERS)]
    if partitioner_name == "hierarchical":
        partitioner = HierarchicalPartitioner(CLUSTERS, levels=1)
    else:
        partitioner = HashPartitioner(CLUSTERS)
    mapper = SidMapper()
    # Pre-register each cluster's subtree so cluster k's sensors share
    # the level-0 component "clusterK".
    sids = {
        cluster: [
            mapper.sid_for_topic(f"/cluster{cluster}/node{n}/s{s}")
            for n in range(NODES_PER_CLUSTER)
            for s in range(SENSORS_PER_NODE)
        ]
        for cluster in range(CLUSTERS)
    }
    return nodes, partitioner, mapper, sids


def run(partitioner_name: str):
    nodes, partitioner, mapper, sids = build(partitioner_name)
    # Each cluster writes through a coordinator near its own backend:
    # with hierarchical placement, cluster k's subtree lands on node
    # assigned to its prefix -> contact that node.
    local = remote = 0
    for cluster in range(CLUSTERS):
        contact = partitioner.node_for(sids[cluster][0]) if partitioner_name == "hierarchical" else cluster
        coordinator = StorageCluster(nodes, partitioner=partitioner, contact_node=contact)
        coordinator.insert_batch(
            (sid, t, t, 0) for sid in sids[cluster] for t in range(READINGS)
        )
        local += coordinator.local_ops
        remote += coordinator.remote_ops
    # Query fan-out: scan one cluster's subtree.
    coordinator = StorageCluster(nodes, partitioner=partitioner)
    touched = set()
    original = coordinator._account
    coordinator._account = lambda idx: (touched.add(idx), original(idx))
    results = list(
        coordinator.query_prefix(sids[1][0].prefix(1), 1, 0, READINGS + 1)
    )
    assert len(results) == NODES_PER_CLUSTER * SENSORS_PER_NODE
    return local, remote, len(touched)


def test_partitioning_locality(benchmark):
    h_local, h_remote, h_touched = benchmark.pedantic(
        run, args=("hierarchical",), rounds=1, iterations=1
    )
    x_local, x_remote, x_touched = run("hash")
    rows = [
        ["hierarchical", h_local, h_remote, f"{h_remote / (h_local + h_remote):.0%}", h_touched],
        ["hash", x_local, x_remote, f"{x_remote / (x_local + x_remote):.0%}", x_touched],
    ]
    emit(
        "Ablation: storage partitioning policies (4 clusters x 512 sensors)",
        format_table(
            ["Partitioner", "Local ops", "Remote ops", "Remote fraction", "Nodes per subtree query"],
            rows,
        ),
    )
    # Hierarchical: all writes stay on the nearest server; a subtree
    # query touches exactly one node.
    assert h_remote == 0
    assert h_touched == 1
    # Hash: most writes leave the contact node; queries fan out to all.
    assert x_remote / (x_local + x_remote) > 0.5
    assert x_touched == CLUSTERS


def test_hash_balances_better_under_skew(benchmark):
    """The trade-off hashing buys: balance under skewed subtree sizes."""

    def run_skewed():
        mapper = SidMapper()
        # One huge subtree, three tiny ones.
        sids = [mapper.sid_for_topic(f"/big/n{i}/s") for i in range(1000)]
        sids += [mapper.sid_for_topic(f"/tiny{k}/n0/s") for k in range(3)]
        out = {}
        for name, partitioner in (
            ("hierarchical", HierarchicalPartitioner(4, levels=1)),
            ("hash", HashPartitioner(4)),
        ):
            counts = [0, 0, 0, 0]
            for sid in sids:
                counts[partitioner.node_for(sid)] += 1
            out[name] = max(counts) / (sum(counts) / 4)
        return out

    imbalance = benchmark(run_skewed)
    emit(
        "Ablation note: load imbalance (max/mean rows per node) under skew",
        [f"{k}: {v:.2f}x" for k, v in imbalance.items()],
    )
    assert imbalance["hash"] < 1.5
    assert imbalance["hierarchical"] > 2.0  # the skew lands on one node
