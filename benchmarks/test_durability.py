"""Microbenchmarks: cost and payoff of the durable storage engine.

Two committed gates:

* **Ingest overhead** — the WAL write path under ``fsync=interval``
  must stay within 3x of the in-memory backend on the standard 5k
  interleaved-batch ingest shape (the price of durability, bounded).
* **Compression ratio** — delta-of-delta + XOR on synthetic facility
  data (slowly drifting temperatures, step-holding power caps on a
  fixed 1 Hz interval) must reach at least :data:`MIN_RATIO` raw to
  encoded bytes; the measured ratio is recorded in the committed
  ``BENCH_durability.json`` via ``make bench-baseline``.
"""

import itertools
import random
import time

import pytest

from repro.core.sid import SensorId
from repro.storage.durable import DurableBackend
from repro.storage.memory import MemoryBackend

SIDS = [SensorId.from_codes([1, i]) for i in range(1, 51)]
BATCH = [
    (SIDS[i % 50], 1_000_000 * (i // 50), i, 0) for i in range(5_000)
]  # 100 readings per sensor, interleaved like agent traffic

#: Committed floor for the facility-data compression ratio (measured
#: ~19.7x on the reference workload; the gate leaves drift headroom).
MIN_RATIO = 12.0

NS_PER_SEC = 1_000_000_000


def _best_of(rounds, fn):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def facility_batch(seed=4242, sensors_temp=64, sensors_power=16, rows=1000):
    """Synthetic facility telemetry: the compression target workload.

    Temperatures drift a few milli-degrees per 1 Hz sample; power caps
    hold a setpoint and step occasionally — the two dominant shapes in
    the paper's infrastructure monitoring data.
    """
    rng = random.Random(seed)
    items = []
    for s in range(sensors_temp):
        sid = SensorId.from_codes([3, 1, s + 1])
        v = rng.randint(40_000, 60_000)
        for t in range(rows):
            v += rng.randint(-3, 3)
            items.append((sid, t * NS_PER_SEC, v, 0))
    for s in range(sensors_power):
        sid = SensorId.from_codes([3, 2, s + 1])
        v = rng.choice([100_000, 150_000, 200_000])
        for t in range(rows):
            if rng.random() < 0.01:
                v = rng.choice([100_000, 150_000, 200_000])
            items.append((sid, t * NS_PER_SEC, v, 0))
    return items


class TestDurableIngest:
    def test_insert_batch_5k_durable(self, benchmark, tmp_path):
        """Durable ingest (WAL framing + group commit, fsync=interval)
        vs the in-memory baseline.  Gate: <= 3x when timing is armed."""
        fresh = itertools.count()

        def run_durable():
            backend = DurableBackend(
                tmp_path / f"run{next(fresh)}", fsync="interval"
            )
            count = backend.insert_batch(BATCH)
            backend.commit_durable()
            backend.close()
            return count

        assert benchmark(run_durable) == 5_000
        if benchmark.enabled:

            def run_memory():
                backend = MemoryBackend()
                backend.insert_batch(BATCH)
                backend.close()

            memory_seconds = _best_of(5, run_memory)
            durable_seconds = benchmark.stats.stats.min
            overhead = durable_seconds / memory_seconds
            print(
                f"\ndurable ingest 5k: {durable_seconds * 1e3:.2f} ms vs "
                f"memory {memory_seconds * 1e3:.2f} ms ({overhead:.2f}x)"
            )
            assert overhead <= 3.0, (
                f"durable ingest {overhead:.2f}x over memory (gate: 3x)"
            )


class TestCompressionRatio:
    def test_facility_data_ratio_floor(self, benchmark, tmp_path):
        """Seal the facility workload into a segment file and gate the
        measured raw-to-encoded ratio (asserted in every mode — the
        ratio is deterministic, only the timing needs --benchmark-only)."""
        items = facility_batch()
        fresh = itertools.count()

        def seal():
            backend = DurableBackend(
                tmp_path / f"ratio{next(fresh)}",
                name="ratio",
                fsync="off",
                flush_threshold=10**9,
            )
            backend.insert_batch(items)
            backend.flush()
            ratio = backend.metrics.value(
                "dcdb_segment_compression_ratio", {"node": "ratio"}
            )
            backend.close()
            return ratio

        ratio = benchmark(seal)
        assert ratio >= MIN_RATIO, (
            f"compression ratio {ratio:.2f}x under the committed "
            f"{MIN_RATIO}x floor"
        )
        benchmark.extra_info["compression_ratio"] = round(ratio, 2)
        benchmark.extra_info["min_ratio_gate"] = MIN_RATIO
        benchmark.extra_info["rows"] = len(items)
