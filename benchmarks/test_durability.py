"""Microbenchmarks: cost and payoff of the durable storage engine.

Committed gates:

* **Ingest overhead** — the WAL write path under ``fsync=interval``
  must stay within 1.6x of the in-memory backend on the standard 5k
  interleaved-batch ingest shape (the price of durability, bounded;
  batched WAL appends and the vectorized payload framing brought the
  original 3x budget down).
* **Compression ratio** — delta-of-delta + XOR on synthetic facility
  data (slowly drifting temperatures, step-holding power caps on a
  fixed 1 Hz interval) must reach at least :data:`MIN_RATIO` raw to
  encoded bytes; the measured ratio is recorded in the committed
  ``BENCH_durability.json`` via ``make bench-baseline``.
* **Cold-window query** — a narrow windowed read over a many-file
  store must beat a decode-everything baseline by at least 3x: the
  payoff of footer ``[min_ts, max_ts]`` block pruning.
* **Bounded-memory scan** — sweeping a store larger than the block
  cache budget must hold decoded residency at or under the budget
  (assertion, not timing; runs in every mode).
"""

import itertools
import random
import time

import numpy as np
import pytest

from repro.core.sid import SensorId
from repro.storage.durable import DurableBackend, DurableNode
from repro.storage.memory import MemoryBackend

SIDS = [SensorId.from_codes([1, i]) for i in range(1, 51)]
BATCH = [
    (SIDS[i % 50], 1_000_000 * (i // 50), i, 0) for i in range(5_000)
]  # 100 readings per sensor, interleaved like agent traffic

#: Committed floor for the facility-data compression ratio (measured
#: ~19.7x on the reference workload; the gate leaves drift headroom).
MIN_RATIO = 12.0

NS_PER_SEC = 1_000_000_000


def _best_of(rounds, fn):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def facility_batch(seed=4242, sensors_temp=64, sensors_power=16, rows=1000):
    """Synthetic facility telemetry: the compression target workload.

    Temperatures drift a few milli-degrees per 1 Hz sample; power caps
    hold a setpoint and step occasionally — the two dominant shapes in
    the paper's infrastructure monitoring data.
    """
    rng = random.Random(seed)
    items = []
    for s in range(sensors_temp):
        sid = SensorId.from_codes([3, 1, s + 1])
        v = rng.randint(40_000, 60_000)
        for t in range(rows):
            v += rng.randint(-3, 3)
            items.append((sid, t * NS_PER_SEC, v, 0))
    for s in range(sensors_power):
        sid = SensorId.from_codes([3, 2, s + 1])
        v = rng.choice([100_000, 150_000, 200_000])
        for t in range(rows):
            if rng.random() < 0.01:
                v = rng.choice([100_000, 150_000, 200_000])
            items.append((sid, t * NS_PER_SEC, v, 0))
    return items


class TestDurableIngest:
    def test_insert_batch_5k_durable(self, benchmark, tmp_path):
        """Durable ingest (WAL framing + group commit, fsync=interval)
        vs the in-memory baseline.  Gate: <= 1.6x when timing is armed."""
        fresh = itertools.count()

        def run_durable():
            backend = DurableBackend(
                tmp_path / f"run{next(fresh)}", fsync="interval"
            )
            count = backend.insert_batch(BATCH)
            backend.commit_durable()
            backend.close()
            return count

        assert benchmark(run_durable) == 5_000
        if benchmark.enabled:

            def run_memory():
                backend = MemoryBackend()
                backend.insert_batch(BATCH)
                backend.close()

            memory_seconds = _best_of(5, run_memory)
            durable_seconds = benchmark.stats.stats.min
            overhead = durable_seconds / memory_seconds
            print(
                f"\ndurable ingest 5k: {durable_seconds * 1e3:.2f} ms vs "
                f"memory {memory_seconds * 1e3:.2f} ms ({overhead:.2f}x)"
            )
            assert overhead <= 1.6, (
                f"durable ingest {overhead:.2f}x over memory (gate: 1.6x)"
            )
            benchmark.extra_info["ingest_overhead_x"] = round(overhead, 2)


class TestCompressionRatio:
    def test_facility_data_ratio_floor(self, benchmark, tmp_path):
        """Seal the facility workload into a segment file and gate the
        measured raw-to-encoded ratio (asserted in every mode — the
        ratio is deterministic, only the timing needs --benchmark-only)."""
        items = facility_batch()
        fresh = itertools.count()

        def seal():
            backend = DurableBackend(
                tmp_path / f"ratio{next(fresh)}",
                name="ratio",
                fsync="off",
                flush_threshold=10**9,
            )
            backend.insert_batch(items)
            backend.flush()
            ratio = backend.metrics.value(
                "dcdb_segment_compression_ratio", {"node": "ratio"}
            )
            backend.close()
            return ratio

        ratio = benchmark(seal)
        assert ratio >= MIN_RATIO, (
            f"compression ratio {ratio:.2f}x under the committed "
            f"{MIN_RATIO}x floor"
        )
        benchmark.extra_info["compression_ratio"] = round(ratio, 2)
        benchmark.extra_info["min_ratio_gate"] = MIN_RATIO
        benchmark.extra_info["rows"] = len(items)


COLD_SID = SensorId.from_codes([5, 1])
COLD_ROWS = 5_000  # rows per segment file
COLD_FILES = 16


def _build_cold_store(data_dir):
    """A reopened store whose rows live only in segment files — every
    read goes through the disk block path."""
    backend = DurableBackend(data_dir, fsync="off", max_segment_files=1_000)
    for b in range(COLD_FILES):
        backend.insert_batch(
            [
                (COLD_SID, (b * COLD_ROWS + i) * NS_PER_SEC, b * COLD_ROWS + i, 0)
                for i in range(COLD_ROWS)
            ]
        )
        backend.flush()
    backend.close()


class TestColdWindowQuery:
    def test_windowed_read_beats_full_materialize(self, benchmark, tmp_path):
        """Narrow window over a 16-file store: footer pruning decodes 1
        block where the old read path decoded all 16.  Gate: >= 3x over
        a decode-everything baseline when timing is armed.  The cache
        is disabled so every round is a true cold read."""
        data_dir = tmp_path / "cold"
        _build_cold_store(data_dir)
        node = DurableNode(
            "cold",
            data_dir=data_dir,
            fsync="off",
            max_segment_files=1_000,
            block_cache_bytes=0,
        )
        start = (3 * COLD_ROWS + 100) * NS_PER_SEC
        end = (3 * COLD_ROWS + 600) * NS_PER_SEC

        def windowed():
            ts, _ = node.query(COLD_SID, start, end)
            return int(ts.size)

        assert benchmark(windowed) == 501
        if benchmark.enabled:
            refs = list(node._disk_refs[COLD_SID])

            def materialize_all():
                parts = [sf.read(COLD_SID) for sf in refs]
                ts = np.concatenate([p[0] for p in parts])
                vals = np.concatenate([p[1] for p in parts])
                lo = int(np.searchsorted(ts, start, side="left"))
                hi = int(np.searchsorted(ts, end, side="right"))
                return int(ts[lo:hi].size), vals

            assert materialize_all()[0] == 501
            baseline_seconds = _best_of(5, materialize_all)
            cold_seconds = benchmark.stats.stats.min
            speedup = baseline_seconds / cold_seconds
            print(
                f"\ncold window: pruned {cold_seconds * 1e3:.2f} ms vs "
                f"materialize-all {baseline_seconds * 1e3:.2f} ms "
                f"({speedup:.1f}x)"
            )
            assert speedup >= 3.0, (
                f"pruned cold read only {speedup:.1f}x over full "
                "materialization (gate: 3x)"
            )
            benchmark.extra_info["cold_window_speedup_x"] = round(speedup, 2)
        node.close()


class TestBoundedMemoryScan:
    def test_scan_larger_than_budget_stays_bounded(self, tmp_path):
        """Sweep every window of a store whose decoded size (~1.9 MB)
        dwarfs the cache budget (256 KB): residency must never exceed
        the budget and old blocks must actually get evicted."""
        data_dir = tmp_path / "scan"
        _build_cold_store(data_dir)
        budget = 256 * 1024
        node = DurableNode(
            "scan",
            data_dir=data_dir,
            fsync="off",
            max_segment_files=1_000,
            block_cache_bytes=budget,
        )
        total = 0
        for b in range(COLD_FILES):
            w0 = b * COLD_ROWS * NS_PER_SEC
            w1 = ((b + 1) * COLD_ROWS - 1) * NS_PER_SEC
            ts, vals = node.query(COLD_SID, w0, w1)
            total += int(ts.size)
            assert vals[0] == b * COLD_ROWS
            resident = node.metrics.value(
                "dcdb_segment_block_cache_bytes", {"node": "scan"}
            )
            assert resident <= budget, (
                f"cache grew to {resident} bytes over the {budget} budget"
            )
        assert total == COLD_FILES * COLD_ROWS
        assert (
            node.metrics.value(
                "dcdb_segment_block_cache_evictions_total", {"node": "scan"}
            )
            > 0
        ), "scan never evicted — store fit in the budget, test is vacuous"
        node.close()
