"""Rollup-tier read path: dashboard-scale aggregate query bursts.

A dashboard refresh fires hundreds of 30-day aggregate queries at
once.  This benchmark replays such a burst — ~1000 concurrent
``query_aggregate`` calls over staggered 30-day windows against a
two-node cluster — once through the tier-aware planner (the sealed
middle of every window served from the 1h rollup series) and once
through the pre-change raw-scan path kept in-test (full raw fetch +
bucket aggregation per query, the only option before the planner
existed).

Latency is measured per query *from burst submission*, so it counts
queue time plus service time — what a dashboard user actually waits
behind a refresh storm.  Pure service-time percentiles are useless
here: under a thread pool the p99 of a 0.3 ms task is dominated by
GIL scheduling noise (~switch-interval x workers for either path),
while the burst-relative percentile tracks the real work ratio.

Gate (armed under ``make bench`` / ``make bench-baseline``): burst
p99 of the tier-served path must be >= 5x faster than the raw-scan
baseline.  Bit-identity of tier-served results against raw-computed
aggregates is asserted in every mode, including the
``--benchmark-disable`` smoke that rides along with ``make test``.
"""

import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import numpy as np
import pytest

from repro.common.timeutil import NS_PER_SEC
from repro.core.sid import SidMapper
from repro.libdcdb.api import AGGREGATIONS, DCDBClient
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode
from repro.storage.rollup import RollupEngine, aggregate_buckets

DAY_S = 86400
SPAN_S = 32 * DAY_S  # stored history
WINDOW_S = 30 * DAY_S  # every query spans 30 days
SENSORS = 4
MAX_POINTS = 200  # 30 d / 200 -> the 1h tier, regrouped to 4h buckets
WORKERS = 16
INGEST_CHUNKS = 8  # flush between chunks: the raw scan merges segments


@pytest.fixture(scope="module")
def dataset(request):
    """Two storage nodes, 30+ days of history, rollups sealed at ingest.

    The smoke run (``--benchmark-disable``) ingests at half the rate
    and fires a smaller burst; the timing gate always runs against the
    full-size dataset.
    """
    smoke = bool(request.config.getoption("benchmark_disable", default=False))
    cadence_s = 40 if smoke else 20
    queries = 200 if smoke else 1000
    nodes = [
        StorageNode(f"node{i}", flush_threshold=10**9, max_segments_per_sensor=64)
        for i in range(2)
    ]
    cluster = StorageCluster(nodes, replication=1)
    mapper = SidMapper()
    engine = RollupEngine(cluster)
    client = DCDBClient(cluster, cache_size=0)
    rng = np.random.default_rng(7)
    topics = [f"/bench/rollup/node{i}/power" for i in range(SENSORS)]
    rows = SPAN_S // cadence_s
    per_chunk = rows // INGEST_CHUNKS
    for topic in topics:
        sid = mapper.sid_for_topic(topic)
        cluster.put_metadata(f"sidmap{topic}", sid.hex())
        timestamps = np.arange(rows, dtype=np.int64) * (cadence_s * NS_PER_SEC)
        values = rng.integers(-(10**6), 10**6, size=rows, dtype=np.int64)
        for chunk in range(INGEST_CHUNKS):
            lo = chunk * per_chunk
            hi = (chunk + 1) * per_chunk if chunk < INGEST_CHUNKS - 1 else rows
            items = [
                (sid, int(t), int(v), 0)
                for t, v in zip(timestamps[lo:hi], values[lo:hi])
            ]
            cluster.insert_batch(items)
            engine.observe(items)
            for node in nodes:
                node.flush()
    return SimpleNamespace(
        client=client, topics=topics, queries=queries, rows_per_sensor=rows
    )


def _window(i):
    """Staggered, bucket-misaligned 30-day window for query ``i``."""
    start = (i % 173) * 977 * NS_PER_SEC + (i % 7) * 13
    return start, start + WINDOW_S * NS_PER_SEC - (i % 11) * 17


def _query_mix(data):
    """The burst's (topic, start, end, aggregation, plan) schedule."""
    mix = []
    for i in range(data.queries):
        topic = data.topics[i % len(data.topics)]
        start, end = _window(i)
        aggregation = AGGREGATIONS[i % len(AGGREGATIONS)]
        plan = data.client.plan_aggregate(topic, start, end, MAX_POINTS)
        mix.append((topic, start, end, aggregation, plan))
    return mix


def _raw_reference(client, topic, start, end, bucket_ns, aggregation):
    """The pre-change dashboard aggregate: full raw scan + bucketing."""
    timestamps, raw = client.query_raw(topic, start, end)
    stats = aggregate_buckets(timestamps, raw, bucket_ns)
    return client._decode_stats(
        client.sensor_config(topic), aggregation, stats, None
    )


def _burst(pool, tasks):
    """Run ``tasks`` on the pool; per-task latency from burst start."""
    t0 = time.perf_counter()

    def timed(task):
        task()
        return time.perf_counter() - t0

    return np.array(list(pool.map(timed, tasks)))


class TestDashboardBurst:
    def test_burst_p99_and_bit_identity(self, benchmark, dataset):
        """~1000 concurrent 30-day aggregates: planner vs raw scans.

        Every query must be planned onto the 1h tier (the windows sit
        inside sealed coverage), every tier-served series must equal
        the raw-computed one bit for bit, and — when benchmarking is
        enabled — the burst p99 must beat the raw-scan baseline >= 5x.
        """
        client = dataset.client
        mix = _query_mix(dataset)
        assert all(plan.tier_label == "1h" for *_, plan in mix)

        # Bit-identity: tier-assembled aggregates vs an independent
        # raw scan, across all five aggregations and misaligned
        # window edges.  Always on, smoke mode included.
        step = max(1, dataset.queries // 25)
        for topic, start, end, aggregation, plan in mix[::step]:
            starts, values = client.query_aggregate(
                topic, start, end, aggregation, MAX_POINTS
            )
            ref_starts, ref_values = _raw_reference(
                client, topic, start, end, plan.bucket_ns, aggregation
            )
            assert np.array_equal(starts, ref_starts)
            assert np.array_equal(values, ref_values)  # exact, not approximate

        tiered_tasks = [
            (lambda t=topic, s=start, e=end, a=aggregation:
                client.query_aggregate(t, s, e, a, MAX_POINTS))
            for topic, start, end, aggregation, _ in mix
        ]
        raw_tasks = [
            (lambda t=topic, s=start, e=end, a=aggregation, b=plan.bucket_ns:
                _raw_reference(client, t, s, e, b, a))
            for topic, start, end, aggregation, plan in mix
        ]
        pool = ThreadPoolExecutor(max_workers=WORKERS)
        try:
            _burst(pool, tiered_tasks[:64])  # warm pool and code paths
            tiered_p99s = []

            def tiered_burst():
                latencies = _burst(pool, tiered_tasks)
                tiered_p99s.append(float(np.percentile(latencies, 99)))
                return latencies

            benchmark(tiered_burst)
            tier_count = 0.0
            for family in client.metrics.collect():
                if family.name == "dcdb_rollup_tier_selected_total":
                    for sample in family.samples:
                        if dict(sample.labels)["tier"] == "1h":
                            tier_count += sample.value
            assert tier_count >= dataset.queries  # tier actually served
            if benchmark.enabled:
                raw_p99 = min(
                    float(np.percentile(_burst(pool, raw_tasks), 99))
                    for _ in range(2)
                )
                tiered_p99 = min(tiered_p99s)
                speedup = raw_p99 / tiered_p99
                print(
                    f"\ndashboard burst ({dataset.queries} x 30-day aggregates, "
                    f"{dataset.rows_per_sensor} raw rows/sensor): raw-scan p99 "
                    f"{raw_p99 * 1e3:.0f} ms, tier-served p99 "
                    f"{tiered_p99 * 1e3:.0f} ms ({speedup:.2f}x)"
                )
                assert speedup >= 5.0, (
                    f"tier-served dashboard burst only {speedup:.2f}x over the "
                    f"raw-scan baseline"
                )
        finally:
            pool.shutdown()
