"""Read-path benchmarks: pruned queries, batched reads, parallel scans.

Each benchmark measures the optimized query path with pytest-benchmark
and compares it against the pre-change implementation kept in-test
(the serial per-sensor scan and the argsort-always node merge copied
from the prior revision), so the speedup gates are machine-independent
— both sides run on the same box in the same process.

``make bench-query`` smoke-runs this module with
``--benchmark-disable``; the speedup assertions only fire when
benchmarking is enabled (``make bench`` / ``make bench-baseline``).
"""

import time

import numpy as np

from repro.common.timeutil import NS_PER_SEC
from repro.core.sid import SID_BITS_PER_LEVEL, SID_LEVELS, SensorId
from repro.libdcdb.api import DCDBClient
from repro.libdcdb.virtualsensors import (
    Evaluator,
    VirtualSensorDef,
    parse_expression,
)
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode
from repro.storage.partitioner import HashPartitioner

_EMPTY = np.empty(0, dtype=np.int64)


def _best_of(rounds, fn, *args):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


# -- pre-change reference implementations ----------------------------------


def legacy_node_query(node, sid, start, end):
    """The prior revision's ``StorageNode.query``: slice every segment
    (no min/max pruning), then always concatenate + argsort + dedup —
    even when a single segment answered the query."""
    now = node._clock()
    with node._lock:
        data = node._data.get(sid)
        if data is None:
            return _EMPTY, _EMPTY
        parts_ts, parts_val = [], []
        for seg in data.segments:
            ts, vals = seg.slice(start, end, now)
            if ts.size:
                parts_ts.append(ts)
                parts_val.append(vals)
        if data.mem_ts:
            mts = np.asarray(data.mem_ts, dtype=np.int64)
            mvals = np.asarray(data.mem_val, dtype=np.int64)
            mexp = np.asarray(data.mem_exp, dtype=np.int64)
            mask = (mts >= start) & (mts <= end) & (mexp > now)
            if mask.any():
                parts_ts.append(mts[mask])
                parts_val.append(mvals[mask])
    if not parts_ts:
        return _EMPTY, _EMPTY
    ts = np.concatenate(parts_ts)
    vals = np.concatenate(parts_val)
    order = np.argsort(ts, kind="stable")
    ts, vals = ts[order], vals[order]
    if ts.size > 1:
        keep = np.empty(ts.size, dtype=bool)
        keep[:-1] = ts[1:] != ts[:-1]
        keep[-1] = True
        ts, vals = ts[keep], vals[keep]
    return ts, vals


def legacy_query_prefix(cluster, prefix, levels, start, end):
    """The prior revision's serial subtree scan: walk every node's SID
    list and issue one query round-trip per matching sensor."""
    keep_bits = SID_BITS_PER_LEVEL * levels
    mask = (
        ((1 << keep_bits) - 1) << (SID_LEVELS * SID_BITS_PER_LEVEL - keep_bits)
        if keep_bits
        else 0
    )
    seen = set()
    results = []
    for node in cluster.nodes:
        for sid in node.sids():
            if (sid.value & mask) != prefix or sid in seen:
                continue
            seen.add(sid)
            ts, vals = legacy_node_query(node, sid, start, end)
            if ts.size:
                results.append((sid, ts, vals))
    return results


def _series_map(results):
    return {s: (ts.tolist(), vals.tolist()) for s, ts, vals in results}


class TestQueryPrefixSubtree:
    def test_query_prefix_subtree(self, benchmark):
        """Parallel pruned subtree scan vs the serial per-SID loop.

        64 sensors spread over 4 nodes by hash partitioning (the
        worst-case layout: every node holds part of the subtree), 16
        time-ordered segments per sensor — a long-running deployment's
        flush history — queried over a narrow recent window that lives
        inside a single segment, the dashboard access pattern the
        time-index pruning targets: 15 of 16 segments are skipped on
        their cached bounds and the one overlapping segment is answered
        zero-copy.  The pre-change reference binary-searches every
        segment and argsorts the merge regardless.  Gate: >= 3x over
        the pre-change serial implementation.
        """
        nodes = [StorageNode(f"n{i}", flush_threshold=10**9) for i in range(4)]
        cluster = StorageCluster(nodes, partitioner=HashPartitioner(4))
        sids = [SensorId.from_codes([1, 1, leaf]) for leaf in range(1, 65)]
        rows_per_sensor = 2000
        segments = 16
        seg_rows = rows_per_sensor // segments
        for segment in range(segments):
            lo = segment * seg_rows
            cluster.insert_batch(
                [(s, t, t, 0) for s in sids for t in range(lo, lo + seg_rows)]
            )
            cluster.flush()
        prefix = SensorId.from_codes([1, 1]).value
        window = (6 * seg_rows + 10, 6 * seg_rows + 110)  # inside segment 6

        def scan():
            return list(cluster.query_prefix(prefix, 2, *window))

        results = benchmark(scan)
        assert len(results) == 64
        assert all(ts.size == 101 for _, ts, _ in results)
        legacy = legacy_query_prefix(cluster, prefix, 2, *window)
        assert _series_map(results) == _series_map(legacy)
        if benchmark.enabled:
            serial_seconds = _best_of(
                3, legacy_query_prefix, cluster, prefix, 2, *window
            )
            parallel_seconds = benchmark.stats.stats.min
            speedup = serial_seconds / parallel_seconds
            print(
                f"\nprefix scan (64 sensors / 4 nodes): serial "
                f"{serial_seconds * 1e3:.2f} ms, parallel "
                f"{parallel_seconds * 1e3:.2f} ms ({speedup:.2f}x)"
            )
            assert speedup >= 3.0, (
                f"parallel subtree scan only {speedup:.2f}x over the "
                f"pre-change serial loop"
            )


class TestClusterQueryMany:
    def test_query_many_vs_looped(self, benchmark):
        """Batched cluster read vs one query() round-trip per sensor.

        Gate from the issue: >= 2x for 64 sensors.  Both sides use the
        *current* node read path — the speedup isolates the per-call
        cluster overhead and lock round-trips that query_many
        amortizes.
        """
        nodes = [StorageNode(f"n{i}", flush_threshold=10**9) for i in range(4)]
        cluster = StorageCluster(nodes, partitioner=HashPartitioner(4), replication=2)
        sids = [SensorId.from_codes([2, 1, leaf]) for leaf in range(1, 65)]
        cluster.insert_batch([(s, t, t, 0) for s in sids for t in range(512)])
        cluster.flush()

        def looped():
            return {s: cluster.query(s, 0, 511) for s in sids}

        def batched():
            return cluster.query_many(sids, 0, 511)

        result = benchmark(batched)
        reference = looped()
        assert set(result) == set(reference)
        for s in sids:
            assert np.array_equal(result[s][0], reference[s][0])
            assert np.array_equal(result[s][1], reference[s][1])
        if benchmark.enabled:
            looped_seconds = _best_of(3, looped)
            batched_seconds = benchmark.stats.stats.min
            speedup = looped_seconds / batched_seconds
            print(
                f"\nquery_many (64 sensors): looped {looped_seconds * 1e3:.2f} ms, "
                f"batched {batched_seconds * 1e3:.2f} ms ({speedup:.2f}x)"
            )
            assert speedup >= 2.0, (
                f"cluster query_many only {speedup:.2f}x over looped query"
            )


class _SerialResolver:
    """Hides ``series_many`` so the evaluator takes its pre-change
    per-topic fetch loop — the serial reference for the benchmark."""

    def __init__(self, inner) -> None:
        self._inner = inner

    def series(self, topic, start, end):
        return self._inner.series(topic, start, end)

    def subtree_topics(self, prefix):
        return self._inner.subtree_topics(prefix)


class TestVirtualSensorEval:
    def test_virtual_sensor_eval_batched(self, benchmark):
        """Virtual-sensor aggregation with batched operand fetches.

        sum() over 32 sensors stored on a 4-node cluster: the batched
        evaluator fetches the whole subtree through one query_many
        (parallel underneath) where the pre-change path issued 32
        sequential cluster queries.  The raw cache is disabled so both
        sides hit storage every round; results must be bit-identical.
        """
        nodes = [StorageNode(f"n{i}", flush_threshold=10**9) for i in range(4)]
        cluster = StorageCluster(nodes, partitioner=HashPartitioner(4))
        client = DCDBClient(cluster, cache_size=0)
        for i in range(32):
            topic = f"/vb/node{i}/power"
            sid = SensorId.from_codes([3, 1, i + 1])
            client.register_topic(topic, sid)
            cluster.insert_batch(
                [(sid, t * NS_PER_SEC, 200 + i, 0) for t in range(1, 601)]
            )
        cluster.flush()
        client.define_virtual_sensor(
            VirtualSensorDef(name="total", expression="sum(</vb>)", unit="W")
        )
        ast = parse_expression("sum(</vb>)")
        span = (NS_PER_SEC, 600 * NS_PER_SEC)
        batched_eval = client._evaluator
        serial_eval = Evaluator(_SerialResolver(batched_eval.resolver))

        def batched():
            return batched_eval.evaluate(ast, *span)

        ts, vals, unit = benchmark(batched)
        assert vals[0] == sum(200 + i for i in range(32))
        serial_ts, serial_vals, serial_unit = serial_eval.evaluate(ast, *span)
        assert np.array_equal(ts, serial_ts)
        assert np.array_equal(vals, serial_vals)  # bit-identical
        assert unit == serial_unit
        if benchmark.enabled:
            serial_seconds = _best_of(3, serial_eval.evaluate, ast, *span)
            batched_seconds = benchmark.stats.stats.min
            speedup = serial_seconds / batched_seconds
            print(
                f"\nvirtual sum over 32 sensors: serial {serial_seconds * 1e3:.2f} ms, "
                f"batched {batched_seconds * 1e3:.2f} ms ({speedup:.2f}x)"
            )
            assert speedup >= 1.2, (
                f"batched virtual-sensor evaluation only {speedup:.2f}x over "
                f"the per-operand loop"
            )
