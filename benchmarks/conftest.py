"""Shared helpers for the experiment-regeneration benchmarks.

Every ``test_fig*`` / ``test_table*`` module regenerates one table or
figure of the paper: it computes the series through the calibrated
simulation substrate (or, where feasible, by running the real
pipeline), prints the same rows the paper reports, and asserts the
*shape* claims listed in EXPERIMENTS.md.  ``test_microbench_*`` and
``test_ablation_*`` modules quantify this Python reproduction itself.
"""

from __future__ import annotations

import sys


def emit(title: str, lines: list[str]) -> None:
    """Print a labelled experiment block (shown with pytest -s and in
    benchmark output capture)."""
    out = sys.stdout
    out.write(f"\n=== {title} ===\n")
    for line in lines:
        out.write(line + "\n")
    out.flush()


def format_table(headers: list[str], rows: list[list[object]]) -> list[str]:
    """Plain-text table formatting for experiment output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return lines
