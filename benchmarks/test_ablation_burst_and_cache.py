"""Ablations: burst-interval sweep and sensor-cache sizing.

Two design choices the paper discusses qualitatively, swept here:

* **Burst sending** (section 6.2.1): AMG performed best with Pusher
  data sent "in regular bursts twice per minute".  We sweep the burst
  interval's effect on (a) modelled AMG interference and (b) the real
  Pusher's message count per window (fewer, larger messages).

* **Sensor cache sizing** (sections 5.3, 6.2.2): the cache window
  drives the Pusher's memory footprint; the paper notes memory "can be
  further reduced by tuning the size of sensor caches".  We sweep the
  window against the real cache and the memory model.
"""

import pytest

from conftest import emit, format_table
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher import Pusher, PusherConfig
from repro.core.sensor import SensorCache, SensorReading
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.simulation.architectures import SKYLAKE
from repro.simulation.overhead import OverheadModel, PusherSetup
from repro.simulation.resources import ResourceModel
from repro.simulation.workloads import AMG


class TestBurstSweep:
    def test_message_batching_vs_burst_interval(self, benchmark):
        """Real Pusher: burst flushes trade message count for size."""

        def run(burst_every_s: int):
            hub = InProcHub(allow_subscribe=False)
            pusher = Pusher(
                PusherConfig(mqtt_prefix="/b/h0", send_mode="burst"),
                client=InProcClient("p", hub),
                clock=SimClock(0),
            )
            pusher.load_plugin("tester", "group g { interval 1000\n numSensors 100 }")
            pusher.client.connect()
            pusher.start_plugin("tester")
            t = 0
            for _ in range(60 // burst_every_s):
                t += burst_every_s * NS_PER_SEC
                pusher.advance_to(t)
                pusher.flush()
            return hub.messages_received, hub.bytes_received

        results = {}
        for burst_s in (1, 10, 30, 60):
            results[burst_s] = run(burst_s)
        benchmark.pedantic(run, args=(30,), rounds=1, iterations=1)
        rows = [
            [f"{burst_s} s", msgs, bytes_ // max(msgs, 1)]
            for burst_s, (msgs, bytes_) in results.items()
        ]
        emit(
            "Ablation: burst interval vs MQTT messages (100 sensors, 60 s)",
            format_table(["Burst every", "Messages", "Payload bytes/message"], rows),
        )
        # Same readings, fewer messages as bursts lengthen.
        assert results[60][0] < results[30][0] < results[10][0] < results[1][0]
        # 30 s bursts (paper's twice-per-minute) send 30 readings/message.
        msgs_30, bytes_30 = results[30]
        assert msgs_30 == 2 * 100
        assert bytes_30 // msgs_30 >= 30 * 16

    def test_modelled_amg_interference_vs_burst(self, benchmark):
        model = OverheadModel(SKYLAKE)

        def run():
            continuous = model.mpi_overhead_pct(
                PusherSetup(2477, 1000, send_mode="continuous"), AMG, 1024
            )
            burst = model.mpi_overhead_pct(
                PusherSetup(2477, 1000, send_mode="burst"), AMG, 1024
            )
            return continuous, burst

        continuous, burst = benchmark(run)
        assert burst < continuous
        assert burst > 0


class TestCacheSizing:
    def test_real_cache_population_vs_window(self, benchmark):
        def fill(window_s: int) -> int:
            cache = SensorCache(maxage_ns=window_s * NS_PER_SEC)
            for t in range(1, 4 * 120 + 1):
                cache.store(SensorReading(t * NS_PER_SEC, t))
            return len(cache)

        populations = {w: fill(w) for w in (30, 60, 120, 240)}
        benchmark(fill, 120)
        emit(
            "Ablation: sensor-cache window vs steady-state population (1 Hz sensor)",
            format_table(
                ["Window", "Cached readings"],
                [[f"{w} s", n] for w, n in populations.items()],
            ),
        )
        assert populations[30] == 31
        assert populations[240] == pytest.approx(8 * populations[30], rel=0.05)

    def test_memory_model_vs_window(self, benchmark):
        model = ResourceModel(SKYLAKE)

        def run():
            return {
                w: model.memory_mb(10_000, 100, cache_ms=w * 1000.0)
                for w in (30, 60, 120, 240)
            }

        memory = benchmark(run)
        emit(
            "Ablation: modelled Pusher memory vs cache window (10k sensors @ 100 ms)",
            [f"{w} s window: {mb:.0f} MB" for w, mb in memory.items()],
        )
        # Halving the default 120 s window nearly halves the hot
        # configuration's footprint — the paper's tuning lever.
        assert memory[60] < 0.6 * memory[120]
        assert memory[240] > 1.8 * memory[120]
