"""Figure 7 + Equation 1: CPU-load scaling vs sensor rate.

Paper: per-core CPU load sampled across sensor rates 10^0..10^5 /s on
the three architectures; fitted curves are "distinctly linear", with
peaks of ~3 % (Skylake) and ~8 % (KNL); below 1 % at rates <= 1000/s.
Linearity licenses Equation 1: predicting the load at any rate by
linear interpolation between two measured anchor rates.

Shape assertions: r^2 > 0.99 per architecture, the peak anchors, the
architecture ordering, and Equation 1's prediction error < 10 % at an
unseen rate.
"""

import numpy as np
import pytest

from conftest import emit, format_table
from repro.analysis import linear_fit
from repro.simulation.architectures import ARCHITECTURES
from repro.simulation.resources import ResourceModel, eq1_interpolate

# (sensors, interval_ms) pairs spanning 1 .. 100,000 readings/s.
CONFIGS = [
    (10, 10_000),
    (10, 1000),
    (100, 1000),
    (1000, 1000),
    (1000, 500),
    (5000, 1000),
    (10_000, 1000),
    (5000, 250),
    (10_000, 250),
    (10_000, 100),
]


def run_fig7():
    results = {}
    for name, arch in ARCHITECTURES.items():
        model = ResourceModel(arch)
        rates = np.array([s * 1000.0 / i for s, i in CONFIGS])
        loads = np.array([model.cpu_load_measured(s, i) for s, i in CONFIGS])
        fit = linear_fit(rates, loads)
        results[name] = (rates, loads, fit)
    return results


def test_fig7_shape(benchmark):
    results = benchmark(run_fig7)
    rows = []
    for name, (rates, loads, fit) in results.items():
        rows.append(
            [
                name,
                f"{loads.max():.2f}%",
                f"{fit.slope:.3e}",
                f"{fit.r2:.5f}",
            ]
        )
    emit(
        "Figure 7: CPU load vs sensor rate, linear fits per architecture",
        format_table(["Architecture", "Peak load", "Slope [%/(r/s)]", "r^2"], rows),
    )
    for name, (rates, loads, fit) in results.items():
        # Distinctly linear.
        assert fit.r2 > 0.99, name
        # Below 1% at 1000 readings/s.
        idx_1000 = [i for i, (s, iv) in enumerate(CONFIGS) if s * 1000 / iv == 1000.0]
        assert all(loads[i] < 1.0 for i in idx_1000)
    # Peak anchors and ordering.
    assert results["skylake"][1].max() == pytest.approx(3.0, abs=0.5)
    assert results["knl"][1].max() == pytest.approx(8.0, abs=1.0)
    assert (
        results["skylake"][1].max()
        < results["haswell"][1].max()
        < results["knl"][1].max()
    )


def test_eq1_prediction(benchmark):
    """Equation 1 predicts unseen rates from two measured anchors."""

    def run():
        errors = {}
        for name, arch in ARCHITECTURES.items():
            model = ResourceModel(arch)
            # Measure at two anchor rates a and b...
            load_a = model.cpu_load_measured(1000, 1000)  # 1e3 r/s
            load_b = model.cpu_load_measured(10_000, 100)  # 1e5 r/s
            # ...and predict an unseen rate s = 37,000 r/s.
            predicted = eq1_interpolate(1e3, load_a, 1e5, load_b, 37_000.0)
            actual = model.cpu_load_pct(37_000, 1000)
            errors[name] = abs(predicted - actual) / actual
        return errors

    errors = benchmark(run)
    emit(
        "Equation 1: relative prediction error at an unseen 37k r/s",
        [f"{name}: {err * 100:.2f}%" for name, err in errors.items()],
    )
    # Anchor measurements carry ~5 % ps-sampling noise, so allow the
    # prediction a noise-dominated margin.
    for name, err in errors.items():
        assert err < 0.15, name
