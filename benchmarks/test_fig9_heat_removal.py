"""Figure 9 / case study 1: efficiency of heat removal on CooLMUC-3.

Paper: one out-of-band Pusher (REST + SNMP plugins) and one Collect
Agent on management servers monitor the warm-water cooling circuit;
virtual sensors aggregate rack power meters and compute the ratio of
heat removed to electrical power.  Findings: the ratio is ~90 % and
does not degrade as inlet water temperature rises (insulated racks).

Regeneration runs the *entire stack*: the physics model installs its
channels into simulated SNMP/REST devices; the real SNMP and REST
plugins sample them out-of-band at 1-minute intervals over a simulated
25-hour inlet sweep; readings flow through MQTT framing into storage;
virtual sensors compute total power, heat removed (flow x rho x cp x
deltaT) and the efficiency ratio; assertions run on the queried
series.
"""

import numpy as np
import pytest

from conftest import emit, format_table
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.devices import DeviceModel, RestDeviceServer, SnmpAgentServer
from repro.libdcdb.api import DCDBClient, SensorConfig
from repro.libdcdb.virtualsensors import VirtualSensorDef
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.simulation.facility import WATER_CP, WATER_DENSITY, CoolingCircuitModel
from repro.storage import MemoryBackend

INTERVAL_S = 60
DURATION_H = 25.0


def build_and_run():
    clock = SimClock(0)
    circuit = CoolingCircuitModel(duration_h=DURATION_H, seed=9)
    device_model = DeviceModel(clock=clock)
    circuit.install(device_model)

    # Rack power meters behind SNMP (PDU-style); circuit instruments
    # behind the cooling unit's REST endpoint.
    snmp = SnmpAgentServer(device_model)
    snmp.start()
    for rack in range(3):
        snmp.bind_oid(f"1.3.6.1.4.1.42.2.{rack + 1}", f"rack{rack}_power")
    rest = RestDeviceServer(device_model)
    rest.start()

    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/coolmuc3/cooling"),
        client=InProcClient("oob-pusher", hub),
        clock=clock,
    )
    sensors_snmp = "\n".join(
        f"sensor rack{r} {{ oid 1.3.6.1.4.1.42.2.{r + 1}\n"
        f" mqttsuffix /rack{r}/power\n unit W }}"
        for r in range(3)
    )
    pusher.load_plugin(
        "snmp",
        f"connection pdu {{ addr 127.0.0.1:{snmp.port} }}\n"
        f"group racks {{ entity pdu\n interval {INTERVAL_S * 1000}\n{sensors_snmp} }}",
    )
    pusher.load_plugin(
        "rest",
        f"""
        endpoint cu {{ baseurl http://127.0.0.1:{rest.port} }}
        group circuit {{
            entity cu
            interval {INTERVAL_S * 1000}
            sensor flow {{ field flow
                           mqttsuffix /flow
                           unit l/s }}
            sensor t_in {{ field inlet_temp
                           mqttsuffix /inlet_temp
                           unit C }}
            sensor t_out {{ field outlet_temp
                            mqttsuffix /outlet_temp
                            unit C }}
        }}
        """,
    )
    pusher.client.connect()
    pusher.start_plugin("snmp")
    pusher.start_plugin("rest")
    end_ns = int(DURATION_H * 3600) * NS_PER_SEC
    # Step simulated time in one-hour slabs (device channels read the
    # shared clock, so it must advance alongside the sampling).
    step = 3600 * NS_PER_SEC
    t = 0
    while t < end_ns:
        t = min(t + step, end_ns)
        clock.set(t)
        pusher.advance_to(t)
    snmp.stop()
    rest.stop()

    dcdb = DCDBClient(backend)
    # Sensor scaling: devices report integers (W, l/h, centi-C).
    for r in range(3):
        dcdb.set_sensor_config(
            SensorConfig(topic=f"/coolmuc3/cooling/rack{r}/power", unit="W")
        )
    dcdb.set_sensor_config(
        SensorConfig(topic="/coolmuc3/cooling/flow", unit="m3/h", scale=1000.0)
    )
    for which in ("inlet_temp", "outlet_temp"):
        dcdb.set_sensor_config(
            SensorConfig(topic=f"/coolmuc3/cooling/{which}", unit="C", scale=100.0)
        )

    # Virtual sensors (paper: "we defined aggregated metrics in DCDB
    # using the virtual sensors").
    dcdb.define_virtual_sensor(
        VirtualSensorDef(
            name="total_power",
            expression="sum(</coolmuc3/cooling/rack0>) + sum(</coolmuc3/cooling/rack1>) + sum(</coolmuc3/cooling/rack2>)",
            unit="W",
            interval_ns=INTERVAL_S * NS_PER_SEC,
            scale=10.0,
        )
    )
    cp_rho_per_hour = WATER_DENSITY * WATER_CP / 3600.0  # W per (m3/h * K)
    dcdb.define_virtual_sensor(
        VirtualSensorDef(
            name="heat_removed",
            expression=(
                f"</coolmuc3/cooling/flow> * "
                f"(</coolmuc3/cooling/outlet_temp> - </coolmuc3/cooling/inlet_temp>) * "
                f"{cp_rho_per_hour}"
            ),
            unit="W",
            interval_ns=INTERVAL_S * NS_PER_SEC,
            scale=10.0,
        )
    )
    dcdb.define_virtual_sensor(
        VirtualSensorDef(
            name="heat_efficiency",
            expression="</virtual/heat_removed> / </virtual/total_power>",
            unit="ratio",
            interval_ns=INTERVAL_S * NS_PER_SEC,
            scale=100_000.0,
        )
    )
    start = INTERVAL_S * NS_PER_SEC
    end = end_ns
    _, power = dcdb.query("/virtual/total_power", start, end)
    _, heat = dcdb.query("/virtual/heat_removed", start, end)
    _, ratio = dcdb.query("/virtual/heat_efficiency", start, end)
    _, inlet = dcdb.query("/coolmuc3/cooling/inlet_temp", start, end)
    return power, heat, ratio, inlet, agent.readings_stored


def test_fig9_shape(benchmark):
    power, heat, ratio, inlet, stored = benchmark.pedantic(
        build_and_run, rounds=1, iterations=1
    )
    hours = np.arange(ratio.size) * INTERVAL_S / 3600.0
    sample_rows = [
        [f"{hours[i]:.0f} h", f"{inlet[min(i, inlet.size - 1)]:.1f} C",
         f"{power[i] / 1000:.1f} kW", f"{heat[i] / 1000:.1f} kW", f"{ratio[i]:.3f}"]
        for i in range(0, ratio.size, max(1, ratio.size // 10))
    ]
    emit(
        "Figure 9: heat removed vs power vs inlet temperature (25 h sweep)",
        format_table(["Time", "Inlet", "Power", "Heat removed", "Ratio"], sample_rows)
        + [
            f"mean heat-removal ratio: {ratio.mean():.3f}",
            f"inlet sweep: {inlet.min():.1f} -> {inlet.max():.1f} C",
            f"readings collected out-of-band: {stored}",
        ],
    )
    # ~90% efficiency.
    assert ratio.mean() == pytest.approx(0.90, abs=0.02)
    # Power wanders in the paper's band (~10-35 kW).
    assert 9_000 < power.min() and power.max() < 36_000
    # The inlet sweep actually happened.
    assert inlet.max() - inlet.min() > 25.0
    # Independence: ratio does not trend with inlet temperature.
    n = min(ratio.size, inlet.size)
    corr = np.corrcoef(inlet[:n], ratio[:n])[0, 1]
    assert abs(corr) < 0.25
    # The gap between power and heat does not widen at high inlet
    # temperatures (paper: insulation works).
    gap = power[:n] - heat[:n]
    first_half = gap[: n // 2].mean()
    second_half = gap[n // 2 :].mean()
    assert second_half < first_half * 1.25 + 500.0
