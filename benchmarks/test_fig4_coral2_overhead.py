"""Figure 4: Pusher overhead on CORAL-2 MPI benchmarks (SuperMUC-NG).

Paper: weak-scaling runs of Kripke, Quicksilver, LAMMPS and AMG at
128-1024 nodes, measured with the production configuration (*total*)
and a tester-plugin configuration of equal sensor count (*core*).
Findings: LAMMPS/Quicksilver/Kripke stay below 3 % with minimal growth
in node count; AMG grows linearly to ~9 % at 1024 nodes; for AMG the
core (communication-only) configuration accounts for most of the total
overhead; AMG improves under burst sending.

Shape assertions: exactly those findings.
"""

import pytest

from conftest import emit, format_table
from repro.simulation.architectures import SKYLAKE
from repro.simulation.overhead import MeasurementProtocol, OverheadModel, PusherSetup
from repro.simulation.workloads import CORAL2_APPS

NODE_COUNTS = (128, 256, 512, 1024)


def run_fig4():
    model = OverheadModel(SKYLAKE)
    protocol = MeasurementProtocol(seed=4)
    total_setup = PusherSetup(SKYLAKE.production_sensors, 1000, mode="production")
    core_setup = PusherSetup(SKYLAKE.production_sensors, 1000, mode="tester")
    results: dict[str, dict[str, list[float]]] = {}
    for name, app in CORAL2_APPS.items():
        results[name] = {"total": [], "core": []}
        for nodes in NODE_COUNTS:
            for label, setup in (("total", total_setup), ("core", core_setup)):
                true_overhead = model.mpi_overhead_pct(setup, app, nodes)
                results[name][label].append(
                    protocol.measure(true_overhead, f"fig4/{name}/{label}/{nodes}")
                )
    return results


def test_fig4_shape(benchmark):
    results = benchmark(run_fig4)
    rows = []
    for name in ("kripke", "quicksilver", "lammps", "amg"):
        for label in ("total", "core"):
            rows.append(
                [name, label]
                + [f"{o:.2f}%" for o in results[name][label]]
            )
    emit(
        "Figure 4: Pusher overhead on CORAL-2 benchmarks (weak scaling, Skylake)",
        format_table(
            ["Benchmark", "Config"] + [f"{n} nodes" for n in NODE_COUNTS], rows
        ),
    )
    # Kripke/Quicksilver/LAMMPS: low and essentially flat.
    for name in ("kripke", "quicksilver", "lammps"):
        total = results[name]["total"]
        assert max(total) < 3.0
        assert total[-1] - total[0] < 1.5
    # AMG: grows with node count, peaking near the paper's 9 %.
    amg = results["amg"]["total"]
    assert amg[-1] == max(amg)
    assert 7.0 < amg[-1] < 13.0
    assert amg[-1] > 2.5 * amg[0]
    # For AMG, the tester-only core configuration causes most of the
    # total overhead (network interference dominates).
    assert results["amg"]["core"][-1] / results["amg"]["total"][-1] > 0.7


def test_fig4_burst_sending_helps_amg(benchmark):
    model = OverheadModel(SKYLAKE)

    def run():
        continuous = model.mpi_overhead_pct(
            PusherSetup(2477, 1000, mode="production", send_mode="continuous"),
            CORAL2_APPS["amg"],
            1024,
        )
        burst = model.mpi_overhead_pct(
            PusherSetup(2477, 1000, mode="production", send_mode="burst"),
            CORAL2_APPS["amg"],
            1024,
        )
        return continuous, burst

    continuous, burst = benchmark(run)
    emit(
        "Figure 4 note: AMG at 1024 nodes, send-mode comparison",
        [f"continuous sending: {continuous:.2f}%", f"burst (2/min):      {burst:.2f}%"],
    )
    assert burst < continuous
