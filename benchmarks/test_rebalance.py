"""Microbenchmarks: cost of a live rebalance (elastic membership).

Committed gates (recorded in ``BENCH_rebalance.json`` via
``make bench-baseline``, diffed by ``tools/bench_compare.py``):

* **Moved-volume overhead** — a clean join must stream each moved
  reading exactly once: ``moved_overhead_x`` (moved bytes over the
  theoretical minimum) is asserted == 1.0 in every mode and committed
  as a lower-is-better ratio, so re-stream regressions show up as a
  baseline diff even before the 1.25x chaos gate trips.
* **Ingest-during-rebalance throughput** — a fixed ingest batch issued
  while history streams in the background must stay within
  ``INGEST_OVERHEAD_GATE`` of the same batch on a quiet cluster
  (union writes + epoch-checked replica cache are the only extra work
  on the write path); committed as ``rebalance_ingest_overhead_x``.
"""

import time

import pytest

from repro.core.sid import SensorId
from repro.storage.cluster import StorageCluster
from repro.storage.node import StorageNode
from repro.storage.partitioner import HierarchicalPartitioner

NS_PER_SEC = 1_000_000_000

#: Preloaded history: 12 partitions x 8 sensors x 250 rows = 24k rows.
PARTITIONS = 12
SENSORS_PER_PARTITION = 8
ROWS = 250

#: Gate on mid-rebalance ingest slowdown (timing only; generous — the
#: background streamer legitimately competes for the GIL).
INGEST_OVERHEAD_GATE = 5.0

INGEST_BATCH = [
    (SensorId.from_codes([7, p, s]), t * NS_PER_SEC, t, 0)
    for p in range(1, PARTITIONS + 1)
    for s in range(1, SENSORS_PER_PARTITION + 1)
    for t in range(40)
]


def preloaded_cluster(n=3, replication=2):
    nodes = [StorageNode(f"node{i}") for i in range(n)]
    cluster = StorageCluster(
        nodes,
        partitioner=HierarchicalPartitioner(n, levels=2),
        replication=replication,
    )
    items = [
        (SensorId.from_codes([1, p, s]), t * NS_PER_SEC, t * p, 0)
        for p in range(1, PARTITIONS + 1)
        for s in range(1, SENSORS_PER_PARTITION + 1)
        for t in range(ROWS)
    ]
    cluster.insert_batch(items)
    return cluster, len(items)


def _best_of(rounds, fn):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestMovedVolume:
    def test_join_streams_minimal_bytes(self, benchmark):
        """Time a blocking join of a preloaded cluster; assert the
        moved volume is exactly the theoretical minimum (no node died,
        so nothing may be streamed twice)."""
        clusters = []

        def setup():
            cluster, _ = preloaded_cluster()
            clusters.append(cluster)
            return (cluster,), {}

        def join(cluster):
            cluster.add_node(StorageNode(f"node{len(cluster.nodes)}"), wait=True)
            return cluster

        benchmark.pedantic(join, setup=setup, rounds=3, iterations=1)
        for cluster in clusters:
            stats = cluster.rebalance_stats()
            assert stats["partitions_failed"] == 0
            assert stats["partitions_moved"] > 0
            assert stats["moved_bytes"] == stats["minimal_bytes"]
            overhead = stats["moved_bytes"] / stats["minimal_bytes"]
            cluster.close()
        benchmark.extra_info["moved_overhead_x"] = round(overhead, 3)
        benchmark.extra_info["moved_mb"] = round(stats["moved_bytes"] / 1e6, 3)
        benchmark.extra_info["partitions_moved"] = int(stats["partitions_moved"])


class TestIngestDuringRebalance:
    def test_ingest_while_streaming(self, benchmark):
        """Ingest a fixed batch while a join streams history in the
        background; every acked reading must be readable afterwards and
        (timing armed) the slowdown vs a quiet cluster is gated."""
        clusters = []

        def setup():
            cluster, _ = preloaded_cluster()
            clusters.append(cluster)
            cluster.add_node(StorageNode(f"node{len(cluster.nodes)}"), wait=False)
            return (cluster,), {}

        def ingest(cluster):
            return cluster.insert_batch(INGEST_BATCH)

        count = benchmark.pedantic(ingest, setup=setup, rounds=3, iterations=1)
        assert count == len(INGEST_BATCH)
        for cluster in clusters:
            assert cluster.rebalance_wait(timeout=60.0)
            stats = cluster.rebalance_stats()
            assert stats["partitions_failed"] == 0
            # Zero acked loss through the concurrent transfer: the
            # mid-rebalance batch reads back in full.
            got = sum(
                cluster.query(s, 0, 1 << 62)[0].size
                for s in {item[0] for item in INGEST_BATCH}
            )
            assert got == len(INGEST_BATCH)
            assert cluster.hints_pending == 0
        if benchmark.enabled:
            quiet, _ = preloaded_cluster()
            quiet_seconds = _best_of(3, lambda: quiet.insert_batch(INGEST_BATCH))
            quiet.close()
            busy_seconds = benchmark.stats.stats.min
            overhead = busy_seconds / quiet_seconds
            print(
                f"\ningest during rebalance: {busy_seconds * 1e3:.2f} ms vs "
                f"quiet {quiet_seconds * 1e3:.2f} ms ({overhead:.2f}x)"
            )
            assert overhead <= INGEST_OVERHEAD_GATE, (
                f"mid-rebalance ingest {overhead:.2f}x over quiet "
                f"(gate: {INGEST_OVERHEAD_GATE}x)"
            )
            benchmark.extra_info["rebalance_ingest_overhead_x"] = round(overhead, 2)
        for cluster in clusters:
            cluster.close()
