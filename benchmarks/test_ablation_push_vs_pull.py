"""Ablation: push-based vs pull-based collection timing.

Paper section 4.1: "DCDB's push-based monitoring approach allows for
more precise timings compared to pull-based monitoring, especially at
fine-grained (i.e., sub-second) sampling intervals.  This allows for
easily correlating different sensors without having to interpolate
readings ... Additionally, this minimizes jitter on compute nodes."

This bench quantifies that claim with both disciplines implemented
over the same substrate:

* **push**: N Pushers align reads to the shared clock (the DCDB way);
  we record per-cycle timestamps across nodes.
* **pull**: a central poller contacts nodes sequentially each cycle
  (the LDMS/Nagios way); per-node read times skew by their polling
  position plus per-request latency.

Metric: cross-node timestamp spread within one nominal cycle — zero
for push (perfect alignment), hundreds of milliseconds for pull at
scale.
"""

import numpy as np
import pytest

from conftest import emit
from repro.common.rng import RngFactory
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC, SimClock, align_interval
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub

NODES = 64
INTERVAL_MS = 1000
CYCLES = 20
#: Per-request service time of a central poller (network RTT + read),
#: a conservative 3 ms.
PULL_SERVICE_NS = 3 * NS_PER_MS


def run_push() -> np.ndarray:
    """Cross-node read-time spread per cycle under push collection."""
    hub = InProcHub(allow_subscribe=False)
    clock = SimClock(0)
    timestamps: dict[int, list[int]] = {}

    def hook(client_id, packet):
        from repro.core.payload import decode_readings

        for reading in decode_readings(packet.payload):
            cycle = reading.timestamp // (INTERVAL_MS * NS_PER_MS)
            timestamps.setdefault(cycle, []).append(reading.timestamp)

    hub.add_publish_hook(hook)
    pushers = []
    rngs = RngFactory(77)
    for node in range(NODES):
        pusher = Pusher(
            PusherConfig(mqtt_prefix=f"/push/node{node}"),
            client=InProcClient(f"p{node}", hub),
            clock=clock,
        )
        pusher.load_plugin("tester", f"group g {{ interval {INTERVAL_MS}\n numSensors 1 }}")
        pusher.client.connect()
        # Nodes start at staggered (arbitrary) times, as in production.
        start_offset = int(rngs.stream(f"start/{node}").uniform(0, INTERVAL_MS * NS_PER_MS))
        pusher.plugins["tester"].running = True
        for group in pusher.plugins["tester"].groups:
            group.schedule_after(start_offset)
        pushers.append(pusher)
    end = CYCLES * INTERVAL_MS * NS_PER_MS
    for pusher in pushers:
        pusher.advance_to(end)
    spreads = [
        max(ts) - min(ts) for cycle, ts in timestamps.items() if len(ts) == NODES
    ]
    return np.asarray(spreads, dtype=np.float64)


def run_pull() -> np.ndarray:
    """Cross-node read-time spread per cycle under central polling."""
    rngs = RngFactory(78)
    rng = rngs.stream("latency")
    spreads = []
    for cycle in range(1, CYCLES + 1):
        cycle_start = cycle * INTERVAL_MS * NS_PER_MS
        t = cycle_start
        read_times = []
        for node in range(NODES):
            # Sequential polling: each request costs service time with
            # jitter; the node's data is read when its turn comes.
            t += int(PULL_SERVICE_NS * max(0.2, rng.normal(1.0, 0.2)))
            read_times.append(t)
        spreads.append(max(read_times) - min(read_times))
    return np.asarray(spreads, dtype=np.float64)


def test_push_vs_pull_alignment(benchmark):
    push_spread = benchmark.pedantic(run_push, rounds=1, iterations=1)
    pull_spread = run_pull()
    emit(
        "Ablation: cross-node read-time spread per cycle (64 nodes, 1 s interval)",
        [
            f"push (DCDB):       max spread = {push_spread.max():.0f} ns",
            f"pull (sequential): mean spread = {pull_spread.mean() / 1e6:.1f} ms, "
            f"max = {pull_spread.max() / 1e6:.1f} ms",
        ],
    )
    # Push: perfectly aligned reads despite staggered starts.
    assert push_spread.max() == 0.0
    # Pull: spread is on the order of NODES x service time.
    assert pull_spread.mean() > 100 * NS_PER_MS
    # The paper's claim, quantified: orders of magnitude difference.
    assert pull_spread.mean() > 1000 * (push_spread.max() + 1)


def test_push_alignment_across_intervals(benchmark):
    """Groups with different intervals still share common fire points."""

    def run():
        fire_250 = align_interval(123_456_789, 250 * NS_PER_MS)
        fire_1000 = align_interval(987_654_321, 1000 * NS_PER_MS)
        # Every 1 s boundary is also a 250 ms boundary.
        common = align_interval(fire_1000, 250 * NS_PER_MS)
        return fire_1000, common

    fire_1000, common = benchmark(run)
    assert fire_1000 == common
