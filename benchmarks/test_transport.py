"""Transport fan-in benchmark: event-loop broker vs thread-per-client.

Measures end-to-end fan-in throughput — 200 concurrent pushers
connecting and publishing pre-encoded MQTT blobs (driven from 8 sender
threads) until the broker has counted every message — against the
pre-change architecture kept in-test: a blocking accept thread plus
one blocking reader thread per connection, exactly the transport the
event loop replaced.  Both sides decode with the same
:class:`~repro.mqtt.packets.StreamDecoder`, so the gate isolates the
transport architecture (selector loop vs 200-thread GIL convoy), not
the parser.

``make bench-transport`` smoke-runs this module with
``--benchmark-disable``; the >= 2x speedup gate only arms when
benchmarking is enabled (``make bench`` / ``make bench-baseline``).
"""

import socket
import threading
import time

from repro.mqtt import packets as pkt
from repro.mqtt.broker import PublishOnlyBroker
from repro.mqtt.packets import StreamDecoder

PUSHERS = 200
SEND_ROUNDS = 20
MSGS_PER_ROUND = 10
SENDER_THREADS = 8
EXPECTED = PUSHERS * SEND_ROUNDS * MSGS_PER_ROUND


def _best_of(rounds, fn, *args):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


# -- pre-change reference implementation ------------------------------------


class ThreadPerClientBroker:
    """The prior revision's transport shape: blocking ``accept`` in one
    thread, one blocking-``recv`` reader thread per connection."""

    def __init__(self) -> None:
        self.port = 0
        self.messages_received = 0
        self._lock = threading.Lock()
        self._server: socket.socket | None = None
        self._conns: list[socket.socket] = []
        self._threads: list[threading.Thread] = []
        self._stopping = False

    def start(self) -> None:
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(512)
        self._server = server
        self.port = server.getsockname()[1]
        acceptor = threading.Thread(
            target=self._accept_loop, name="ref-broker-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.append(sock)
            reader = threading.Thread(
                target=self._client_loop, args=(sock,),
                name="ref-broker-client", daemon=True,
            )
            reader.start()
            self._threads.append(reader)

    def _client_loop(self, sock: socket.socket) -> None:
        decoder = StreamDecoder()
        try:
            while True:
                data = sock.recv(4096)
                if not data:
                    return
                # One lock round-trip per recv chunk, not per message,
                # so the reference is not handicapped by counter
                # contention.
                chunk_count = 0
                for packet in decoder.feed(data):
                    if isinstance(packet, pkt.Connect):
                        sock.sendall(pkt.ConnAck().encode())
                    elif isinstance(packet, pkt.Publish):
                        chunk_count += 1
                        if packet.qos:
                            sock.sendall(pkt.PubAck(packet.packet_id).encode())
                if chunk_count:
                    with self._lock:
                        self.messages_received += chunk_count
        except OSError:
            return

    def stop(self) -> None:
        self._stopping = True
        if self._server is not None:
            self._server.close()
        with self._lock:
            conns = list(self._conns)
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)


# -- the shared fan-in workload ----------------------------------------------


def run_fanin(make_broker, count_received, stop_broker):
    """Connect 200 pushers, blast pre-encoded publishes from 8 sender
    threads, and wait until the broker has counted every message."""
    broker = make_broker()
    broker.start()
    socks: list[socket.socket] = []
    try:
        connect_blob = pkt.Connect(client_id="bench", keepalive=0).encode()
        batch = pkt.Publish(topic="/bench/fan", payload=b"x" * 64).encode()
        batch *= MSGS_PER_ROUND
        for _ in range(PUSHERS):
            s = socket.create_connection(("127.0.0.1", broker.port), timeout=10.0)
            s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            s.sendall(connect_blob)
            socks.append(s)

        def sender(chunk):
            for _ in range(SEND_ROUNDS):
                for s in chunk:
                    s.sendall(batch)

        per_thread = PUSHERS // SENDER_THREADS
        senders = [
            threading.Thread(
                target=sender,
                args=(socks[i * per_thread : (i + 1) * per_thread],),
                daemon=True,
            )
            for i in range(SENDER_THREADS)
        ]
        for t in senders:
            t.start()
        for t in senders:
            t.join()
        # Closing before the broker drained its receive buffers would
        # RST the connections (the CONNACKs are never read) and discard
        # in-flight data — wait for the full count first.
        deadline = time.monotonic() + 60.0
        while count_received(broker) < EXPECTED and time.monotonic() < deadline:
            time.sleep(0.001)
        got = count_received(broker)
        assert got == EXPECTED, f"broker counted {got}/{EXPECTED} publishes"
    finally:
        for s in socks:
            s.close()
        stop_broker(broker)


def run_eventloop():
    run_fanin(
        lambda: PublishOnlyBroker("127.0.0.1", 0),
        lambda b: b.messages_received,
        lambda b: b.stop(),
    )


def run_thread_per_client():
    run_fanin(
        ThreadPerClientBroker,
        lambda b: b.messages_received,
        lambda b: b.stop(),
    )


class TestTransportFanIn:
    def test_eventloop_vs_thread_per_client(self, benchmark):
        """Fan-in throughput at 200 concurrent pushers.

        Gate from the issue: the selector-based event-loop broker must
        sustain >= 2x the thread-per-client architecture it replaced.
        The reference pays for 200 reader threads waking per chunk and
        convoying on the GIL; the event loop drains the same sockets
        from one thread.
        """
        benchmark.pedantic(run_eventloop, rounds=3, iterations=1)
        if benchmark.enabled:
            reference_seconds = _best_of(3, run_thread_per_client)
            eventloop_seconds = benchmark.stats.stats.min
            speedup = reference_seconds / eventloop_seconds
            print(
                f"\nfan-in ({PUSHERS} pushers, {EXPECTED} msgs): "
                f"thread-per-client {reference_seconds * 1e3:.0f} ms, "
                f"event loop {eventloop_seconds * 1e3:.0f} ms ({speedup:.2f}x)"
            )
            assert speedup >= 2.0, (
                f"event-loop fan-in only {speedup:.2f}x over thread-per-client"
            )
