"""Table 1: production-configuration overhead on three LRZ systems.

Paper: per-node Pusher configurations (plugins + sensor counts) on
SuperMUC-NG (Skylake), CooLMUC-2 (Haswell) and CooLMUC-3 (KNL), with
average overhead vs single-node HPL of 1.77 %, 0.69 % and 4.14 %.

Regeneration: build the production Pusher configuration for each
architecture (the real plugin pipeline, synthetic counter sources),
count its sensors, and evaluate the overhead model under the paper's
measurement protocol (median of 10 noisy runs).

Shape assertions: per-architecture overhead within ±0.5 pp of the
paper's number, and the ordering Haswell < Skylake < KNL.
"""

import pytest

from conftest import emit, format_table
from repro.simulation.architectures import ARCHITECTURES
from repro.simulation.overhead import MeasurementProtocol, OverheadModel, PusherSetup


def run_table1():
    protocol = MeasurementProtocol(seed=2019)
    rows = []
    measured = {}
    for name, arch in ARCHITECTURES.items():
        model = OverheadModel(arch)
        setup = PusherSetup(
            sensors=arch.production_sensors, interval_ms=1000, mode="production"
        )
        true_overhead = model.compute_overhead_pct(setup)
        observed = protocol.measure(true_overhead, f"table1/{name}")
        measured[name] = observed
        rows.append(
            [
                arch.system,
                f"{arch.nodes}/{name}",
                arch.cpu_model,
                ", ".join(arch.production_plugins),
                arch.production_sensors,
                f"{observed:.2f}%",
                f"{arch.reported_overhead_pct:.2f}%",
            ]
        )
    return rows, measured


def test_table1_shape(benchmark):
    rows, measured = benchmark(run_table1)
    emit(
        "Table 1: per-system production Pusher configuration and HPL overhead",
        format_table(
            ["System", "Nodes/Arch", "CPU", "Plugins", "Sensors", "Overhead", "Paper"],
            rows,
        ),
    )
    for name, arch in ARCHITECTURES.items():
        assert measured[name] == pytest.approx(arch.reported_overhead_pct, abs=0.5)
    assert measured["haswell"] < measured["skylake"] < measured["knl"]


def test_table1_production_pipeline_sensor_scale(benchmark):
    """The real plugin stack supports sensors at Table-1 scale.

    Builds a perfevents+tester configuration with the Skylake sensor
    count through the actual Pusher and verifies one full collection
    cycle at 1 s completes and publishes every sensor.
    """
    from repro.common.timeutil import NS_PER_SEC, SimClock
    from repro.core.pusher import Pusher, PusherConfig
    from repro.mqtt.inproc import InProcClient, InProcHub

    arch = ARCHITECTURES["skylake"]

    def run():
        hub = InProcHub(allow_subscribe=False)
        pusher = Pusher(
            PusherConfig(mqtt_prefix="/smng/node0"),
            client=InProcClient("p", hub),
            clock=SimClock(0),
        )
        cpus = arch.logical_cpus  # 96 logical CPUs
        # Perfevents: 5 events x 96 cpus = 480 per-core sensors.
        events = [
            "instructions",
            "cycles",
            "cache-misses",
            "branch-misses",
            "page-faults",
        ]
        perf_cfg = "\n".join(
            f"group {e} {{ interval 1000\n counter {e}\n cpus 0-{cpus - 1} }}"
            for e in events
        )
        pusher.load_plugin("perfevents", perf_cfg)
        # Remaining production sensors (procfs/sysfs/opa) stand in via
        # the tester plugin, as in the paper's core configuration.
        remaining = arch.production_sensors - pusher.sensor_count
        pusher.load_plugin(
            "tester", f"group sysmetrics {{ interval 1000\n numSensors {remaining} }}"
        )
        assert pusher.sensor_count == arch.production_sensors
        pusher.client.connect()
        for alias in list(pusher.plugins):
            pusher.start_plugin(alias)
        pusher.advance_to(2 * NS_PER_SEC)
        # Delta (perf) sensors skip the first cycle; everything else
        # publishes both cycles.
        return pusher.readings_collected, remaining, len(events) * cpus

    collected, remaining, perf_sensors = benchmark.pedantic(run, rounds=1, iterations=1)
    assert collected == 2 * remaining + perf_sensors
