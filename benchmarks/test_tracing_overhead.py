"""Overhead gate for distributed tracing on the ingest path.

The trace header, span recording and exemplar stamping must be cheap
enough to leave on in production at a sampling stride; this gate
asserts that ``trace_sample_every=100`` costs at most 5% of the
untraced ingest path.

Methodology.  Naive A/B wall-clock comparison cannot resolve 5% here:
shared-runner noise is +-10% at the 100 ms scale, CPU time drifts
several percent per second (thermal/frequency), and toggling the
sampling stride in-place perturbs CPython's adaptive specialization,
inflating the apparent delta.  The gate instead *decomposes* the
overhead, which is strictly additive code:

1. run the real pipeline once at stride 100 with every tracing
   primitive wrapped by a counter — the per-reading call counts are
   deterministic;
2. microbench each primitive in a tight loop (stable to ~ns) right
   next to a baseline (stride 0) ingest run — both scale with current
   machine speed, so their *ratio* is drift-immune;
3. assert  sum(count_i * unit_cost_i) / baseline_per_reading <= 5%.

This bounds the marginal cost of every instruction tracing adds to
the hot path; steady-state systemic effects were measured separately
(blocked toggling, discarding post-switch slices) at ~1.5% and are
covered by the budget's headroom.
"""

from __future__ import annotations

import gc
import time

from conftest import emit, format_table
from repro.core.payload import encode_readings
from repro.core.sensor import SensorReading
from repro.observability import MetricsRegistry, SpanRecorder, new_trace_id, trace_context
from repro.observability.tracing import PipelineTracer, payload_origin_ns
from repro.simulation.simcluster import SimClusterConfig, SimulatedCluster

OVERHEAD_BUDGET = 0.05  # sampled tracing may cost at most 5%
STRIDE = 100
COUNT_SIM_SECONDS = 5
BASELINE_SIM_SECONDS = 20


def _make_sim(stride: int) -> SimulatedCluster:
    return SimulatedCluster(
        SimClusterConfig(
            hosts=4,
            sensors_per_host=100,
            interval_ms=1000,
            trace_sample_every=stride,
        )
    )


def _count_primitive_calls() -> tuple[dict[str, int], int]:
    """Run the traced pipeline; return tracing-primitive call counts.

    Counts are per the whole run; the second element is the number of
    readings ingested, for per-reading normalization.
    """
    counts: dict[str, int] = {}

    def counted(name, fn):
        counts[name] = 0

        def wrapper(*args, **kwargs):
            counts[name] += 1
            return fn(*args, **kwargs)

        return wrapper

    sim = _make_sim(STRIDE)
    try:
        # Wrap the *instances* wired into this sim, so counting does
        # not disturb other tests' module state.
        tracers = [p.tracer for p in sim.pushers] + [sim.hub.tracer, sim.agent.tracer]
        for tracer in tracers:
            tracer.should_sample = counted("should_sample", tracer.should_sample)
            tracer.stamp = counted("stamp", tracer.stamp)
            tracer.stamp_payload = counted("stamp_payload", tracer.stamp_payload)
        sim.spans.record = counted("span_record", sim.spans.record)
        stored = sim.run(COUNT_SIM_SECONDS)
        assert stored == sim.expected_readings(COUNT_SIM_SECONDS)
        # stamp_payload delegates to stamp; do not double-charge.
        counts["stamp"] -= counts.pop("stamp_payload")
        return counts, stored
    finally:
        sim.stop()


def _unit_cost_s(fn, n: int = 20000, reps: int = 3) -> float:
    """Tight-loop cost of one call, best of ``reps`` (seconds)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, (time.perf_counter() - t0) / n)
    return best


def _baseline_per_reading_s() -> float:
    """CPU seconds per reading of the untraced ingest path."""
    sim = _make_sim(0)
    try:
        sim.run(2)  # warm-up
        gc.collect()
        gc.disable()
        t0 = time.process_time_ns()
        stored = sim.run(BASELINE_SIM_SECONDS)
        elapsed = (time.process_time_ns() - t0) / 1e9
        gc.enable()
        assert stored == sim.expected_readings(BASELINE_SIM_SECONDS)
        return elapsed / stored
    finally:
        sim.stop()


class TestTracingOverhead:
    def test_sampled_tracing_within_five_percent(self, benchmark):
        counts, readings = _count_primitive_calls()

        # Unit costs, measured adjacent to the baseline so machine
        # speed cancels in the final ratio.  Each priced at its
        # worst case (exemplar attached, attributes recorded).
        registry = MetricsRegistry()
        tracer_on = PipelineTracer(registry, sample_every=STRIDE)
        tracer_off = PipelineTracer(registry, sample_every=0)
        recorder = SpanRecorder()
        payload = encode_readings([SensorReading(1_000, 1)], trace_id=0xAB)

        def one_stamp():
            tracer_on.stamp("insert", 1_000, trace_id=0xAB)

        def one_record():
            recorder.record(0xAB, "insert", "agent", 0, 10, topic="/t", readings=1)

        def one_context():
            with trace_context(0xAB):
                pass

        unit = {
            # Sampling checks run at stride 0 too: charge the delta.
            "should_sample": _unit_cost_s(tracer_on.should_sample)
            - _unit_cost_s(tracer_off.should_sample),
            "stamp": _unit_cost_s(one_stamp),
            "span_record": _unit_cost_s(one_record),
            "new_trace_id": _unit_cost_s(new_trace_id),
            "trace_context": _unit_cost_s(one_context),
            "payload_origin_ns": _unit_cost_s(lambda: payload_origin_ns(payload)),
        }
        # Primitives not wrapped in the counting run, with known
        # per-traced-message multiplicity (1 each at the pusher/agent).
        traced_messages = counts["span_record"] and counts.get("stamp", 0) // 5 or 0
        counts.setdefault("new_trace_id", traced_messages)
        counts.setdefault("trace_context", traced_messages)
        counts.setdefault("payload_origin_ns", traced_messages)

        baseline = _baseline_per_reading_s()
        benchmark.pedantic(_baseline_per_reading_s, rounds=1, iterations=1)

        extra_per_reading = (
            sum(counts[name] * max(0.0, unit[name]) for name in counts) / readings
        )
        overhead = extra_per_reading / baseline
        rows = [
            [
                name,
                counts[name],
                f"{unit[name] * 1e9:8.0f} ns",
                f"{counts[name] * max(0.0, unit[name]) / readings * 1e9:8.1f} ns",
            ]
            for name in counts
        ]
        rows.append(["baseline ingest", readings, f"{baseline * 1e6:.2f} us/reading", ""])
        rows.append(["tracing overhead", "", f"{overhead:+.2%}", ""])
        emit(
            f"Tracing overhead decomposition (stride {STRIDE}, "
            f"{readings} readings)",
            format_table(["Primitive", "Calls", "Unit cost", "Per reading"], rows),
        )
        assert overhead <= OVERHEAD_BUDGET, (
            f"sampled tracing costs {overhead:.1%} of the untraced ingest "
            f"path (budget {OVERHEAD_BUDGET:.0%})"
        )

    def test_traced_run_actually_recorded_spans(self):
        """Guard the gate itself: the sampled config must be tracing."""
        sim = _make_sim(STRIDE)
        try:
            sim.run(5)
            assert sim.spans.traces(limit=1)
        finally:
            sim.stop()
