"""Figure 5: overhead heatmaps, 25 tester configurations x 3 systems.

Paper: overhead vs single-node HPL for sampling intervals
{100, 250, 500, 1000, 10000} ms x sensor counts {10, 100, 1000, 5000,
10000}, per architecture.  Findings: below 1 % for every configuration
with <= 1000 sensors; acceptable even at 100 000 readings/s (Skylake
~0.65 %, Haswell ~1.8 %, KNL ~3.5 % in the hottest cell); Skylake
essentially flat, Haswell and KNL show clear gradients; many cells
read 0 because the median-with-Pusher beat the reference median.

Shape assertions: exactly those findings.
"""

import pytest

from conftest import emit, format_table
from repro.simulation.architectures import ARCHITECTURES
from repro.simulation.overhead import MeasurementProtocol, OverheadModel, PusherSetup

INTERVALS_MS = (100, 250, 500, 1000, 10_000)
SENSORS = (10, 100, 1000, 5000, 10_000)


def run_heatmaps():
    protocol = MeasurementProtocol(seed=5)
    heatmaps: dict[str, dict[tuple[int, int], float]] = {}
    for name, arch in ARCHITECTURES.items():
        model = OverheadModel(arch)
        cells = {}
        for interval in INTERVALS_MS:
            for sensors in SENSORS:
                true_overhead = model.compute_overhead_pct(
                    PusherSetup(sensors, interval)
                )
                cells[(interval, sensors)] = protocol.measure(
                    true_overhead, f"fig5/{name}/{interval}/{sensors}"
                )
        heatmaps[name] = cells
    return heatmaps


def test_fig5_shape(benchmark):
    heatmaps = benchmark(run_heatmaps)
    for name in ("skylake", "haswell", "knl"):
        cells = heatmaps[name]
        rows = [
            [f"{interval} ms"] + [f"{cells[(interval, s)]:.2f}" for s in SENSORS]
            for interval in INTERVALS_MS
        ]
        emit(
            f"Figure 5 ({name}): overhead [%] by interval x sensors vs HPL",
            format_table(["Interval"] + [str(s) for s in SENSORS], rows),
        )
    for name, arch in ARCHITECTURES.items():
        cells = heatmaps[name]
        # <=1000 sensors: below 1 % everywhere (paper's production claim).
        for interval in INTERVALS_MS:
            for sensors in (10, 100, 1000):
                assert cells[(interval, sensors)] < 1.0, (name, interval, sensors)
        # Hottest cell (100 ms x 10k sensors) within band of the paper.
        hottest = cells[(100, 10_000)]
        expected = {"skylake": 0.65, "haswell": 1.8, "knl": 3.5}[name]
        assert hottest == pytest.approx(expected, abs=0.8)
    # Architecture ordering in the hottest cell.
    assert (
        heatmaps["skylake"][(100, 10_000)]
        < heatmaps["haswell"][(100, 10_000)]
        < heatmaps["knl"][(100, 10_000)]
    )
    # Measurement noise yields some exact zeros, as in the paper's plots.
    zero_cells = sum(
        1 for cells in heatmaps.values() for v in cells.values() if v == 0.0
    )
    assert zero_cells >= 5


def test_fig5_gradient_structure(benchmark):
    heatmaps = benchmark(run_heatmaps)
    # KNL and Haswell show a clear gradient along the sensor axis at
    # 100 ms; Skylake stays within a narrow band (paper: "unaffected
    # ... consistent overhead values").
    for name, min_spread in (("knl", 2.0), ("haswell", 1.0)):
        cells = heatmaps[name]
        row = [cells[(100, s)] for s in SENSORS]
        assert row[-1] - row[0] > min_spread
    skylake_row = [heatmaps["skylake"][(100, s)] for s in SENSORS]
    assert max(skylake_row) - min(skylake_row) < 1.0
