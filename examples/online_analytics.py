#!/usr/bin/env python3
"""Online analytics: power-band supervision and anomaly detection.

The paper motivates holistic monitoring with control loops: "as soon
as power exceeds a given bound, corrective actions must be taken by
administrators" (section 2), and its future-work section announces a
streaming analytics layer running "at the Collect Agent or Pusher
level" (section 9).  This example exercises that layer:

* GPUs (NVML plugin, synthetic duty-cycled devices) and node power are
  monitored continuously;
* an ``Aggregator`` computes the live total GPU power per second;
* a ``ThresholdAlarm`` supervises it against a power band with
  hysteresis;
* a ``ZScoreDetector`` watches a temperature sensor into which we
  inject a fault mid-run;
* all derived series land in storage next to the raw sensors and are
  queried back through libDCDB.

Run:  python examples/online_analytics.py
"""

from repro import CollectAgent, DCDBClient, MemoryBackend, Pusher, PusherConfig
from repro.analytics import Aggregator, AnalyticsManager, ThresholdAlarm, ZScoreDetector
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher.plugin import PluginSensor, SensorGroup
from repro.mqtt.inproc import InProcClient, InProcHub

MINUTES = 4


def main() -> None:
    clock = SimClock(0)
    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)

    # --- analytics at the Collect Agent level -------------------------
    manager = AnalyticsManager()
    manager.add_operator(
        Aggregator(
            "gpu_power", ["/node0/+/power"], output="total_mw", func="sum"
        )
    )
    manager.add_operator(
        ThresholdAlarm(
            "power_band",
            ["/analytics/gpu_power/total_mw"],  # note: operators do not chain
            high=1_000_000,
        )
    )
    manager.add_operator(
        ZScoreDetector("thermal", ["/node0/board/+"], window=30, threshold=5.0)
    )
    manager.attach_to_agent(agent)
    # Threshold alarms on *derived* series are attached explicitly
    # (operator outputs do not feed back automatically):
    band = ThresholdAlarm("band", ["/x"], high=880_000, low=800_000)

    # --- the monitored node -------------------------------------------
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/node0"),
        client=InProcClient("p", hub),
        clock=clock,
    )
    pusher.load_plugin("nvml", "group gpus { interval 1000\n gpus 0-3\n metrics power }")

    # A board temperature sensor with an injected fault at t=150 s.
    class BoardGroup(SensorGroup):
        def read_raw(self, timestamp):
            t = timestamp // NS_PER_SEC
            base = 42 + (t % 7)  # benign wiggle
            if 150 <= t < 155:
                base += 40  # thermal runaway blip
            return [base]

    board = BoardGroup("board", interval_ns=NS_PER_SEC)
    board.add_sensor(PluginSensor("board_temp", "/board/temp"))
    pusher.plugins["nvml"].groups.append(board)
    pusher._topics[board.sensors[0]] = "/node0" + board.sensors[0].mqtt_suffix

    pusher.client.connect()
    pusher.start_plugin("nvml")

    # --- run, feeding the derived power series to the band alarm ------
    for minute in range(MINUTES):
        target = (minute + 1) * 60 * NS_PER_SEC
        clock.set(target)
        pusher.advance_to(target)
    # Drive the explicit band alarm over the stored derived series.
    dcdb = DCDBClient(backend)
    ts, total_mw = dcdb.query("/analytics/gpu_power/total_mw", 0, MINUTES * 60 * NS_PER_SEC)
    from repro.core.sensor import SensorReading

    for t, v in zip(ts.tolist(), total_mw.tolist()):
        band.process("/x", SensorReading(int(t), int(v)))

    print(f"monitored {agent.readings_stored} raw readings over {MINUTES} simulated minutes")
    print(f"derived series points: {ts.size}, total GPU power {total_mw.min()/1e6:.2f}..{total_mw.max()/1e6:.2f} kW")
    print(f"power-band transitions (hysteresis 800/880 W): {band.transitions}")
    print(f"thermal anomalies flagged: {len(manager.alarms)}")
    for event in list(manager.alarms)[:3]:
        print(f"  t={event.timestamp // NS_PER_SEC:>4}s  {event.message}")
    status = manager.status()
    print("operator status:")
    for op in status["operators"]:
        print(f"  {op['name']:<10} {op['type']:<16} in={op['eventsIn']:<6} out={op['eventsOut']}")


if __name__ == "__main__":
    main()
