#!/usr/bin/env python3
"""Quickstart: a complete DCDB deployment in one process.

Builds the paper's Figure 2 pipeline — Pusher (tester plugin) -> MQTT
-> Collect Agent -> wide-column storage — over real TCP sockets and
real sampling threads, lets it monitor for a few seconds, then queries
the collected data through libDCDB and defines a virtual sensor.

Run:  python examples/quickstart.py
"""

import time

from repro import (
    CollectAgent,
    DCDBClient,
    MemoryBackend,
    Pusher,
    PusherConfig,
    SensorConfig,
    VirtualSensorDef,
)


def main() -> None:
    # 1. A Collect Agent with its publish-only MQTT broker on a free
    #    port, writing into an in-memory wide-column backend.
    backend = MemoryBackend()
    agent = CollectAgent(backend, port=0)
    agent.start()
    print(f"collect agent listening on MQTT port {agent.port}")

    # 2. A Pusher monitoring this "node": 8 synthetic power sensors
    #    sampled every 200 ms, published under a hierarchical topic.
    pusher = Pusher(
        PusherConfig(
            mqtt_prefix="/demo/rack0/node0",
            broker_port=agent.port,
            threads=2,
        )
    )
    pusher.load_plugin(
        "tester",
        """
        group power {
            interval 200
            numSensors 8
            generator constant
            startValue 245
        }
        """,
    )
    pusher.start_plugin("tester")
    pusher.start()
    print(f"pusher running with {pusher.sensor_count} sensors; collecting for 3 s ...")
    time.sleep(3.0)
    pusher.stop()
    agent.stop()
    print(f"readings stored: {agent.readings_stored}")

    # 3. Query through libDCDB.
    dcdb = DCDBClient(backend)
    topics = dcdb.topics("/demo")
    print(f"sensor topics: {len(topics)} (e.g. {topics[0]})")
    for topic in topics:
        dcdb.set_sensor_config(SensorConfig(topic=topic, unit="W"))
    timestamps, watts = dcdb.query(topics[0], 0, (1 << 62))
    print(
        f"{topics[0]}: {timestamps.size} readings, "
        f"latest = {watts[-1]:.0f} W at t={timestamps[-1]} ns"
    )

    # 4. A virtual sensor aggregating the node's power (paper
    #    section 3.2), evaluated lazily on query.
    dcdb.define_virtual_sensor(
        VirtualSensorDef(
            name="node_power",
            expression="sum(</demo/rack0/node0/power>)",
            unit="W",
            interval_ns=200 * 1_000_000,
        )
    )
    v_ts, v_watts = dcdb.query(
        "/virtual/node_power", int(timestamps[0]), int(timestamps[-1])
    )
    print(
        f"/virtual/node_power: {v_ts.size} points, "
        f"mean = {v_watts.mean():.0f} W (8 x 245 W = 1960 W)"
    )

    # 5. Hierarchy navigation, as the Grafana plugin exposes it.
    print("hierarchy under /demo/rack0/node0/power:", dcdb.hierarchy_children("/demo/rack0/node0/power"))


if __name__ == "__main__":
    main()
