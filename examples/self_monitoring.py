#!/usr/bin/env python3
"""Monitoring the monitor: metrics, tracing and /metrics exposition.

Runs the full pipeline over real TCP — Pusher (tester + dcdbmon
plugins) -> MQTT -> Collect Agent -> storage — then:

* scrapes the Prometheus ``/metrics`` route of both REST APIs,
* prints per-hop pipeline latency percentiles (collect -> publish ->
  dispatch -> insert -> commit),
* queries the dcdbmon plugin's self-monitoring sensors from storage
  via libDCDB, exactly like any facility sensor.

Run:  python examples/self_monitoring.py
"""

import time

from repro import CollectAgent, DCDBClient, MemoryBackend, Pusher, PusherConfig
from repro.core.collectagent.restapi import CollectAgentRestApi
from repro.core.pusher.restapi import PusherRestApi
from repro.common.httpjson import http_text
from repro.observability import parse_prometheus_text


def main() -> None:
    # 1. The pipeline: agent + broker, pusher with a synthetic workload
    #    plus the dcdbmon self-monitoring plugin (default catalogue).
    backend = MemoryBackend()
    agent = CollectAgent(backend, port=0)
    agent.start()
    pusher = Pusher(
        PusherConfig(
            mqtt_prefix="/demo/rack0/node0",
            broker_port=agent.port,
            threads=2,
        )
    )
    pusher.load_plugin(
        "tester", "group power { interval 200\n numSensors 8 }"
    )
    pusher.load_plugin("dcdbmon", "group self { interval 500 }")
    pusher.start_plugin("tester")
    pusher.start_plugin("dcdbmon")
    pusher.start()
    print("pipeline running; collecting for 3 s ...")
    time.sleep(3.0)

    # 2. Scrape /metrics from both REST APIs, like Prometheus would.
    with PusherRestApi(pusher) as papi, CollectAgentRestApi(agent) as aapi:
        for name, port in (("pusher", papi.port), ("agent", aapi.port)):
            _, text, _ = http_text("GET", f"http://127.0.0.1:{port}/metrics")
            families = parse_prometheus_text(text)
            print(f"{name} /metrics: {len(families)} metric families, "
                  f"{len(text.splitlines())} lines — valid exposition")

    # 3. Per-hop pipeline latency percentiles from the status routes.
    pusher_latency = pusher.status()["latency"]
    agent_latency = agent.status()["latency"]
    print("pipeline latency since collection (p95, ms):")
    for side, hop in (
        (pusher_latency, "collect"),
        (pusher_latency, "publish"),
        (agent_latency, "dispatch"),
        (agent_latency, "insert"),
        (agent_latency, "commit"),
    ):
        stats = side[hop]
        if stats is None:
            print(f"  {hop:>8}: (no samples)")
        else:
            print(f"  {hop:>8}: {stats['p95'] * 1000:8.3f}  (n={stats['count']})")

    pusher.stop()
    agent.stop()

    # 4. The framework's own health, queryable like any sensor.
    dcdb = DCDBClient(backend)
    for topic in sorted(t for t in dcdb.topics() if "/power/" not in t):
        ts, values = dcdb.query_raw(topic, 0, 1 << 62)
        if ts.size:
            print(f"{topic}: {ts.size} readings, latest = {values[-1]}")


if __name__ == "__main__":
    main()
