#!/usr/bin/env python3
"""Scalable deployment: many Pushers, a distributed storage cluster.

Demonstrates DCDB's hierarchical scalability story (paper section 3.2):
two simulated clusters of nodes, each feeding a Collect Agent, both
persisting into one replicated wide-column storage cluster whose
hierarchical partitioner keeps each cluster's subtree on its nearest
storage node.  Also shows the custom plugin path: a site-specific
plugin registered at runtime (the dynamic-library analogue).

Run:  python examples/scalable_cluster.py
"""

from repro import CollectAgent, DCDBClient, Pusher, PusherConfig, StorageCluster, StorageNode
from repro.common.proptree import PropertyTree
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher.plugin import ConfiguratorBase, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage.partitioner import HierarchicalPartitioner

NODES_PER_CLUSTER = 16
SENSORS_PER_NODE = 32
MINUTES = 2


# --- a site-specific plugin, registered at runtime --------------------
class FanSpeedGroup(SensorGroup):
    """Pretend fan-tachometer readout: deterministic per-node RPM."""

    def read_raw(self, timestamp):
        base = 4200 + (timestamp // NS_PER_SEC) % 60
        return [int(base + 13 * i) for i in range(len(self.sensors))]


class FanSpeedConfigurator(ConfiguratorBase):
    plugin_name = "fanspeed"

    def build_group(self, name: str, config: PropertyTree, entity) -> SensorGroup:
        group = FanSpeedGroup(**self.group_common(name, config))
        for i in range(config.get_int("numFans", 2)):
            group.add_sensor(
                PluginSensor(f"fan{i}", f"/{name}/fan{i}", cache_maxage_ns=self.cache_maxage_ns)
            )
        return group


register_plugin("fanspeed", FanSpeedConfigurator)


def main() -> None:
    clock = SimClock(0)
    # --- storage: two backend servers, subtree partitioning, RF=2 ----
    storage_nodes = [StorageNode("sb-west"), StorageNode("sb-east")]
    cluster = StorageCluster(
        storage_nodes,
        partitioner=HierarchicalPartitioner(2, levels=1),
        replication=2,
    )
    # --- two clusters, one Collect Agent each -------------------------
    hubs = [InProcHub(allow_subscribe=False) for _ in range(2)]
    agents = [CollectAgent(cluster, broker=hub) for hub in hubs]
    pushers: list[Pusher] = []
    for cluster_idx, hub in enumerate(hubs):
        for node in range(NODES_PER_CLUSTER):
            pusher = Pusher(
                PusherConfig(mqtt_prefix=f"/cluster{cluster_idx}/node{node:02d}"),
                client=InProcClient(f"c{cluster_idx}-n{node}", hub),
                clock=clock,
            )
            pusher.load_plugin(
                "tester",
                f"group metrics {{ interval 1000\n numSensors {SENSORS_PER_NODE - 2} }}",
            )
            pusher.load_plugin("fanspeed", "group cooling { interval 1000\n numFans 2 }")
            pusher.client.connect()
            pusher.start_plugin("tester")
            pusher.start_plugin("fanspeed")
            pushers.append(pusher)

    total_sensors = 2 * NODES_PER_CLUSTER * SENSORS_PER_NODE
    print(
        f"deployment: 2 clusters x {NODES_PER_CLUSTER} nodes x "
        f"{SENSORS_PER_NODE} sensors = {total_sensors} sensors"
    )
    end = MINUTES * 60 * NS_PER_SEC
    for pusher in pushers:
        pusher.advance_to(end)
    clock.set(end)
    stored = sum(agent.readings_stored for agent in agents)
    print(f"stored {stored} readings in {MINUTES} simulated minutes")

    # --- placement: each cluster's subtree on one storage node --------
    for idx, node in enumerate(storage_nodes):
        print(f"  {node.name}: {node.row_count} rows ({len(node.sids())} sensors)")
    # With RF=2 both nodes hold everything; flip replication to 1 to
    # see pure subtree placement. Show the partitioner's view instead:
    part = cluster.partitioner
    dcdb = DCDBClient(cluster)
    for cluster_idx in range(2):
        topic = f"/cluster{cluster_idx}/node00/metrics/s0"
        owner = part.node_for(dcdb.sid_of(topic))
        print(f"  subtree /cluster{cluster_idx} owned by {storage_nodes[owner].name}")

    # --- query across the hierarchy ----------------------------------
    fan_topic = "/cluster1/node07/cooling/fan1"
    timestamps, rpm = dcdb.query(fan_topic, 0, end)
    print(
        f"\n{fan_topic}: {timestamps.size} readings, "
        f"rpm range {rpm.min():.0f}..{rpm.max():.0f}"
    )
    print("hierarchy roots:", dcdb.hierarchy_children(""))
    print(
        "node07 children:",
        dcdb.hierarchy_children("/cluster1/node07"),
    )


if __name__ == "__main__":
    main()
