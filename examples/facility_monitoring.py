#!/usr/bin/env python3
"""Facility monitoring: the paper's case study 1 as a runnable scenario.

Simulates the CooLMUC-3 warm-water cooling circuit (physics model),
exposes its instruments through simulated SNMP and REST devices,
monitors them out-of-band with the real SNMP/REST Pusher plugins, and
uses virtual sensors to compute the heat-removal efficiency — the
paper's Figure 9 analysis, condensed to a 6-hour sweep.

Run:  python examples/facility_monitoring.py
"""

from repro import CollectAgent, DCDBClient, MemoryBackend, Pusher, PusherConfig
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.devices import DeviceModel, RestDeviceServer, SnmpAgentServer
from repro.libdcdb.api import SensorConfig
from repro.libdcdb.virtualsensors import VirtualSensorDef
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.simulation.facility import WATER_CP, WATER_DENSITY, CoolingCircuitModel

INTERVAL_S = 60
DURATION_H = 6.0


def main() -> None:
    # --- the facility: physics model + simulated instruments ---------
    clock = SimClock(0)
    circuit = CoolingCircuitModel(duration_h=DURATION_H, inlet_end_c=45.0, seed=21)
    instruments = DeviceModel(clock=clock)
    circuit.install(instruments)

    snmp = SnmpAgentServer(instruments)
    snmp.start()
    for rack in range(3):
        snmp.bind_oid(f"1.3.6.1.4.1.42.2.{rack + 1}", f"rack{rack}_power")
    rest = RestDeviceServer(instruments)
    rest.start()
    print(f"simulated devices up: SNMP agent :{snmp.port}, REST endpoint :{rest.port}")

    # --- the monitoring deployment (out-of-band) ---------------------
    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/coolmuc3/cooling"),
        client=InProcClient("mgmt-pusher", hub),
        clock=clock,
    )
    rack_sensors = "\n".join(
        f"sensor rack{r} {{ oid 1.3.6.1.4.1.42.2.{r + 1}\n"
        f" mqttsuffix /rack{r}/power\n unit W }}"
        for r in range(3)
    )
    pusher.load_plugin(
        "snmp",
        f"connection pdu {{ addr 127.0.0.1:{snmp.port} }}\n"
        f"group racks {{ entity pdu\n interval {INTERVAL_S * 1000}\n{rack_sensors} }}",
    )
    pusher.load_plugin(
        "rest",
        f"""
        endpoint cu {{ baseurl http://127.0.0.1:{rest.port} }}
        group circuit {{
            entity cu
            interval {INTERVAL_S * 1000}
            sensor flow  {{ field flow         mqttsuffix /flow }}
            sensor t_in  {{ field inlet_temp   mqttsuffix /inlet_temp }}
            sensor t_out {{ field outlet_temp  mqttsuffix /outlet_temp }}
        }}
        """,
    )
    pusher.client.connect()
    pusher.start_plugin("snmp")
    pusher.start_plugin("rest")

    # --- run the sweep in simulated time ------------------------------
    end_ns = int(DURATION_H * 3600) * NS_PER_SEC
    t = 0
    while t < end_ns:
        t = min(t + 1800 * NS_PER_SEC, end_ns)
        clock.set(t)
        pusher.advance_to(t)
    print(f"collected {agent.readings_stored} readings over {DURATION_H:.0f} simulated hours")

    # --- analysis via virtual sensors ---------------------------------
    dcdb = DCDBClient(backend)
    for r in range(3):
        dcdb.set_sensor_config(
            SensorConfig(topic=f"/coolmuc3/cooling/rack{r}/power", unit="W")
        )
    dcdb.set_sensor_config(
        SensorConfig(topic="/coolmuc3/cooling/flow", unit="m3/h", scale=1000.0)
    )
    for which in ("inlet_temp", "outlet_temp"):
        dcdb.set_sensor_config(
            SensorConfig(topic=f"/coolmuc3/cooling/{which}", unit="C", scale=100.0)
        )
    dcdb.define_virtual_sensor(
        VirtualSensorDef(
            name="total_power",
            expression="sum(</coolmuc3/cooling/rack0>) + "
            "sum(</coolmuc3/cooling/rack1>) + sum(</coolmuc3/cooling/rack2>)",
            unit="W",
            interval_ns=INTERVAL_S * NS_PER_SEC,
            scale=10.0,
        )
    )
    per_flow_degree = WATER_DENSITY * WATER_CP / 3600.0
    dcdb.define_virtual_sensor(
        VirtualSensorDef(
            name="heat_removed",
            expression=(
                "</coolmuc3/cooling/flow> * "
                "(</coolmuc3/cooling/outlet_temp> - </coolmuc3/cooling/inlet_temp>)"
                f" * {per_flow_degree}"
            ),
            unit="W",
            interval_ns=INTERVAL_S * NS_PER_SEC,
            scale=10.0,
        )
    )
    start = INTERVAL_S * NS_PER_SEC
    _, power = dcdb.query("/virtual/total_power", start, end_ns)
    _, heat = dcdb.query("/virtual/heat_removed", start, end_ns)
    _, inlet = dcdb.query("/coolmuc3/cooling/inlet_temp", start, end_ns)
    ratio = heat / power
    print("\n  hour   inlet[C]   power[kW]   heat[kW]   ratio")
    step = max(1, power.size // 12)
    for i in range(0, power.size, step):
        print(
            f"  {i * INTERVAL_S / 3600.0:4.1f}   {inlet[min(i, inlet.size - 1)]:7.1f}"
            f"   {power[i] / 1000:8.1f}   {heat[i] / 1000:7.1f}   {ratio[i]:.3f}"
        )
    print(
        f"\nheat-removal efficiency: mean {ratio.mean():.1%} "
        f"(paper: ~90%, independent of inlet temperature)"
    )
    snmp.stop()
    rest.stop()


if __name__ == "__main__":
    main()
