#!/usr/bin/env python3
"""Application characterization: the paper's case study 2.

Monitors the four CORAL-2 applications (workload models) through the
perfevents plugin at 100 ms on a simulated KNL node, queries the
instructions and power series back from storage, and characterizes
each application by its instructions-per-Watt distribution — the
paper's Figure 10 analysis, with an ASCII density sketch.

Run:  python examples/application_characterization.py
"""

import numpy as np

from repro import CollectAgent, DCDBClient, MemoryBackend, Pusher, PusherConfig
from repro.analysis import distribution_modes, kde_pdf
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher.plugin import Plugin, PluginSensor, SensorGroup
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.plugins.perfevents import PerfGroup, PerfSensor, SyntheticPerfSource
from repro.plugins.tester import TesterConfigurator
from repro.simulation.workloads import CORAL2_APPS

DURATION_S = 300
INTERVAL_MS = 100


def monitor(app_name: str) -> np.ndarray:
    """Run one application under monitoring; return its IPW series."""
    app = CORAL2_APPS[app_name]
    clock = SimClock(0)
    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    pusher = Pusher(
        PusherConfig(mqtt_prefix=f"/knl/{app_name}"),
        client=InProcClient("p", hub),
        clock=clock,
    )
    # Instructions counter driven by the application's phase model.
    perf = PerfGroup(
        "perf",
        interval_ns=INTERVAL_MS * 1_000_000,
        source=SyntheticPerfSource(rate_fn=app.perf_rate_fn(seed=7)),
    )
    instr = PerfSensor(cpu=0, event="instructions", name="instr", mqtt_suffix="/instr")
    instr.metadata.delta = True
    perf.add_sensor(instr)
    # Node power from the same phase model (mW resolution).
    _, _, power_trace = app.trace(DURATION_S + 5, INTERVAL_MS, seed=7)

    class PowerGroup(SensorGroup):
        def read_raw(self, timestamp):
            idx = min(
                int(timestamp // (INTERVAL_MS * 1_000_000)) - 1, power_trace.size - 1
            )
            return [int(round(power_trace[idx] * 1000.0))]

    power_group = PowerGroup("power", interval_ns=INTERVAL_MS * 1_000_000)
    power_group.add_sensor(PluginSensor("node_power", "/power"))
    plugin = Plugin(
        name="char", configurator=TesterConfigurator(), groups=[perf, power_group]
    )
    pusher.plugins["char"] = plugin
    for group in plugin.groups:
        for sensor in group.sensors:
            pusher._topics[sensor] = pusher.config.mqtt_prefix + sensor.mqtt_suffix
    pusher.client.connect()
    pusher.start_plugin("char")
    pusher.advance_to(DURATION_S * NS_PER_SEC)

    dcdb = DCDBClient(backend)
    _, deltas = dcdb.query(f"/knl/{app_name}/instr", 0, DURATION_S * NS_PER_SEC)
    _, power_mw = dcdb.query(f"/knl/{app_name}/power", 0, DURATION_S * NS_PER_SEC)
    n = min(deltas.size, power_mw.size)
    rate = deltas[-n:] * (1000.0 / INTERVAL_MS)
    return rate / (power_mw[-n:] / 1000.0)


def sketch(ipw: np.ndarray, lo: float, hi: float, width: int = 48) -> str:
    """A one-line ASCII density sketch over [lo, hi]."""
    grid = np.linspace(lo, hi, width)
    _, density = kde_pdf(ipw, grid=grid)
    peak = density.max() or 1.0
    glyphs = " .:-=+*#%@"
    return "".join(glyphs[int(d / peak * (len(glyphs) - 1))] for d in density)


def main() -> None:
    print(f"monitoring {len(CORAL2_APPS)} applications at {INTERVAL_MS} ms for {DURATION_S}s each ...\n")
    series = {name: monitor(name) for name in CORAL2_APPS}
    lo = 0.0
    hi = max(ipw.max() for ipw in series.values()) * 1.05
    print(f"instructions per Watt, density over [0, {hi:.3g}]:\n")
    for name, ipw in sorted(series.items(), key=lambda kv: -kv[1].mean()):
        modes = distribution_modes(ipw)
        trend = "single trend" if len(modes) == 1 else f"{len(modes)} trends"
        print(f"  {name:<12} |{sketch(ipw, lo, hi)}|  mean={ipw.mean():.3g}  {trend}")
    print(
        "\npaper's finding: Kripke/Quicksilver high computational density,"
        "\nLAMMPS/AMG lower with multiple trends (dynamic phase behaviour)."
    )


if __name__ == "__main__":
    main()
