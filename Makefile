# Convenience targets for the DCDB reproduction.

PYTHON ?= python

.PHONY: install test metrics-smoke bench experiments examples loc all

install:
	pip install -e .

test: metrics-smoke
	$(PYTHON) -m pytest tests/

# Boot an in-process pusher->agent pipeline and validate the /metrics
# exposition of both REST APIs; fails on malformed Prometheus output.
metrics-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.tools.metrics_smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure with the result tables printed.
experiments:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/facility_monitoring.py
	$(PYTHON) examples/application_characterization.py
	$(PYTHON) examples/scalable_cluster.py
	$(PYTHON) examples/online_analytics.py
	$(PYTHON) examples/self_monitoring.py

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

all: test bench
