# Convenience targets for the DCDB reproduction.

PYTHON ?= python

# Seeds driving the deterministic chaos suite; override to reproduce a
# failing schedule: make chaos CHAOS_SEEDS=42
CHAOS_SEEDS ?= 101,202,303,404,505

.PHONY: install test metrics-smoke trace-smoke chaos chaos-durability chaos-rebalance bench bench-query bench-rollup bench-transport bench-durability bench-rebalance bench-baseline bench-compare bench-check experiments examples loc all

install:
	pip install -e .

test: metrics-smoke trace-smoke chaos chaos-durability chaos-rebalance bench-query bench-rollup bench-transport bench-durability bench-rebalance bench-check
	$(PYTHON) -m pytest tests/

# Boot an in-process pusher->agent pipeline and validate the /metrics
# exposition of both REST APIs; fails on malformed Prometheus output
# or on drift between the docs catalogue and the runtime families.
metrics-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.tools.metrics_smoke

# Step a simulated cluster with tracing on and assert a complete
# (>= 5 span) distributed trace is retrievable via GET /traces.
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.tools.trace_smoke

# Seeded fault-injection suite (kill/restart mid-ingest, flaky flushes,
# broker disconnects).  See docs/resilience.md.
chaos:
	PYTHONPATH=src CHAOS_SEEDS=$(CHAOS_SEEDS) $(PYTHON) -m pytest \
		tests/storage/test_faults.py tests/integration/test_chaos.py

# Durability chaos battery: kill -9 mid-ingest under fsync=always
# (zero acked-write loss, bit-identical recovery fingerprints per
# seed), torn WAL tails, flipped CRC bytes, disk-fault injection.
# See docs/durability.md.
chaos-durability:
	PYTHONPATH=src CHAOS_SEEDS=$(CHAOS_SEEDS) $(PYTHON) -m pytest \
		tests/storage/test_durable.py tests/storage/test_durable_codecs.py \
		tests/integration/test_chaos_durability.py

# Elastic-membership chaos battery: double/drain a cluster mid-ingest
# with a source killed at an exact chunk boundary of the rebalance
# stream (zero acked-reading loss, bit-identical reads before/during/
# after, moved bytes <= 1.25x the theoretical minimum).  See the
# "Cluster operations" runbook in docs/deployment.md.
chaos-rebalance:
	PYTHONPATH=src CHAOS_SEEDS=$(CHAOS_SEEDS) $(PYTHON) -m pytest \
		tests/storage/test_membership.py \
		tests/integration/test_chaos_rebalance.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Single-round smoke over the read-path benchmarks: correctness of the
# pruned/batched/parallel query paths without timing anything (the
# speedup gates only arm when benchmarking is enabled), so it is cheap
# enough to ride along with every `make test`.
bench-query:
	PYTHONPATH=src $(PYTHON) -m pytest -q benchmarks/test_query_path.py \
		--benchmark-disable

# Single-round smoke over the transport fan-in benchmark (200 pushers
# against the event-loop broker, correctness only — the >= 2x gate vs
# the in-test thread-per-client reference arms under `make bench`).
bench-transport:
	PYTHONPATH=src $(PYTHON) -m pytest -q benchmarks/test_transport.py \
		--benchmark-disable

# Single-round smoke over the rollup-tier dashboard-burst benchmark
# (tier-served aggregates are asserted bit-identical to raw-computed
# ones in every mode; the >= 5x p99 gate arms under `make bench`).
bench-rollup:
	PYTHONPATH=src $(PYTHON) -m pytest -q benchmarks/test_rollup_path.py \
		--benchmark-disable

# Record the ingest/storage microbenchmark baseline as pytest-benchmark
# JSON.  BENCH_ingest.json is committed so regressions in the batched
# ingest path show up as a diff against the recorded numbers; raw
# per-round samples are stripped to keep the committed file small.
# BENCH_query.json does the same for the query path (segment pruning,
# cluster query_many, parallel subtree scan, batched virtual sensors),
# BENCH_transport.json for the event-loop fan-in throughput,
# BENCH_rollup.json for the tier-served dashboard-burst p99,
# BENCH_durability.json for the durable-ingest overhead, the
# facility-data compression ratio and the cold-window pruning speedup,
# and BENCH_rebalance.json for the live-rebalance moved-volume and
# mid-rebalance ingest overheads.
bench-baseline:
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_microbench_components.py \
		benchmarks/test_microbench_backends.py \
		--benchmark-only --benchmark-json=BENCH_ingest.json
	$(PYTHON) -c "import json; d = json.load(open('BENCH_ingest.json')); \
		[b['stats'].pop('data', None) for b in d['benchmarks']]; \
		json.dump(d, open('BENCH_ingest.json', 'w'), indent=1, sort_keys=True)"
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_query_path.py \
		--benchmark-only --benchmark-json=BENCH_query.json
	$(PYTHON) -c "import json; d = json.load(open('BENCH_query.json')); \
		[b['stats'].pop('data', None) for b in d['benchmarks']]; \
		json.dump(d, open('BENCH_query.json', 'w'), indent=1, sort_keys=True)"
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_transport.py \
		--benchmark-only --benchmark-json=BENCH_transport.json
	$(PYTHON) -c "import json; d = json.load(open('BENCH_transport.json')); \
		[b['stats'].pop('data', None) for b in d['benchmarks']]; \
		json.dump(d, open('BENCH_transport.json', 'w'), indent=1, sort_keys=True)"
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_rollup_path.py \
		--benchmark-only --benchmark-json=BENCH_rollup.json
	$(PYTHON) -c "import json; d = json.load(open('BENCH_rollup.json')); \
		[b['stats'].pop('data', None) for b in d['benchmarks']]; \
		json.dump(d, open('BENCH_rollup.json', 'w'), indent=1, sort_keys=True)"
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_durability.py \
		--benchmark-only --benchmark-json=BENCH_durability.json
	$(PYTHON) -c "import json; d = json.load(open('BENCH_durability.json')); \
		[b['stats'].pop('data', None) for b in d['benchmarks']]; \
		json.dump(d, open('BENCH_durability.json', 'w'), indent=1, sort_keys=True)"
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_rebalance.py \
		--benchmark-only --benchmark-json=BENCH_rebalance.json
	$(PYTHON) -c "import json; d = json.load(open('BENCH_rebalance.json')); \
		[b['stats'].pop('data', None) for b in d['benchmarks']]; \
		json.dump(d, open('BENCH_rebalance.json', 'w'), indent=1, sort_keys=True)"

# Single-round smoke over the durability benchmarks: the compression-
# ratio floor and the bounded-memory block-cache scan are asserted in
# every mode; the <= 1.6x durable-vs-memory ingest gate and the >= 3x
# cold-window pruning gate arm under `make bench`.
bench-durability:
	PYTHONPATH=src $(PYTHON) -m pytest -q benchmarks/test_durability.py \
		--benchmark-disable

# Single-round smoke over the live-rebalance benchmarks: the moved-
# volume minimum and the zero-loss mid-rebalance ingest are asserted
# in every mode; the ingest-slowdown gate arms under `make bench`.
bench-rebalance:
	PYTHONPATH=src $(PYTHON) -m pytest -q benchmarks/test_rebalance.py \
		--benchmark-disable

# Run the full benchmark suite and diff the gated stats (best-of wall
# time plus the machine-independent *_x / *_ratio extra_info values)
# against the committed BENCH_*.json baselines; fails on any >25%
# regression.  Refresh the baselines with `make bench-baseline`.
bench-compare:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=.bench_fresh.json
	PYTHONPATH=src $(PYTHON) -m repro.tools.bench_compare .bench_fresh.json
	rm -f .bench_fresh.json

# Structural smoke over the committed baselines (they parse, carry
# stats, and name only benchmarks that still collect) — rides along
# with `make test` so a renamed benchmark cannot strand its baseline.
bench-check:
	PYTHONPATH=src $(PYTHON) -m repro.tools.bench_compare --check

# Regenerate every paper table/figure with the result tables printed.
experiments:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/facility_monitoring.py
	$(PYTHON) examples/application_characterization.py
	$(PYTHON) examples/scalable_cluster.py
	$(PYTHON) examples/online_analytics.py
	$(PYTHON) examples/self_monitoring.py

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

all: test bench
