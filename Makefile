# Convenience targets for the DCDB reproduction.

PYTHON ?= python

.PHONY: install test bench experiments examples loc all

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure with the result tables printed.
experiments:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/facility_monitoring.py
	$(PYTHON) examples/application_characterization.py
	$(PYTHON) examples/scalable_cluster.py
	$(PYTHON) examples/online_analytics.py

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

all: test bench
