"""Grafana integration.

Paper section 5.4: DCDB ships its own Grafana data-source plugin built
on libDCDB, whose distinguishing feature is *hierarchical browsing* —
drill-down menus over the sensor tree, missing from stock Grafana
plugins.  :mod:`repro.grafana.datasource` serves the simple-JSON
datasource protocol (health check, ``/search``, ``/query``) extended
with the ``/hierarchy`` endpoint backing those drop-down menus.
"""

from repro.grafana.datasource import GrafanaDataSource

__all__ = ["GrafanaDataSource"]
