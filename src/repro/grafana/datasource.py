"""A Grafana simple-JSON data source over libDCDB.

Serves the de-facto Grafana JSON datasource protocol:

``GET  /``            health check (datasource "Save & Test").
``POST /search``      body ``{"target": "<prefix>"}`` — metric name
                      completion; returns topics below the prefix.
``POST /query``       body ``{"range": {"from_ns": .., "to_ns": ..},
                      "targets": [{"target": "<topic>"}, ...],
                      "maxDataPoints": N}`` — returns Grafana series
                      ``[{"target": .., "datapoints": [[value, ms]..]}]``.
``GET  /hierarchy``   query param ``prefix`` — next-level names for
                      the drill-down drop-downs (paper Figure 3).
``POST /annotations`` alarm events from an attached analytics manager,
                      rendered by Grafana as chart annotations (the
                      paper lists alert notifications among Grafana's
                      benefits, section 5.4).

Long ranges are downsampled server-side to ``maxDataPoints`` buckets,
which is what keeps million-sensor deployments plottable.  Whenever a
rollup tier covers the requested window the buckets are served from
pre-aggregated rows through the tier-aware planner
(:meth:`~repro.libdcdb.api.DCDBClient.query_aggregate_many`) instead
of re-scanning raw readings; targets may carry an ``"aggregation"``
key (``avg``/``min``/``max``/``sum``/``count``, default ``avg``) to
pick the statistic.  Raw scans with mean downsampling remain the
fallback for virtual sensors, short windows and uncovered spans.
Virtual sensors work transparently: the client resolves and evaluates
them like any topic.
"""

from __future__ import annotations

import json

from repro.common.errors import DCDBError
from repro.common.httpjson import JsonHttpServer
from repro.libdcdb.api import DCDBClient
from repro.libdcdb.interpolation import downsample_mean


class GrafanaDataSource:
    """Binds a :class:`DCDBClient` to the Grafana JSON protocol.

    ``analytics`` (optional) is an
    :class:`~repro.analytics.manager.AnalyticsManager` whose alarm log
    backs the ``/annotations`` endpoint.
    """

    def __init__(
        self,
        client: DCDBClient,
        host: str = "127.0.0.1",
        port: int = 0,
        analytics=None,
    ) -> None:
        self.client = client
        self.analytics = analytics
        # Share the client's registry so cache hit/miss counters and
        # libDCDB latency histograms ride along on this server's HTTP
        # instruments.
        self.server = JsonHttpServer(host, port, metrics=getattr(client, "metrics", None))
        s = self.server
        s.route("GET", "/", self._health)
        s.route("POST", "/search", self._search)
        s.route("POST", "/query", self._query)
        s.route("GET", "/hierarchy", self._hierarchy)
        s.route("POST", "/annotations", self._annotations)

    def start(self) -> None:
        self.server.start()

    def stop(self) -> None:
        self.server.stop()

    @property
    def port(self) -> int | None:
        return self.server.port

    def __enter__(self) -> "GrafanaDataSource":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- handlers ---------------------------------------------------------

    def _health(self, params: dict, query: dict, body: bytes):
        """Datasource "Save & Test": probe the backend instead of
        answering 200 unconditionally — a dead cluster must fail the
        test, not pass it and then error on every panel."""
        backend = self.client.backend
        details: dict[str, object] = {"datasource": "dcdb"}
        liveness = getattr(backend, "node_liveness", None)
        if liveness is not None:
            live, total = liveness()
            details["replicasLive"] = live
            details["replicasTotal"] = total
            states = getattr(backend, "node_states", None)
            if states is not None:
                # Per-node failure-detector detail: which replica is
                # suspect/down, and how suspicious (phi), so an operator
                # sees *which* node to look at, not just a count.
                details["nodes"] = states()
            if live == 0:
                return 503, {"status": "unavailable", **details}
        try:
            # Cheap metadata round-trip exercises the same path every
            # query depends on (sid mapping lives in metadata).
            backend.metadata_keys("")
        except DCDBError as exc:
            return 503, {"status": "unavailable", "error": str(exc), **details}
        return 200, {"status": "ok", **details}

    def _search(self, params: dict, query: dict, body: bytes):
        payload = json.loads(body or b"{}")
        prefix = payload.get("target", "")
        topics = self.client.topics(prefix)
        virtuals = [v.topic for v in self.client.virtual_sensors()]
        return 200, sorted(set(topics) | {v for v in virtuals if v.startswith(prefix)})

    def _query(self, params: dict, query: dict, body: bytes):
        payload = json.loads(body or b"{}")
        time_range = payload.get("range", {})
        start = int(time_range.get("from_ns", 0))
        end = int(time_range.get("to_ns", (1 << 62)))
        max_points = int(payload.get("maxDataPoints", 1000) or 1000)
        targets = [t for t in payload.get("targets", []) if t.get("target")]
        results: dict[str, tuple] = {}
        errors: dict[str, str] = {}
        legacy: list[str] = []  # raw read + mean downsample path
        planned: dict[str, str] = {}  # topic -> aggregation, tier planner path
        for target in targets:
            topic = target["target"]
            if topic in results or topic in errors or topic in planned or topic in legacy:
                continue
            aggregation = target.get("aggregation")
            try:
                if aggregation is None:
                    # Dashboard default: route through the planner only
                    # when a rollup tier can actually serve the window —
                    # otherwise keep the raw-scan + mean-downsample path
                    # (virtual sensors, short windows, uncovered spans).
                    plan = self.client.plan_aggregate(topic, start, end, max_points)
                    if plan.tier_index is None:
                        legacy.append(topic)
                        continue
                    aggregation = "avg"
                planned[topic] = aggregation
            except DCDBError as exc:
                errors[topic] = str(exc)
        by_aggregation: dict[str, list[str]] = {}
        for topic, aggregation in planned.items():
            by_aggregation.setdefault(aggregation, []).append(topic)
        for aggregation, group in by_aggregation.items():
            try:
                results.update(
                    self.client.query_aggregate_many(
                        group, start, end, aggregation, max_points
                    )
                )
            except DCDBError:
                # One bad target must not fail the group: retry each on
                # its own so errors are reported per series.
                for topic in group:
                    try:
                        results[topic] = self.client.query_aggregate(
                            topic, start, end, aggregation, max_points
                        )
                    except DCDBError as exc:
                        errors[topic] = str(exc)
        if len(legacy) > 1:
            # Multi-panel refreshes: one batched storage read primes
            # the raw cache for every concrete target.  Failures fall
            # through to the per-target reads below, which report them
            # per series instead of failing the whole request.
            try:
                self.client.prefetch_raw(legacy, start, end)
            except DCDBError:
                pass
        for topic in legacy:
            try:
                timestamps, values = self.client.query(topic, start, end)
            except DCDBError as exc:
                errors[topic] = str(exc)
                continue
            if timestamps.size > max_points:
                # Inclusive range + ceil division: at most max_points buckets.
                bucket_ns = max(1, -(-(end - start + 1) // max_points))
                timestamps, values = downsample_mean(timestamps, values, bucket_ns)
            results[topic] = (timestamps, values)
        series = []
        for target in targets:
            topic = target["target"]
            if topic in errors:
                series.append({"target": topic, "error": errors[topic], "datapoints": []})
                continue
            timestamps, values = results[topic]
            datapoints = [
                [float(v), int(t // 1_000_000)]  # Grafana wants ms epochs
                for t, v in zip(timestamps.tolist(), values.tolist())
            ]
            series.append({"target": topic, "datapoints": datapoints})
        return 200, series

    def _hierarchy(self, params: dict, query: dict, body: bytes):
        prefix = query.get("prefix", "")
        return 200, self.client.hierarchy_children(prefix)

    def _annotations(self, params: dict, query: dict, body: bytes):
        if self.analytics is None:
            return 200, []
        payload = json.loads(body or b"{}")
        time_range = payload.get("range", {})
        start = int(time_range.get("from_ns", 0))
        end = int(time_range.get("to_ns", (1 << 62)))
        return 200, [
            {
                "time": event.timestamp // 1_000_000,  # ms epochs
                "title": event.operator,
                "text": event.message,
                "tags": [event.topic],
            }
            for event in self.analytics.alarms
            if start <= event.timestamp <= end
        ]
