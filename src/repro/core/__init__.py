"""DCDB core: sensors, sensor IDs, Pushers and Collect Agents.

This package implements the paper's primary contribution — the
modular, hierarchical monitoring pipeline:

* :mod:`repro.core.sensor` — the sensor data model: readings, metadata
  and the time-bounded sensor cache exposed over the REST APIs.
* :mod:`repro.core.sid` — 128-bit hierarchical Sensor IDs with the 1:1
  MQTT-topic mapping used as storage partition keys.
* :mod:`repro.core.pusher` — the plugin-based data collector.
* :mod:`repro.core.collectagent` — the MQTT-broker/storage-writer.
"""

from repro.core.sensor import SensorReading, SensorMetadata, SensorCache
from repro.core.sid import SensorId, SidMapper, SID_LEVELS, SID_BITS_PER_LEVEL

__all__ = [
    "SensorReading",
    "SensorMetadata",
    "SensorCache",
    "SensorId",
    "SidMapper",
    "SID_LEVELS",
    "SID_BITS_PER_LEVEL",
]
