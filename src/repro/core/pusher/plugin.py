"""Plugin base classes: Sensors, Groups, Entities, Configurators.

Paper section 4.1, verbatim roles:

* **Sensors** — "The most basic unit for data collection ... sampled
  and collected as a numerical time series.  A sensor always has to be
  part of a group."
* **Groups** — "All sensors that belong to one group share the same
  sampling interval and are always read collectively at the same point
  in time."
* **Entities** — "An optional hierarchy level to aggregate groups or
  to provide additional functionality to them", e.g. the shared host
  connection of several IPMI groups.
* **Configurator** — "reading the configuration file of a plugin and
  instantiating all components for data collection".

A concrete plugin subclasses :class:`SensorGroup` (implementing
:meth:`SensorGroup.read_raw`) and :class:`ConfiguratorBase`
(implementing :meth:`ConfiguratorBase.build_group` and optionally
:meth:`ConfiguratorBase.build_entity`), then registers itself with
:func:`repro.core.pusher.registry.register_plugin`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree, parse_info
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC, next_read_time
from repro.core.sensor import SensorCache, SensorMetadata, SensorReading

logger = logging.getLogger(__name__)


class PluginSensor:
    """One data source inside a group.

    Handles the generic bookkeeping every DCDB sensor shares: the
    MQTT suffix, delta conversion for monotonic counters, the sensor
    cache, and publish gating.  Subclasses may carry plugin-specific
    state (a file offset, an OID, a register address).
    """

    __slots__ = ("name", "mqtt_suffix", "metadata", "cache", "_last_raw", "readings_taken")

    def __init__(
        self,
        name: str,
        mqtt_suffix: str,
        metadata: SensorMetadata | None = None,
        cache_maxage_ns: int = 120 * NS_PER_SEC,
    ) -> None:
        self.name = name
        self.mqtt_suffix = mqtt_suffix
        self.metadata = metadata if metadata is not None else SensorMetadata(name=name)
        self.metadata.name = name
        self.cache = SensorCache(maxage_ns=cache_maxage_ns)
        self._last_raw: int | None = None
        self.readings_taken = 0

    def process_raw(self, timestamp: int, raw: int) -> SensorReading | None:
        """Convert a raw sample into a stored reading.

        Applies delta conversion when the sensor is marked ``delta``
        (the first sample only seeds the baseline and produces no
        reading).  The reading is cached and returned for publishing,
        or None when nothing should be emitted this cycle.
        """
        if self.metadata.delta:
            last = self._last_raw
            self._last_raw = raw
            if last is None:
                return None
            value = raw - last
            if value < 0:
                # Counter wrapped or reset; emit nothing rather than a
                # huge negative spike, matching DCDB's perfevents
                # handling.
                return None
        else:
            value = raw
        reading = SensorReading(timestamp, value)
        self.cache.store(reading)
        self.readings_taken += 1
        return reading

    def reset_delta(self) -> None:
        """Forget the delta baseline (used on group restart)."""
        self._last_raw = None


class Entity:
    """Optional shared resource for a set of groups.

    The base class only names the entity; protocol plugins subclass it
    to hold the shared connection (see e.g.
    :class:`repro.plugins.ipmi.IpmiHostEntity`).  ``connect`` and
    ``disconnect`` bracket the owning plugin's start/stop.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def connect(self) -> None:  # pragma: no cover - trivial default
        """Acquire the shared resource; default no-op."""

    def disconnect(self) -> None:  # pragma: no cover - trivial default
        """Release the shared resource; default no-op."""


class SensorGroup:
    """A set of sensors read collectively at one synchronized interval.

    Subclasses implement :meth:`read_raw` returning the raw integer
    sample of every sensor.  The framework calls :meth:`read` at
    interval-aligned timestamps (see
    :func:`repro.common.timeutil.align_interval`), applies per-sensor
    processing, and hands the resulting readings to the push queue.
    """

    def __init__(
        self,
        name: str,
        interval_ns: int = NS_PER_SEC,
        entity: Entity | None = None,
        min_values: int = 1,
    ) -> None:
        if interval_ns <= 0:
            raise ConfigError(f"group {name!r}: interval must be positive")
        self.name = name
        self.interval_ns = interval_ns
        self.entity = entity
        #: Number of readings to accumulate per sensor before the MQTT
        #: component sends them in one message (DCDB's minValues).
        self.min_values = max(1, min_values)
        self.sensors: list[PluginSensor] = []
        self.next_due_ns: int | None = None
        self.enabled = True
        # Error accounting: one flaky cycle must not kill monitoring.
        self.read_errors = 0

    def add_sensor(self, sensor: PluginSensor) -> None:
        sensor.metadata.interval_ns = self.interval_ns
        self.sensors.append(sensor)

    # -- to be provided by concrete plugins ------------------------------

    def read_raw(self, timestamp: int) -> list[int]:
        """Sample every sensor; returns raw values aligned with
        ``self.sensors``.  May raise :class:`PluginError`."""
        raise NotImplementedError

    # -- framework-driven -------------------------------------------------

    def read(self, timestamp: int) -> list[tuple[PluginSensor, SensorReading]]:
        """One collective sampling cycle.

        Returns the publishable (sensor, reading) pairs.  A raising
        :meth:`read_raw` is logged and counted, not propagated.
        """
        try:
            raws = self.read_raw(timestamp)
        except PluginError as exc:
            self.read_errors += 1
            logger.warning("group %s: read failed: %s", self.name, exc)
            return []
        if len(raws) != len(self.sensors):
            self.read_errors += 1
            logger.warning(
                "group %s: read_raw returned %d values for %d sensors",
                self.name,
                len(raws),
                len(self.sensors),
            )
            return []
        out: list[tuple[PluginSensor, SensorReading]] = []
        for sensor, raw in zip(self.sensors, raws):
            reading = sensor.process_raw(timestamp, raw)
            if reading is not None and sensor.metadata.publish:
                out.append((sensor, reading))
        return out

    def schedule_after(self, now_ns: int) -> int:
        """Compute and store the next aligned due time after ``now_ns``."""
        self.next_due_ns = next_read_time(now_ns, self.interval_ns)
        return self.next_due_ns

    def start(self) -> None:
        """Hook invoked when the plugin starts; default resets deltas."""
        for sensor in self.sensors:
            sensor.reset_delta()

    def stop(self) -> None:  # pragma: no cover - trivial default
        """Hook invoked when the plugin stops."""

    def __len__(self) -> int:
        return len(self.sensors)


@dataclass
class Plugin:
    """A loaded plugin: its configurator plus instantiated components."""

    name: str
    configurator: "ConfiguratorBase"
    groups: list[SensorGroup] = field(default_factory=list)
    entities: list[Entity] = field(default_factory=list)
    running: bool = False

    @property
    def sensor_count(self) -> int:
        return sum(len(group) for group in self.groups)

    def all_sensors(self) -> list[PluginSensor]:
        return [sensor for group in self.groups for sensor in group.sensors]


class ConfiguratorBase:
    """Parses a plugin configuration and instantiates its components.

    The configuration syntax is the property-tree format shared by all
    DCDB plugins::

        global {
            cacheInterval 120000      ; sensor cache window, ms
        }
        template_group tdefault {
            interval 1000             ; ms
            minValues 1
        }
        group g0 {
            default tdefault
            <plugin-specific keys>
            sensor s0 {
                mqttsuffix /s0
                unit W
                scale 1000
                delta false
                publish true
            }
        }

    Subclasses implement :meth:`build_group` to construct their
    concrete :class:`SensorGroup` and attach sensors, and may override
    :meth:`build_entity` for connection-sharing plugins.  The generic
    template/default resolution, sensor-attribute parsing and entity
    wiring live here so that plugin authors write only acquisition
    code — the property the paper's generator scripts rely on.
    """

    #: Name under which the plugin registers (e.g. "procfs").
    plugin_name = "base"
    #: Key naming entity blocks in the config (e.g. "host" for IPMI).
    entity_key: str | None = None

    def __init__(self) -> None:
        self.cache_maxage_ns = 120 * NS_PER_SEC
        self._templates: dict[str, PropertyTree] = {}
        self._template_sensors: dict[str, PropertyTree] = {}
        self._template_entities: dict[str, PropertyTree] = {}

    # -- to be provided by concrete plugins --------------------------------

    def build_group(
        self,
        name: str,
        config: PropertyTree,
        entity: Entity | None,
    ) -> SensorGroup:
        """Create the plugin's concrete group from merged config."""
        raise NotImplementedError

    def build_entity(self, name: str, config: PropertyTree) -> Entity:
        """Create a shared entity; default is the bare base class."""
        return Entity(name)

    # -- generic machinery --------------------------------------------------

    def read_config(self, source: str | PropertyTree) -> Plugin:
        """Parse ``source`` (INFO text or a pre-parsed tree) and build
        the full plugin instance."""
        tree = parse_info(source) if isinstance(source, str) else source
        global_cfg = tree.child("global")
        if global_cfg is not None:
            cache_ms = global_cfg.get_int("cacheInterval", 120_000)
            self.cache_maxage_ns = cache_ms * NS_PER_MS
        # First pass: collect templates (they are not instantiated).
        for key, node in tree.children():
            if key == "template_group":
                self._templates[node.value] = node
            elif key == "template_sensor":
                self._template_sensors[node.value] = node
            elif key == "template_entity":
                self._template_entities[node.value] = node
        plugin = Plugin(name=self.plugin_name, configurator=self)
        entities: dict[str, Entity] = {}
        if self.entity_key is not None:
            for key, node in tree.children(self.entity_key):
                merged = self._merge_template(node, self._template_entities)
                entity = self.build_entity(node.value or key, merged)
                entities[entity.name] = entity
                plugin.entities.append(entity)
        for key, node in tree.children("group"):
            merged = self._merge_template(node, self._templates)
            entity = None
            entity_name = merged.get("entity")
            if entity_name is not None:
                entity = entities.get(entity_name)
                if entity is None:
                    raise ConfigError(
                        f"group {node.value!r} references unknown entity {entity_name!r}"
                    )
            group = self.build_group(node.value or key, merged, entity)
            plugin.groups.append(group)
        return plugin

    def _merge_template(
        self, node: PropertyTree, templates: dict[str, PropertyTree]
    ) -> PropertyTree:
        """Overlay ``node`` onto its ``default`` template, if any."""
        template_name = node.get("default")
        if template_name is None:
            return node
        template = templates.get(template_name)
        if template is None:
            raise ConfigError(f"unknown template {template_name!r}")
        merged = PropertyTree(node.value)
        overridden = {key for key, _ in node.children()}
        for key, child in template.children():
            if key not in overridden:
                merged.add(key, child)
        for key, child in node.children():
            if key != "default":
                merged.add(key, child)
        return merged

    # -- shared parsing helpers ---------------------------------------------

    def group_common(self, name: str, config: PropertyTree) -> dict:
        """Extract the group attributes every plugin shares."""
        interval_ms = config.get_int("interval", 1000)
        if interval_ms <= 0:
            raise ConfigError(f"group {name!r}: interval must be positive")
        return {
            "name": name,
            "interval_ns": interval_ms * NS_PER_MS,
            "min_values": config.get_int("minValues", 1),
        }

    def make_sensor(self, name: str, config: PropertyTree) -> PluginSensor:
        """Build a :class:`PluginSensor` from a ``sensor`` block."""
        merged = self._merge_template(config, self._template_sensors)
        metadata = SensorMetadata(
            name=name,
            unit=merged.get("unit", "count"),
            scale=merged.get_float("scale", 1.0),
            delta=merged.get_bool("delta", False),
            integrable=merged.get_bool("integrable", False),
            ttl_s=merged.get_int("ttl", 0),
            publish=merged.get_bool("publish", True),
        )
        suffix = merged.get("mqttsuffix", f"/{name}")
        return PluginSensor(
            name=name,
            mqtt_suffix=suffix,
            metadata=metadata,
            cache_maxage_ns=self.cache_maxage_ns,
        )

    def sensors_from(self, config: PropertyTree) -> list[PluginSensor]:
        """Build every ``sensor`` block under ``config``."""
        return [
            self.make_sensor(node.value or key, node)
            for key, node in config.children("sensor")
        ]
