"""``dcdb-genplugin``: the plugin skeleton generator.

Paper section 4.1: "To simplify the process of implementing such
plugins DCDB provides a series of generator scripts.  They create all
files required for a new plugin and fill them with code skeletons to
connect to the plugin interface.  Comment blocks point to all
locations where custom code has to be provided."

``dcdb-genplugin mydevice ./plugins_dir`` writes three files:

* ``mydevice.py`` — a configurator/group skeleton with TODO markers;
* ``mydevice.conf`` — a sample configuration;
* ``test_mydevice.py`` — a pytest skeleton exercising the plugin
  through a stepped Pusher.
"""

from __future__ import annotations

import argparse
import os
import sys

_PLUGIN_TEMPLATE = '''"""{name} plugin (generated skeleton).

TODO: describe the data source this plugin monitors.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import (
    ConfiguratorBase,
    Entity,
    PluginSensor,
    SensorGroup,
)
from repro.core.pusher.registry import register_plugin


class {cls}Group(SensorGroup):
    """Reads all sensors of one group in a single cycle."""

    def read_raw(self, timestamp: int) -> list[int]:
        values: list[int] = []
        for sensor in self.sensors:
            # TODO: acquire the raw integer value of `sensor` here.
            # Raise PluginError on transient acquisition failures; the
            # framework logs them and continues with the next cycle.
            raise PluginError("acquisition not implemented yet")
        return values


class {cls}Configurator(ConfiguratorBase):
    """Parses {name}.conf blocks into groups and sensors."""

    plugin_name = "{name}"
    # TODO: set entity_key (e.g. "host") if groups share a connection,
    # and override build_entity() to construct it.

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        group = {cls}Group(entity=entity, **self.group_common(name, config))
        for key, node in config.children("sensor"):
            sensor = self.make_sensor(node.value or key, node)
            # TODO: read plugin-specific sensor attributes from `node`
            # (e.g. node.get("address")) and attach them to the sensor.
            group.add_sensor(sensor)
        if not group.sensors:
            raise ConfigError(f"{name} group defines no sensors")
        return group


register_plugin("{name}", {cls}Configurator)
'''

_CONF_TEMPLATE = """; sample configuration for the {name} plugin
global {{
    cacheInterval 120000
}}

group g0 {{
    interval 1000          ; sampling interval, ms
    sensor s0 {{
        mqttsuffix /{name}/s0
        unit count
        ; TODO: plugin-specific sensor attributes
    }}
}}
"""

_TEST_TEMPLATE = '''"""Tests for the generated {name} plugin."""

import pytest

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub

import {name}  # noqa: F401 - registers the plugin


CONFIG = """
group g0 {{
    interval 1000
    sensor s0 {{ mqttsuffix /{name}/s0 }}
}}
"""


def test_{name}_collects_readings():
    hub = InProcHub(allow_subscribe=False)
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/test"),
        client=InProcClient("p0", hub),
        clock=SimClock(0),
    )
    pusher.load_plugin("{name}", CONFIG)
    pusher.client.connect()
    pusher.start_plugin("{name}")
    pusher.advance_to(3 * NS_PER_SEC)
    # TODO: once read_raw is implemented, assert on collected readings:
    # assert pusher.readings_collected == 3
'''


def generate(name: str, directory: str) -> list[str]:
    """Write the three skeleton files; returns their paths."""
    if not name.isidentifier() or name != name.lower():
        raise ValueError(
            f"plugin name {name!r} must be a lowercase Python identifier"
        )
    os.makedirs(directory, exist_ok=True)
    cls = name.capitalize()
    files = {
        os.path.join(directory, f"{name}.py"): _PLUGIN_TEMPLATE.format(name=name, cls=cls),
        os.path.join(directory, f"{name}.conf"): _CONF_TEMPLATE.format(name=name),
        os.path.join(directory, f"test_{name}.py"): _TEST_TEMPLATE.format(name=name),
    }
    written = []
    for path, content in files.items():
        if os.path.exists(path):
            raise FileExistsError(f"{path} already exists; refusing to overwrite")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dcdb-genplugin", description="Generate a Pusher plugin skeleton."
    )
    parser.add_argument("name", help="plugin name (lowercase identifier)")
    parser.add_argument("directory", nargs="?", default=".", help="output directory")
    args = parser.parse_args(argv)
    try:
        for path in generate(args.name, args.directory):
            print(f"wrote {path}")
        return 0
    except (ValueError, FileExistsError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
