"""Plugin discovery and dynamic loading.

DCDB loads acquisition plugins as dynamic libraries "at initialization
time as well as at runtime" (paper section 3.1).  The Python analogue:
a registry mapping plugin names to configurator factories, populated
three ways:

1. built-in plugins under :mod:`repro.plugins` register themselves on
   import (lazily triggered by :func:`create_configurator`);
2. applications call :func:`register_plugin` directly;
3. external plugins load by dotted path ``"package.module:ClassName"``,
   the runtime-loading equivalent of ``dlopen``.
"""

from __future__ import annotations

import importlib
from typing import Callable, Type

from repro.common.errors import ConfigError
from repro.core.pusher.plugin import ConfiguratorBase

ConfiguratorFactory = Callable[[], ConfiguratorBase]

#: Built-in plugins: name -> module that registers it on import.
_BUILTIN_MODULES = {
    "tester": "repro.plugins.tester",
    "procfs": "repro.plugins.procfs",
    "sysfs": "repro.plugins.sysfs",
    "perfevents": "repro.plugins.perfevents",
    "ipmi": "repro.plugins.ipmi",
    "snmp": "repro.plugins.snmp",
    "rest": "repro.plugins.rest",
    "bacnet": "repro.plugins.bacnet",
    "gpfs": "repro.plugins.gpfs",
    "opa": "repro.plugins.opa",
    # Beyond the paper's ten: the GPU plugin its future-work section
    # announces (and later DCDB shipped), and the application
    # instrumentation source it plans for profiling data.
    "nvml": "repro.plugins.nvml",
    "appinstr": "repro.plugins.appinstr",
    # Self-monitoring: publishes the framework's own metrics registry
    # back through the pipeline ("monitoring the monitor").
    "dcdbmon": "repro.plugins.dcdbmon",
}


class PluginRegistry:
    """Maps plugin names to configurator factories."""

    def __init__(self) -> None:
        self._factories: dict[str, ConfiguratorFactory] = {}

    def register(self, name: str, factory: ConfiguratorFactory) -> None:
        self._factories[name] = factory

    def create(self, name: str) -> ConfiguratorBase:
        """Instantiate the configurator for plugin ``name``.

        Resolution order: already-registered factories, then built-in
        module import, then dotted-path dynamic load.
        """
        factory = self._factories.get(name)
        if factory is None and name in _BUILTIN_MODULES:
            importlib.import_module(_BUILTIN_MODULES[name])
            factory = self._factories.get(name)
        if factory is None and ":" in name:
            factory = self._load_dotted(name)
        if factory is None:
            raise ConfigError(f"unknown plugin {name!r}")
        return factory()

    def _load_dotted(self, path: str) -> ConfiguratorFactory:
        module_name, _, class_name = path.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ConfigError(f"cannot import plugin module {module_name!r}: {exc}") from exc
        cls: Type[ConfiguratorBase] | None = getattr(module, class_name, None)
        if cls is None or not issubclass(cls, ConfiguratorBase):
            raise ConfigError(
                f"{path!r} does not name a ConfiguratorBase subclass"
            )
        self._factories[path] = cls
        return cls

    def known_plugins(self) -> list[str]:
        return sorted(set(self._factories) | set(_BUILTIN_MODULES))


#: The process-wide default registry.
_GLOBAL = PluginRegistry()


def register_plugin(name: str, factory: ConfiguratorFactory) -> None:
    """Register ``factory`` under ``name`` in the global registry."""
    _GLOBAL.register(name, factory)


def create_configurator(name: str) -> ConfiguratorBase:
    """Instantiate a configurator from the global registry."""
    return _GLOBAL.create(name)


def global_registry() -> PluginRegistry:
    return _GLOBAL
