"""The Pusher's RESTful API.

Paper section 5.3: the API "provides an interface to retrieve the
current configuration (e.g., of plugins or sensors) and allows for
starting and stopping individual plugins ... one can modify a plugin's
configuration file at runtime and trigger a reload ... Further, the
RESTful API also provides access to a sensor cache that stores the
latest readings of all sensors."

Endpoints
---------
``GET  /status``                     Pusher-level counters and plugin list.
``GET  /plugins``                    Loaded plugins with group/sensor counts.
``GET  /plugins/{alias}/sensors``    Sensor inventory of one plugin.
``POST /plugins/{alias}/start``      Begin sampling.
``POST /plugins/{alias}/stop``       Stop sampling.
``POST /plugins/{alias}/reload``     Body = new INFO config; seamless reload.
``GET  /cache?topic=...``            Cached readings of a sensor.
``GET  /average?topic=...&window_ms=...``  Smoothed recent value.
``GET  /metrics``                    Prometheus exposition (``?format=json`` for JSON).
``GET  /health``                     Liveness checks (200 ok / 503 degraded).
``GET  /traces``                     Recent pipeline traces (``limit``, ``sid``, ``minLatencyMs``).
"""

from __future__ import annotations

from repro.common.httpjson import JsonHttpServer, RawResponse
from repro.core.pusher.pusher import Pusher
from repro.observability import (
    PROMETHEUS_CONTENT_TYPE,
    render_health,
    render_json,
    render_prometheus,
)


class PusherRestApi:
    """Binds a :class:`Pusher` to a :class:`JsonHttpServer`."""

    def __init__(self, pusher: Pusher, host: str = "127.0.0.1", port: int = 0) -> None:
        self.pusher = pusher
        # Share the pusher's registry so the HTTP request counters are
        # part of the same /metrics exposition.
        self.server = JsonHttpServer(host, port, metrics=pusher.metrics)
        s = self.server
        s.route("GET", "/status", self._status)
        s.route("GET", "/metrics", self._metrics)
        s.route("GET", "/health", self._health)
        s.route("GET", "/traces", self._traces)
        s.route("GET", "/plugins", self._plugins)
        s.route("GET", "/plugins/:alias/sensors", self._sensors)
        s.route("POST", "/plugins/:alias/start", self._start)
        s.route("POST", "/plugins/:alias/stop", self._stop)
        s.route("POST", "/plugins/:alias/reload", self._reload)
        s.route("GET", "/cache", self._cache)
        s.route("GET", "/average", self._average)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self.server.start()

    def stop(self) -> None:
        self.server.stop()

    @property
    def port(self) -> int | None:
        return self.server.port

    def __enter__(self) -> "PusherRestApi":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- handlers -----------------------------------------------------------

    def _status(self, params: dict, query: dict, body: bytes):
        return 200, self.pusher.status()

    def _metrics(self, params: dict, query: dict, body: bytes):
        families = self.pusher.metrics.collect()
        if query.get("format") == "json":
            return 200, render_json(families)
        return 200, RawResponse(render_prometheus(families), PROMETHEUS_CONTENT_TYPE)

    def _health(self, params: dict, query: dict, body: bytes):
        return render_health(self.pusher.health())

    def _traces(self, params: dict, query: dict, body: bytes):
        limit = int(query.get("limit", "50"))
        min_latency_ms = float(query.get("minLatencyMs", "0"))
        return 200, self.pusher.spans.traces(
            limit=limit,
            sid=query.get("sid"),
            min_latency_ns=int(min_latency_ms * 1e6),
        )

    def _plugins(self, params: dict, query: dict, body: bytes):
        return 200, {
            alias: {
                "running": plugin.running,
                "groups": [
                    {
                        "name": group.name,
                        "intervalMs": group.interval_ns // 1_000_000,
                        "sensors": len(group),
                        "readErrors": group.read_errors,
                    }
                    for group in plugin.groups
                ],
            }
            for alias, plugin in self.pusher.plugins.items()
        }

    def _sensors(self, params: dict, query: dict, body: bytes):
        plugin = self.pusher.plugins.get(params["alias"])
        if plugin is None:
            return 404, {"error": f"plugin {params['alias']!r} not loaded"}
        sensors = []
        for group in plugin.groups:
            for sensor in group.sensors:
                latest = sensor.cache.latest()
                sensors.append(
                    {
                        "name": sensor.name,
                        "topic": self.pusher.topic_of(sensor),
                        "unit": sensor.metadata.unit,
                        "group": group.name,
                        "latest": None
                        if latest is None
                        else {"timestamp": latest.timestamp, "value": latest.value},
                    }
                )
        return 200, sensors

    def _start(self, params: dict, query: dict, body: bytes):
        self.pusher.start_plugin(params["alias"])
        return 200, {"ok": True}

    def _stop(self, params: dict, query: dict, body: bytes):
        self.pusher.stop_plugin(params["alias"])
        return 200, {"ok": True}

    def _reload(self, params: dict, query: dict, body: bytes):
        config_text = body.decode("utf-8")
        plugin = self.pusher.reload_plugin(params["alias"], config_text)
        return 200, {"ok": True, "sensors": plugin.sensor_count}

    def _find_cache(self, query: dict):
        topic = query.get("topic")
        if not topic:
            return None, (400, {"error": "missing topic parameter"})
        sensor = self.pusher.sensor_by_topic(topic)
        if sensor is None:
            return None, (404, {"error": f"unknown sensor topic {topic!r}"})
        return sensor, None

    def _cache(self, params: dict, query: dict, body: bytes):
        sensor, error = self._find_cache(query)
        if error is not None:
            return error
        return 200, [
            {"timestamp": r.timestamp, "value": r.value} for r in sensor.cache.snapshot()
        ]

    def _average(self, params: dict, query: dict, body: bytes):
        sensor, error = self._find_cache(query)
        if error is not None:
            return error
        window_ms = query.get("window_ms")
        window_ns = int(window_ms) * 1_000_000 if window_ms else None
        avg = sensor.cache.average(window_ns)
        if avg is None:
            return 404, {"error": "no cached readings"}
        return 200, {"average": avg}
