"""The Pusher: DCDB's plugin-based data collector.

Paper section 4.1 describes the Pusher as "a set of Plugins, an MQTT
Client, an HTTPs Server, and a Configuration component", with plugins
built from up to four logical pieces: *Sensors* (single data sources),
*Groups* (sensors sharing one synchronized sampling interval),
*Entities* (optional shared resources such as a remote host
connection) and a *Configurator* (parses the plugin's configuration
and instantiates everything).

* :mod:`repro.core.pusher.plugin` — the base classes of that model.
* :mod:`repro.core.pusher.registry` — plugin discovery and dynamic
  loading.
* :mod:`repro.core.pusher.pusher` — the Pusher daemon: synchronized
  sampling threads, the MQTT push component with continuous and burst
  send modes, and lifecycle control.
* :mod:`repro.core.pusher.restapi` — the RESTful API for runtime
  (re)configuration and sensor-cache access (paper section 5.3).
* :mod:`repro.core.pusher.generator` — the plugin-skeleton generator
  DCDB ships to lower the cost of writing new plugins.
"""

from repro.core.pusher.plugin import (
    PluginSensor,
    SensorGroup,
    Entity,
    ConfiguratorBase,
    Plugin,
)
from repro.core.pusher.registry import PluginRegistry, register_plugin, create_configurator
from repro.core.pusher.pusher import Pusher, PusherConfig

__all__ = [
    "PluginSensor",
    "SensorGroup",
    "Entity",
    "ConfiguratorBase",
    "Plugin",
    "PluginRegistry",
    "register_plugin",
    "create_configurator",
    "Pusher",
    "PusherConfig",
]
