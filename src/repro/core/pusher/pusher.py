"""The Pusher daemon: synchronized sampling plus the MQTT push path.

Paper section 4.1: the Pusher's MQTT Client "periodically extracts the
data from the sensors in each plugin and pushes it to the associated
Collect Agent"; sensor read intervals are synchronized within groups,
across plugins, and across Pushers (via NTP — we align to the shared
wall clock, the same arithmetic).  Two send disciplines are supported,
matching the paper's observation on AMG interference (section 6.2.1):

* ``continuous`` — readings are published as soon as a sensor has
  accumulated ``minValues`` of them;
* ``burst`` — readings accumulate and are flushed together every
  ``burst_interval`` (the configuration that helped AMG by
  concentrating network interference into short windows).

The Pusher runs in one of two modes:

* **threaded** (:meth:`Pusher.start`/:meth:`Pusher.stop`): a pool of
  sampling threads serves a shared due-time heap — the paper's
  production deployments use two such threads (section 6.1);
* **stepped** (:meth:`Pusher.advance_to`): time is driven explicitly,
  making large simulated fleets and unit tests deterministic while
  exercising the identical collection/publish code path.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC, now_ns
from repro.core import payload as payload_mod
from repro.core.pusher.plugin import Plugin, PluginSensor, SensorGroup
from repro.core.pusher.registry import create_configurator
from repro.core.sensor import SensorReading
from repro.observability import MetricsRegistry, PipelineTracer, SpanRecorder
from repro.observability.spans import default_recorder, new_trace_id

logger = logging.getLogger(__name__)


@dataclass
class PusherConfig:
    """Global Pusher settings (the ``global`` block of dcdbpusher.conf)."""

    #: MQTT topic prefix identifying this Pusher's place in the
    #: hierarchy, e.g. "/lrz/coolmuc3/rack2/node17".
    mqtt_prefix: str = "/test/host0"
    broker_host: str = "127.0.0.1"
    broker_port: int = 1883
    #: Transport used when no client object is injected: "tcp" builds
    #: a reconnecting MQTTClient, "inproc" an InProcClient (the hub is
    #: then reachable via the transport instance).
    transport: str = "tcp"
    qos: int = 0
    #: Number of sampling threads (paper evaluation uses 2).
    threads: int = 2
    #: "continuous" or "burst".
    send_mode: str = "continuous"
    #: Flush period for burst mode; paper's AMG experiment used
    #: "regular bursts twice per minute" = 30 s.
    burst_interval_ns: int = 30 * NS_PER_SEC
    #: Sensor cache window (ms) applied to plugins loaded hereafter.
    cache_interval_ms: int = 120_000
    #: Pipeline-trace sampling: stamp 1 of every N readings/messages
    #: (1 = all, 0 = tracing off).  Bounds self-monitoring overhead.
    trace_sample_every: int = 1

    def __post_init__(self) -> None:
        if self.send_mode not in ("continuous", "burst"):
            raise ConfigError(f"unknown send mode {self.send_mode!r}")
        if self.threads < 1:
            raise ConfigError("need at least one sampling thread")
        if self.trace_sample_every < 0:
            raise ConfigError("trace_sample_every must be >= 0")


class Pusher:
    """Hosts plugins, samples their groups on time, publishes readings.

    ``client`` is any object with the MQTT client surface
    (``connect/publish/disconnect``) — a real
    :class:`~repro.mqtt.client.MQTTClient`, an
    :class:`~repro.mqtt.inproc.InProcClient`, or a test double.  When
    omitted, a TCP client is built from the config.  ``clock`` is a
    nanosecond-returning callable; inject a
    :class:`~repro.common.timeutil.SimClock` for stepped operation.
    """

    #: Minimum gap between reconnect attempts after publish failures.
    RECONNECT_BACKOFF_NS = 5 * NS_PER_SEC

    def __init__(
        self,
        config: PusherConfig | None = None,
        client=None,
        clock=None,
        metrics: MetricsRegistry | None = None,
        spans: SpanRecorder | None = None,
    ) -> None:
        self.config = config if config is not None else PusherConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else default_recorder()
        if client is None:
            from repro.mqtt.transport import get_transport

            transport = get_transport(self.config.transport)
            client = transport.make_client(
                f"pusher{self.config.mqtt_prefix.replace('/', '-')}",
                host=self.config.broker_host,
                port=self.config.broker_port,
                metrics=self.metrics,
            )
        self.client = client
        # The event-loop client reconnects on its own; hook its
        # re-establishment signal so the Pusher re-announces metadata
        # and its reconnect counter stays truthful.
        if getattr(client, "on_reconnect", "absent") is None:
            client.on_reconnect = self._on_client_reconnect
        self._clock = clock if clock is not None else now_ns
        self.plugins: dict[str, Plugin] = {}
        self._lock = threading.RLock()
        # Pending readings per sensor awaiting publication.
        self._pending: dict[PluginSensor, list[SensorReading]] = {}
        self._pending_lock = threading.Lock()
        # Trace IDs started at collection, awaiting the publish that
        # carries them on the wire (keyed by sensor; a later sampled
        # collect for the same unflushed sensor supersedes the trace).
        self._pending_traces: dict[PluginSensor, int] = {}
        self._topics: dict[PluginSensor, str] = {}
        # Threaded-mode machinery.
        self._heap: list[tuple[int, int, SensorGroup]] = []
        self._heap_cond = threading.Condition()
        self._tiebreak = itertools.count()
        self._workers: list[threading.Thread] = []
        self._burst_thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self.running = False
        # Statistics surfaced by the REST API and /metrics — registry
        # counters, because several sampling threads mutate them.
        self._readings_collected = self.metrics.counter(
            "dcdb_pusher_readings_collected_total", "Sensor readings collected"
        )
        self._messages_published = self.metrics.counter(
            "dcdb_pusher_messages_published_total", "MQTT messages published"
        )
        self._publish_failures = self.metrics.counter(
            "dcdb_pusher_publish_failures_total", "Publish attempts that raised"
        )
        self._reconnects = self.metrics.counter(
            "dcdb_pusher_reconnects_total", "Successful broker reconnections"
        )
        self.metrics.gauge(
            "dcdb_pusher_sensors", "Sensors across all loaded plugins"
        ).set_function(lambda: self.sensor_count)
        self.metrics.gauge(
            "dcdb_pusher_pending_readings", "Readings queued awaiting publication"
        ).set_function(self._pending_count)
        self.tracer = PipelineTracer(
            self.metrics,
            clock=self._clock,
            sample_every=self.config.trace_sample_every,
        )
        self._last_reconnect_ns = -(10**18)
        self._started_monotonic = time.monotonic()

    def _pending_count(self) -> int:
        with self._pending_lock:
            return sum(len(queue) for queue in self._pending.values())

    # Backward-compatible counter views over the registry.

    @property
    def readings_collected(self) -> int:
        return int(self._readings_collected.value)

    @property
    def messages_published(self) -> int:
        return int(self._messages_published.value)

    @property
    def publish_failures(self) -> int:
        return int(self._publish_failures.value)

    @property
    def reconnects(self) -> int:
        return int(self._reconnects.value)

    # -- plugin lifecycle --------------------------------------------------

    def load_plugin(self, name: str, config_source, plugin_alias: str | None = None) -> Plugin:
        """Instantiate plugin ``name`` from its configuration.

        ``plugin_alias`` allows loading the same plugin type twice
        under different names (e.g. two tester instances).  The plugin
        starts stopped; call :meth:`start_plugin`.
        """
        alias = plugin_alias or name
        with self._lock:
            if alias in self.plugins:
                raise ConfigError(f"plugin {alias!r} already loaded")
            configurator = create_configurator(name)
            configurator.cache_maxage_ns = self.config.cache_interval_ms * NS_PER_MS
            plugin = configurator.read_config(config_source)
            plugin.name = alias
            self.plugins[alias] = plugin
            for group in plugin.groups:
                for sensor in group.sensors:
                    self._topics[sensor] = self.config.mqtt_prefix + sensor.mqtt_suffix
                # Self-monitoring groups (the dcdbmon plugin) read this
                # Pusher's own registry; hand it over on load.
                attach = getattr(group, "attach_registry", None)
                if attach is not None:
                    attach(self.metrics)
        return plugin

    def unload_plugin(self, alias: str) -> None:
        with self._lock:
            plugin = self.plugins.pop(alias, None)
            if plugin is None:
                raise ConfigError(f"plugin {alias!r} not loaded")
            if plugin.running:
                self._stop_plugin_locked(plugin)
            for sensor in plugin.all_sensors():
                self._topics.pop(sensor, None)
                self._pending.pop(sensor, None)
                self._pending_traces.pop(sensor, None)

    def start_plugin(self, alias: str) -> None:
        """Begin sampling the plugin's groups."""
        with self._lock:
            plugin = self._plugin(alias)
            if plugin.running:
                return
            for entity in plugin.entities:
                entity.connect()
            now = self._clock()
            for group in plugin.groups:
                group.start()
                group.schedule_after(now)
                if self.running:
                    self._push_heap(group)
            plugin.running = True

    def stop_plugin(self, alias: str) -> None:
        with self._lock:
            plugin = self._plugin(alias)
            if not plugin.running:
                return
            self._stop_plugin_locked(plugin)

    def _stop_plugin_locked(self, plugin: Plugin) -> None:
        plugin.running = False
        for group in plugin.groups:
            group.stop()
            group.next_due_ns = None
        for entity in plugin.entities:
            entity.disconnect()

    def reload_plugin(self, alias: str, config_source) -> Plugin:
        """Replace a plugin's configuration without interrupting the
        Pusher — the seamless re-configuration of paper section 5.3."""
        with self._lock:
            plugin = self._plugin(alias)
            was_running = plugin.running
            type_name = plugin.configurator.plugin_name
            # Validate the new configuration BEFORE tearing down the old
            # plugin — a bad reload must leave the running one untouched.
            create_configurator(type_name).read_config(config_source)
            self.unload_plugin(alias)
            new_plugin = self.load_plugin(type_name, config_source, plugin_alias=alias)
            if was_running:
                self.start_plugin(alias)
            return new_plugin

    def _plugin(self, alias: str) -> Plugin:
        plugin = self.plugins.get(alias)
        if plugin is None:
            raise ConfigError(f"plugin {alias!r} not loaded")
        return plugin

    # -- metadata auto-publish ---------------------------------------------

    #: Topic prefix carrying sensor-metadata announcements.  Collect
    #: Agents intercept it (see CollectAgent) and persist the carried
    #: sensor configuration, so units/scaling factors configured at the
    #: Pusher become queryable without manual ``dcdb-config`` steps.
    METADATA_PREFIX = "$DCDB/metadata"

    def announce_metadata(self, alias: str | None = None) -> int:
        """Publish the sensor metadata of one plugin (or all).

        Returns the number of announcements sent.  Call after
        connecting; `start()` invokes it automatically.
        """
        import json

        count = 0
        with self._lock:
            plugins = (
                list(self.plugins.values())
                if alias is None
                else [self._plugin(alias)]
            )
            items = [
                (self._topics[sensor], sensor.metadata)
                for plugin in plugins
                for sensor in plugin.all_sensors()
                if sensor in self._topics
            ]
        for topic, metadata in items:
            document = {
                "topic": topic,
                "unit": metadata.unit,
                "scale": metadata.scale,
                "integrable": metadata.integrable,
                "ttl_s": metadata.ttl_s,
                "interval_ns": metadata.interval_ns,
            }
            try:
                self.client.publish(
                    f"{self.METADATA_PREFIX}{topic}",
                    json.dumps(document).encode("utf-8"),
                    qos=self.config.qos,
                )
                count += 1
            except Exception as exc:  # noqa: BLE001 - best-effort announcements
                logger.warning("metadata announcement for %s failed: %s", topic, exc)
        return count

    # -- shared collection path ----------------------------------------------

    def topic_of(self, sensor: PluginSensor) -> str:
        return self._topics[sensor]

    def _collect(self, group: SensorGroup, timestamp: int) -> None:
        """Read one group and queue/publish its readings."""
        results = group.read(timestamp)
        if not results:
            return
        self._readings_collected.inc(len(results))
        # Sensors may appear dynamically (e.g. the appinstr plugin
        # discovering instruments at runtime); give them topics.
        for sensor, reading in results:
            if sensor not in self._topics:
                self._topics[sensor] = self.config.mqtt_prefix + sensor.mqtt_suffix
            if self.tracer.should_sample():
                trace_id = new_trace_id()
                self.tracer.stamp("collect", reading.timestamp, trace_id=trace_id)
                self.spans.record(
                    trace_id,
                    "collect",
                    "pusher",
                    reading.timestamp,
                    # In stepped (simulated) mode the clock lags the
                    # group's due time until the step completes; clamp
                    # so the span never ends before it starts.
                    max(reading.timestamp, self._clock()),
                    sid=self._topics[sensor],
                )
                with self._pending_lock:
                    self._pending_traces[sensor] = trace_id
        burst = self.config.send_mode == "burst"
        with self._pending_lock:
            for sensor, reading in results:
                queue = self._pending.setdefault(sensor, [])
                queue.append(reading)
        if not burst:
            self._flush_ready(group.min_values)

    def _flush_ready(self, min_values: int) -> None:
        """Publish every sensor whose queue reached ``min_values``."""
        to_send: list[tuple[PluginSensor, list[SensorReading]]] = []
        with self._pending_lock:
            for sensor, queue in self._pending.items():
                if len(queue) >= min_values and queue:
                    to_send.append((sensor, queue[:]))
                    queue.clear()
        for sensor, readings in to_send:
            self._publish(sensor, readings)

    def flush(self) -> int:
        """Publish everything pending regardless of thresholds.

        Returns the number of MQTT messages sent.  This is the burst
        flush; it is also called on shutdown so no readings are lost.
        """
        with self._pending_lock:
            to_send = [(s, q[:]) for s, q in self._pending.items() if q]
            for _, q in self._pending.items():
                q.clear()
        for sensor, readings in to_send:
            self._publish(sensor, readings)
        return len(to_send)

    def _publish(self, sensor: PluginSensor, readings: list[SensorReading]) -> None:
        topic = self._topics.get(sensor)
        if topic is None:
            return
        with self._pending_lock:
            trace_id = self._pending_traces.pop(sensor, None)
        try:
            start_ns = self._clock()
            self.client.publish(
                topic,
                payload_mod.encode_readings(readings, trace_id=trace_id),
                qos=self.config.qos,
            )
            self._messages_published.inc()
            if trace_id is not None:
                # The message carries a trace: stamp the hop with the
                # exemplar and record the publish span.
                self.tracer.stamp(
                    "publish", readings[0].timestamp, trace_id=trace_id
                )
                self.spans.record(
                    trace_id,
                    "publish",
                    "pusher",
                    start_ns,
                    self._clock(),
                    topic=topic,
                    qos=self.config.qos,
                    readings=len(readings),
                )
            elif self.tracer.should_sample():
                self.tracer.stamp("publish", readings[0].timestamp)
        except Exception as exc:  # noqa: BLE001 - transport errors must not kill sampling
            logger.warning("publish of %s failed: %s", topic, exc)
            self._publish_failures.inc()
            self._try_reconnect()

    def _on_client_reconnect(self) -> None:
        """The client re-established its session on its own (event-loop
        transport): count it and re-announce sensor metadata so a
        restarted Collect Agent relearns units and scaling factors."""
        self._reconnects.inc()
        logger.info("client auto-reconnected; re-announcing metadata")
        self.announce_metadata()

    def _try_reconnect(self) -> None:
        """Re-establish the MQTT connection after a publish failure.

        A Collect Agent restart must not require restarting every
        Pusher in the facility.  Attempts are rate-limited to one per
        ``RECONNECT_BACKOFF_NS`` so a down agent costs one connect
        attempt per window, not one per reading.  Clients with their
        own reconnect machinery (the event-loop MQTTClient) are left
        alone once they have connected — closing them here would race
        the in-flight replay.
        """
        if getattr(self.client, "auto_reconnect", False) and getattr(
            self.client, "ever_connected", False
        ):
            return
        now = self._clock()
        if now - self._last_reconnect_ns < self.RECONNECT_BACKOFF_NS:
            return
        self._last_reconnect_ns = now
        try:
            self.client.close()
            self.client.connect()
            self._reconnects.inc()
            logger.info("reconnected to broker after publish failure")
            self.announce_metadata()
        except Exception as exc:  # noqa: BLE001
            logger.warning("reconnect attempt failed: %s", exc)

    # -- stepped (simulation/test) mode -----------------------------------------

    def advance_to(self, t_ns: int) -> int:
        """Process every group due at or before ``t_ns`` in time order.

        Returns the number of sampling cycles executed.  The clock
        passed at construction is not consulted; the caller owns time.
        """
        cycles = 0
        while True:
            best: SensorGroup | None = None
            with self._lock:
                for plugin in self.plugins.values():
                    if not plugin.running:
                        continue
                    for group in plugin.groups:
                        if not group.enabled or group.next_due_ns is None:
                            continue
                        if group.next_due_ns <= t_ns and (
                            best is None or group.next_due_ns < best.next_due_ns
                        ):
                            best = group
            if best is None:
                return cycles
            due = best.next_due_ns
            self._collect(best, due)
            best.next_due_ns = due + best.interval_ns
            cycles += 1

    # -- threaded mode -------------------------------------------------------------

    def start(self) -> None:
        """Connect the client and launch the sampling thread pool."""
        if self.running:
            return
        self.client.connect()
        self.announce_metadata()
        self._stop_event.clear()
        self.running = True
        with self._lock:
            now = self._clock()
            for plugin in self.plugins.values():
                if plugin.running:
                    for group in plugin.groups:
                        if group.next_due_ns is None:
                            group.schedule_after(now)
                        self._push_heap(group)
        for i in range(self.config.threads):
            worker = threading.Thread(
                target=self._worker_loop, name=f"pusher-sampler-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        if self.config.send_mode == "burst":
            self._burst_thread = threading.Thread(
                target=self._burst_loop, name="pusher-burst", daemon=True
            )
            self._burst_thread.start()

    def stop(self) -> None:
        """Stop sampling, flush pending readings, disconnect."""
        if not self.running:
            return
        self.running = False
        self._stop_event.set()
        with self._heap_cond:
            self._heap_cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=2.0)
        self._workers.clear()
        if self._burst_thread is not None:
            self._burst_thread.join(timeout=2.0)
            self._burst_thread = None
        self.flush()
        try:
            self.client.disconnect()
        except Exception:  # noqa: BLE001
            pass

    def __enter__(self) -> "Pusher":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _push_heap(self, group: SensorGroup) -> None:
        if group.next_due_ns is None:
            return
        with self._heap_cond:
            heapq.heappush(self._heap, (group.next_due_ns, next(self._tiebreak), group))
            self._heap_cond.notify()

    def _worker_loop(self) -> None:
        while not self._stop_event.is_set():
            with self._heap_cond:
                while not self._heap and not self._stop_event.is_set():
                    self._heap_cond.wait(timeout=0.5)
                if self._stop_event.is_set():
                    return
                due, _, group = heapq.heappop(self._heap)
            # Sleep outside the lock until the group is due.
            while True:
                now = self._clock()
                if now >= due:
                    break
                if self._stop_event.wait(min((due - now) / NS_PER_SEC, 0.5)):
                    return
            plugin_running = any(
                plugin.running and group in plugin.groups
                for plugin in self.plugins.values()
            )
            if plugin_running and group.enabled:
                self._collect(group, due)
                group.next_due_ns = due + group.interval_ns
                self._push_heap(group)

    def _burst_loop(self) -> None:
        interval_s = self.config.burst_interval_ns / NS_PER_SEC
        while not self._stop_event.wait(interval_s):
            self.flush()

    # -- introspection ----------------------------------------------------------------

    @property
    def sensor_count(self) -> int:
        with self._lock:
            return sum(plugin.sensor_count for plugin in self.plugins.values())

    def sensor_by_topic(self, topic: str) -> PluginSensor | None:
        with self._lock:
            for sensor, sensor_topic in self._topics.items():
                if sensor_topic == topic:
                    return sensor
        return None

    def health(self) -> dict[str, tuple[bool, dict]]:
        """Component liveness checks for the ``/health`` endpoint.

        Shaped for :func:`repro.observability.render_health`: the
        pusher is healthy when its sampling loops run and the broker
        link is up.
        """
        connected = bool(getattr(self.client, "connected", False))
        with self._lock:
            plugins_total = len(self.plugins)
            plugins_running = sum(1 for p in self.plugins.values() if p.running)
        return {
            "pusher": (
                self.running,
                {"running": self.running, "pendingReadings": self._pending_count()},
            ),
            "transport": (
                connected,
                {"connected": connected, "reconnects": self.reconnects},
            ),
            "plugins": (
                not self.running or plugins_running == plugins_total,
                {"running": plugins_running, "loaded": plugins_total},
            ),
        }

    def status(self) -> dict:
        """JSON-friendly snapshot for the REST API.

        Existing keys are stable; ``latency`` carries the registry's
        per-hop pipeline percentiles (None before the first stamp).
        """
        with self._lock:
            return {
                "mqttPrefix": self.config.mqtt_prefix,
                "running": self.running,
                "sendMode": self.config.send_mode,
                "uptimeSeconds": round(time.monotonic() - self._started_monotonic, 3),
                "qos": self.config.qos,
                "traceSampleEvery": self.config.trace_sample_every,
                "readingsCollected": self.readings_collected,
                "messagesPublished": self.messages_published,
                "publishFailures": self.publish_failures,
                "reconnects": self.reconnects,
                # Staging-queue depth of the publish path, mirroring the
                # Collect Agent status' writer queue on the ingest side.
                "pendingReadings": self._pending_count(),
                "latency": {
                    hop: self.tracer.percentiles(hop) for hop in ("collect", "publish")
                },
                "plugins": {
                    alias: {
                        "running": plugin.running,
                        "groups": len(plugin.groups),
                        "sensors": plugin.sensor_count,
                    }
                    for alias, plugin in self.plugins.items()
                },
            }
