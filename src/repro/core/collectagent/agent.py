"""Collect Agent implementation.

Wires together three pieces:

* a transport endpoint — either a TCP
  :class:`~repro.mqtt.broker.PublishOnlyBroker` (production layout) or
  an in-process :class:`~repro.mqtt.inproc.InProcHub` (simulation) —
  from which every accepted PUBLISH is delivered via hook;
* the :class:`~repro.core.sid.SidMapper` translating topics into
  storage keys (1:1, hierarchical, paper section 4.2);
* a :class:`~repro.storage.backend.StorageBackend` receiving the
  readings, batched per MQTT message.

The agent also keeps a per-topic :class:`~repro.core.sensor.SensorCache`
("gives access to the most recent readings of all Pushers connected",
paper section 5.3) and counters for the load experiments.
"""

from __future__ import annotations

import json
import logging
import threading
import time

from repro.common.errors import BackpressureError, StorageError, TransportError
from repro.common.timeutil import NS_PER_SEC, now_ns
from repro.core import payload as payload_mod
from repro.core.collectagent.writer import BatchingWriter, WriterConfig
from repro.core.sensor import SensorCache
from repro.core.sid import PersistentSidMapper, SensorId
from repro.mqtt.packets import Publish
from repro.mqtt.transport import get_transport
from repro.observability import MetricsRegistry, PipelineTracer, SpanRecorder
from repro.observability.spans import default_recorder, trace_context
from repro.storage.backend import StorageBackend
from repro.storage.rollup import RollupConfig, RollupEngine

logger = logging.getLogger(__name__)


class CollectAgent:
    """Receives Pusher publishes and persists them.

    Parameters
    ----------
    backend:
        Destination storage.
    broker:
        Transport endpoint exposing ``add_publish_hook``; when None a
        publish-only broker is built from ``transport`` on
        ``host:port``.
    transport:
        Transport selector used when ``broker`` is None: ``"tcp"``
        (default), ``"inproc"``, or a
        :class:`~repro.mqtt.transport.Transport` instance.
    cache_maxage_ns:
        Window of the agent-side sensor cache.
    default_ttl_s:
        TTL applied to stored readings (0 = keep forever).
    writer_config:
        When given, readings are staged in an asynchronous
        :class:`~repro.core.collectagent.writer.BatchingWriter` that
        coalesces writes across MQTT messages instead of hitting the
        backend synchronously on the dispatch thread (paper section
        5.3: Cassandra inserts happen in large asynchronous batches).
        ``None`` (the default) keeps the synchronous per-message path.
    rollup_config:
        When given, a :class:`~repro.storage.rollup.RollupEngine`
        continuously maintains 10s/1m/1h min/max/sum/count rollup
        series per sensor, observed after each successful storage
        flush (batched or synchronous).  ``None`` disables rollups.
    """

    def __init__(
        self,
        backend: StorageBackend,
        broker=None,
        host: str = "127.0.0.1",
        port: int = 1883,
        cache_maxage_ns: int = 120 * NS_PER_SEC,
        default_ttl_s: int = 0,
        metrics: MetricsRegistry | None = None,
        clock=None,
        trace_sample_every: int = 1,
        writer_config: WriterConfig | None = None,
        transport=None,
        spans: SpanRecorder | None = None,
        rollup_config: RollupConfig | None = None,
    ) -> None:
        self.backend = backend
        self.spans = spans if spans is not None else default_recorder()
        self._clock = clock if clock is not None else now_ns
        self._started_monotonic = time.monotonic()
        # The agent and its broker share ONE registry so status() and
        # /metrics read broker stats from the snapshot rather than
        # duck-typing broker attributes.
        if metrics is None:
            metrics = getattr(broker, "metrics", None) if broker is not None else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if broker is None:
            self.transport = get_transport(transport)
            broker = self.transport.make_broker(
                publish_only=True, host=host, port=port, metrics=self.metrics
            )
        else:
            self.transport = transport
        self.broker = broker
        # Component codes are coordinated through backend metadata so
        # several Collect Agents sharing one Storage Backend (and
        # restarts of this agent) agree on the topic->SID mapping.
        self.sid_mapper = PersistentSidMapper(backend)
        self.cache_maxage_ns = cache_maxage_ns
        self.default_ttl_s = default_ttl_s
        # Concurrency contract for _caches (the single place it is
        # documented — every reader below relies on it): the dict is
        # mutated only under _caches_lock and only ever grows.  Readers
        # therefore need no lock as long as they touch the dict through
        # ONE atomic operation — a single ``dict.get`` or a whole-dict
        # key snapshot such as ``sorted(d)``/``list(d)``, which CPython
        # executes as one C call without releasing the GIL.  Anything
        # that iterates the dict incrementally (multiple bytecodes
        # between reads) must take _caches_lock.
        self._caches: dict[str, SensorCache] = {}
        self._caches_lock = threading.Lock()
        self._readings_stored = self.metrics.counter(
            "dcdb_agent_readings_stored_total", "Readings handed to the storage backend"
        )
        self._decode_errors = self.metrics.counter(
            "dcdb_agent_decode_errors_total", "Payloads/topics/metadata that failed to parse"
        )
        self._metadata_announcements = self.metrics.counter(
            "dcdb_agent_metadata_announcements_total", "Sensor metadata documents persisted"
        )
        self.metrics.gauge(
            "dcdb_agent_cached_topics", "Distinct topics in the agent-side sensor cache"
        ).set_function(lambda: len(self._caches))
        self.metrics.gauge(
            "dcdb_agent_known_sensors", "Topics with an assigned storage SID"
        ).set_function(lambda: len(self.sid_mapper))
        self.tracer = PipelineTracer(
            self.metrics, clock=clock, sample_every=trace_sample_every
        )
        self.rollup = (
            RollupEngine(backend, rollup_config, metrics=self.metrics, clock=clock)
            if rollup_config is not None
            else None
        )
        self.writer = (
            BatchingWriter(
                backend,
                writer_config,
                metrics=self.metrics,
                clock=clock,
                tracer=self.tracer,
                spans=self.spans,
                rollup=self.rollup,
            )
            if writer_config is not None
            else None
        )
        self._backpressure_drops = self.metrics.counter(
            "dcdb_agent_backpressure_drops_total",
            "Readings rejected because the staging queue was full (error policy)",
        )
        self._store_errors = self.metrics.counter(
            "dcdb_agent_store_errors_total",
            "Readings the storage backend refused on the synchronous path",
        )
        self.broker.add_publish_hook(self._on_publish)

    # Backward-compatible counter views over the registry.

    @property
    def readings_stored(self) -> int:
        return int(self._readings_stored.value)

    @property
    def decode_errors(self) -> int:
        return int(self._decode_errors.value)

    @property
    def metadata_announcements(self) -> int:
        return int(self._metadata_announcements.value)

    @property
    def store_errors(self) -> int:
        return int(self._store_errors.value)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.writer is not None:
            self.writer.start()
        start = getattr(self.broker, "start", None)
        if start is not None:
            start()

    def stop(self) -> None:
        # Drain the staging queue BEFORE flushing the backend: every
        # accepted reading must reach the backend's write path first,
        # or flush() would freeze a memtable that is still missing them.
        if self.writer is not None:
            self.writer.stop()
        if self.rollup is not None:
            # One last pass so every sealable bucket (and any batch a
            # transient fault left pending) lands before shutdown.
            self.rollup.flush()
        self.backend.flush()
        stop = getattr(self.broker, "stop", None)
        if stop is not None:
            stop()

    def __enter__(self) -> "CollectAgent":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def port(self) -> int | None:
        return getattr(self.broker, "port", None)

    # -- ingest path ------------------------------------------------------------

    #: Must match Pusher.METADATA_PREFIX.
    METADATA_PREFIX = "$DCDB/metadata"

    def _on_publish(self, client_id: str, packet: Publish) -> None:
        if packet.topic.startswith(self.METADATA_PREFIX):
            self._on_metadata(client_id, packet)
            return
        try:
            readings, trace_id = payload_mod.decode_message(packet.payload)
        except TransportError as exc:
            self._decode_errors.inc()
            logger.warning("bad payload on %s from %s: %s", packet.topic, client_id, exc)
            return
        if not readings:
            return
        known = self.sid_mapper.lookup_topic(packet.topic)
        try:
            sid = known if known is not None else self.sid_mapper.sid_for_topic(packet.topic)
        except TransportError as exc:
            self._decode_errors.inc()
            logger.warning("bad topic %r from %s: %s", packet.topic, client_id, exc)
            return
        if known is None:
            # Persist the topic->SID mapping so query tools in other
            # processes can resolve topics (libDCDB reads these keys).
            self.backend.put_metadata(f"sidmap{packet.topic}", sid.hex())
        # Wire-traced messages were sampled at the pusher; only
        # trace-headerless traffic consults the local sampling knob.
        traced = trace_id is not None or self.tracer.should_sample()
        origin = readings[0].timestamp
        start_ns = self._clock() if trace_id is not None else 0
        if traced:
            self.tracer.stamp("insert", origin, trace_id=trace_id)
        ttl = self.default_ttl_s
        items = [(sid, r.timestamp, r.value, ttl) for r in readings]
        if self.writer is not None:
            # Asynchronous path: stage and return; the writer stamps
            # "commit" when the coalesced batch is durable, so the hop
            # measures real durability latency rather than enqueue time.
            try:
                self.writer.put(items, origin if traced else None, trace_id=trace_id)
            except BackpressureError as exc:
                self._backpressure_drops.inc(len(items))
                logger.warning("backpressure on %s: %s", packet.topic, exc)
                return
            if trace_id is not None:
                self.spans.record(
                    trace_id,
                    "insert",
                    "agent",
                    start_ns,
                    self._clock(),
                    topic=packet.topic,
                    readings=len(readings),
                    staged=True,
                )
        else:
            # A storage failure must not propagate into the broker's
            # reader thread (it would tear down the MQTT connection of
            # a Pusher whose publish was perfectly valid): count it,
            # log it, and keep the pipeline flowing.  The replicated
            # cluster only raises here when a reading landed on no
            # replica at all.
            try:
                # The ambient trace context lets the storage layer
                # record replica/retry spans without a signature
                # change; untraced messages skip the context manager
                # entirely (it is per-message hot-path cost).
                if trace_id is not None:
                    with trace_context(trace_id):
                        self.backend.insert_batch(items)
                else:
                    self.backend.insert_batch(items)
            except StorageError as exc:
                self._store_errors.inc(len(items))
                logger.warning(
                    "storage rejected %d readings on %s: %s",
                    len(items),
                    packet.topic,
                    exc,
                )
                return
            if self.rollup is not None:
                self.rollup.observe(items)
            commit_ns = self._clock()
            if traced:
                # The batch is durably in the backend's write path: this
                # stamp is the end-to-end pipeline latency.
                self.tracer.stamp("commit", origin, trace_id=trace_id)
            if trace_id is not None:
                self.spans.record(
                    trace_id,
                    "insert",
                    "agent",
                    start_ns,
                    commit_ns,
                    topic=packet.topic,
                    readings=len(readings),
                    staged=False,
                )
                self.spans.record(
                    trace_id,
                    "commit",
                    "agent",
                    start_ns,
                    commit_ns,
                    backend=type(self.backend).__name__,
                )
        cache = self._cache_for(packet.topic)
        for reading in readings:
            cache.store(reading)
        self._readings_stored.inc(len(readings))

    def _on_metadata(self, client_id: str, packet: Publish) -> None:
        """Persist a Pusher's sensor-metadata announcement.

        Stored under the same ``sensorconfig<topic>`` keys the config
        tool writes, so libDCDB decodes announced sensors without any
        manual configuration (DCDB's auto-publish behaviour).
        """
        try:
            document = json.loads(packet.payload)
            topic = document["topic"]
            if topic != packet.topic[len(self.METADATA_PREFIX) :]:
                raise ValueError("metadata topic mismatch")
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            self._decode_errors.inc()
            logger.warning("bad metadata announcement from %s: %s", client_id, exc)
            return
        record = {
            "topic": topic,
            "unit": document.get("unit", "count"),
            "scale": float(document.get("scale", 1.0)),
            "integrable": bool(document.get("integrable", False)),
            "ttl_s": int(document.get("ttl_s", 0)),
            "attributes": {"interval_ns": str(document.get("interval_ns", 0))},
        }
        self.backend.put_metadata(f"sensorconfig{topic}", json.dumps(record))
        self._metadata_announcements.inc()

    def _cache_for(self, topic: str) -> SensorCache:
        # Lock-free fast path: one dict.get per the _caches contract.
        cache = self._caches.get(topic)
        if cache is None:
            with self._caches_lock:
                cache = self._caches.get(topic)
                if cache is None:
                    cache = SensorCache(maxage_ns=self.cache_maxage_ns)
                    self._caches[topic] = cache
        return cache

    # -- cache / introspection API (backs REST) --------------------------------------

    def cached_topics(self) -> list[str]:
        # sorted(dict) snapshots the keys in one C call (see the
        # _caches contract), so this read needs no lock either.
        return sorted(self._caches)

    def cache_of(self, topic: str) -> SensorCache | None:
        # Single dict.get per the _caches contract.
        return self._caches.get(topic)

    def latest(self, topic: str):
        """Most recent cached reading of ``topic``, or None."""
        cache = self._caches.get(topic)
        return cache.latest() if cache is not None else None

    def sid_of(self, topic: str) -> SensorId | None:
        return self.sid_mapper.lookup_topic(topic)

    def metrics_registries(self) -> list[MetricsRegistry]:
        """All registries behind this agent's ``/metrics`` exposition.

        The agent/broker registry plus whatever the storage backend
        exposes (a :class:`~repro.storage.cluster.StorageCluster`
        contributes one per node).
        """
        registries = [self.metrics]
        backend_regs = getattr(self.backend, "metrics_registries", None)
        if backend_regs is not None:
            registries.extend(backend_regs())
        else:
            backend_reg = getattr(self.backend, "metrics", None)
            if backend_reg is not None:
                registries.append(backend_reg)
        seen: set[int] = set()
        return [r for r in registries if not (id(r) in seen or seen.add(id(r)))]

    def health(self) -> dict[str, tuple[bool, dict]]:
        """Per-component readiness checks for the ``/health`` route.

        Components: the transport endpoint (loop thread alive for the
        TCP broker; trivially ready in-proc), the batching writer
        (queue below its high watermark, threads running) and storage
        (live replica count when the backend is a cluster).
        """
        checks: dict[str, tuple[bool, dict]] = {}
        threads = getattr(self.broker, "transport_threads", None)
        if threads is not None:
            checks["broker"] = (
                threads >= 1,
                {"transportThreads": threads, "port": self.port},
            )
        else:
            checks["broker"] = (True, {"inproc": True})
        if self.writer is not None:
            wstatus = self.writer.status()
            depth = wstatus.get("queueDepth", 0)
            capacity = wstatus.get("queueCapacity", 0) or 1
            below_watermark = depth < 0.9 * capacity
            checks["writer"] = (
                bool(wstatus.get("running")) and below_watermark,
                {
                    "queueDepth": depth,
                    "queueCapacity": capacity,
                    "belowWatermark": below_watermark,
                },
            )
        liveness = getattr(self.backend, "node_liveness", None)
        if liveness is not None:
            live, total = liveness()
            detail: dict = {"liveReplicas": live, "totalReplicas": total}
            states = getattr(self.backend, "node_states", None)
            if states is not None:
                detail["nodes"] = states()
            checks["storage"] = (live > 0, detail)
        else:
            checks["storage"] = (True, {"backend": type(self.backend).__name__})
        return checks

    def status(self) -> dict:
        """JSON-friendly snapshot for the REST API.

        Broker statistics come from the shared registry snapshot (the
        broker writes its counters there), not from duck-typed broker
        attributes.  Existing keys are stable; ``latency`` adds the
        per-hop pipeline percentiles.
        """
        return {
            "uptimeSeconds": round(time.monotonic() - self._started_monotonic, 3),
            "traceSampleEvery": self.tracer.sample_every,
            "cacheMaxAgeNs": self.cache_maxage_ns,
            "defaultTtlSeconds": self.default_ttl_s,
            "readingsStored": self.readings_stored,
            "decodeErrors": self.decode_errors,
            "storeErrors": self.store_errors,
            "knownSensors": len(self.sid_mapper),
            "connectedClients": int(
                self.metrics.value("dcdb_broker_connected_clients")
            ),
            "messagesReceived": int(
                self.metrics.value("dcdb_broker_messages_received_total")
            ),
            "latency": {
                hop: self.tracer.percentiles(hop)
                for hop in ("dispatch", "insert", "commit")
            },
            # None on the synchronous path; queue/batch statistics of
            # the asynchronous ingest path when batching is enabled.
            "writer": self.writer.status() if self.writer is not None else None,
            # None when continuous aggregation is disabled.
            "rollup": self.rollup.status() if self.rollup is not None else None,
        }
