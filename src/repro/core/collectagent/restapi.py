"""The Collect Agent's RESTful API.

Paper section 5.3: "Analogous to Pushers, Collect Agents provide a
sensor cache that can be queried via the same RESTful API and that
gives access to the most recent readings of all Pushers connected to
them.  This can be used, for example, to feed all readings into
another (legacy) monitoring framework without having to deal with the
protocols of various sensors."

Endpoints
---------
``GET /status``                    Ingest counters.
``GET /topics``                    All sensor topics seen.
``GET /cache?topic=...``           Cached readings of one sensor.
``GET /latest?topic=...``          Most recent cached reading.
``GET /query?topic=...&start=...&end=...``  Readings from storage.
``GET /metrics``                   Prometheus exposition (``?format=json`` for JSON).
``GET /health``                    Liveness checks (200 ok / 503 degraded).
``GET /traces``                    Recent pipeline traces (``limit``, ``sid``, ``minLatencyMs``).
"""

from __future__ import annotations

from repro.common.httpjson import JsonHttpServer, RawResponse
from repro.core.collectagent.agent import CollectAgent
from repro.observability import (
    PROMETHEUS_CONTENT_TYPE,
    merge_snapshots,
    render_health,
    render_json,
    render_prometheus,
)


class CollectAgentRestApi:
    """Binds a :class:`CollectAgent` to a :class:`JsonHttpServer`."""

    def __init__(self, agent: CollectAgent, host: str = "127.0.0.1", port: int = 0) -> None:
        self.agent = agent
        # Share the agent/broker registry; storage-backend registries
        # are merged in per scrape (they may live in other objects).
        self.server = JsonHttpServer(host, port, metrics=agent.metrics)
        s = self.server
        s.route("GET", "/status", self._status)
        s.route("GET", "/metrics", self._metrics)
        s.route("GET", "/health", self._health)
        s.route("GET", "/traces", self._traces)
        s.route("GET", "/topics", self._topics)
        s.route("GET", "/cache", self._cache)
        s.route("GET", "/latest", self._latest)
        s.route("GET", "/query", self._query)
        s.route("GET", "/analytics", self._analytics)
        s.route("GET", "/alarms", self._alarms)

    def start(self) -> None:
        self.server.start()

    def stop(self) -> None:
        self.server.stop()

    @property
    def port(self) -> int | None:
        return self.server.port

    def __enter__(self) -> "CollectAgentRestApi":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- handlers ----------------------------------------------------------

    def _status(self, params: dict, query: dict, body: bytes):
        return 200, self.agent.status()

    def _metrics(self, params: dict, query: dict, body: bytes):
        registries = self.agent.metrics_registries()
        families = merge_snapshots([r.collect() for r in registries])
        if query.get("format") == "json":
            return 200, render_json(families)
        return 200, RawResponse(render_prometheus(families), PROMETHEUS_CONTENT_TYPE)

    def _health(self, params: dict, query: dict, body: bytes):
        return render_health(self.agent.health())

    def _traces(self, params: dict, query: dict, body: bytes):
        limit = int(query.get("limit", "50"))
        min_latency_ms = float(query.get("minLatencyMs", "0"))
        return 200, self.agent.spans.traces(
            limit=limit,
            sid=query.get("sid"),
            min_latency_ns=int(min_latency_ms * 1e6),
        )

    def _topics(self, params: dict, query: dict, body: bytes):
        return 200, self.agent.cached_topics()

    def _cache(self, params: dict, query: dict, body: bytes):
        topic = query.get("topic")
        if not topic:
            return 400, {"error": "missing topic parameter"}
        cache = self.agent.cache_of(topic)
        if cache is None:
            return 404, {"error": f"unknown topic {topic!r}"}
        return 200, [
            {"timestamp": r.timestamp, "value": r.value} for r in cache.snapshot()
        ]

    def _latest(self, params: dict, query: dict, body: bytes):
        topic = query.get("topic")
        if not topic:
            return 400, {"error": "missing topic parameter"}
        reading = self.agent.latest(topic)
        if reading is None:
            return 404, {"error": f"no cached readings for {topic!r}"}
        return 200, {"timestamp": reading.timestamp, "value": reading.value}

    def _query(self, params: dict, query: dict, body: bytes):
        topic = query.get("topic")
        if not topic:
            return 400, {"error": "missing topic parameter"}
        sid = self.agent.sid_of(topic)
        if sid is None:
            return 404, {"error": f"unknown topic {topic!r}"}
        start = int(query.get("start", "0"))
        end = int(query.get("end", str((1 << 63) - 1)))
        timestamps, values = self.agent.backend.query(sid, start, end)
        return 200, {
            "topic": topic,
            "timestamps": timestamps.tolist(),
            "values": values.tolist(),
        }

    def _manager(self):
        return getattr(self.agent, "analytics", None)

    def _analytics(self, params: dict, query: dict, body: bytes):
        manager = self._manager()
        if manager is None:
            return 404, {"error": "no analytics manager attached"}
        return 200, manager.status()

    def _alarms(self, params: dict, query: dict, body: bytes):
        manager = self._manager()
        if manager is None:
            return 404, {"error": "no analytics manager attached"}
        limit = int(query.get("limit", "100"))
        events = list(manager.alarms)[-limit:]
        return 200, [
            {
                "timestamp": e.timestamp,
                "operator": e.operator,
                "topic": e.topic,
                "value": e.value,
                "message": e.message,
            }
            for e in events
        ]
