"""Asynchronous batched ingest: cross-message write coalescing.

The paper's Collect Agent sustains millions of inserts per second
because readings are staged and written to Cassandra in large
asynchronous batches (section 5.3, Figure 8) instead of one storage
round-trip per MQTT message.  :class:`BatchingWriter` reproduces that
decoupling for any :class:`~repro.storage.backend.StorageBackend`:

* ``put()`` stages the readings of one message in a bounded queue and
  returns immediately — the broker's dispatch thread never waits on
  storage;
* dedicated writer threads coalesce staged messages *across* MQTT
  publishes into batches of up to ``max_batch`` readings and hand them
  to ``backend.insert_batch`` in one call;
* a flush is triggered by batch **size** (``max_batch`` readings
  staged), batch **age** (the oldest staged reading exceeds
  ``max_delay_ns`` on the injected clock), or **shutdown** —
  :meth:`stop` drains every accepted reading before returning, so
  enabling batching never loses data on a clean shutdown.

Backpressure when the queue is full is explicit policy, not an
accident of buffer growth:

``block``
    ``put()`` waits until writer threads free capacity (lossless,
    propagates storage slowness to producers).
``drop-oldest``
    evict the oldest staged readings to make room, counting them in
    ``dcdb_writer_readings_dropped_total`` (freshest-data-wins, the
    right default for monitoring feeds).
``error``
    raise :class:`~repro.common.errors.BackpressureError` and leave
    the queue untouched (producer decides).

A failed flush does **not** drop its batch: the entries are re-queued
at the head of the staging queue (order preserved) and retried up to
``flush_retries`` times with a capped-exponential pause, so transient
storage faults — a replica restarting, a flaky disk — cost latency,
not data.  Storage backends deduplicate re-applied timestamps
(last-write-wins), making a retry that races a partial success safe.

Observability: queue depth gauge, batch-size and flush-latency
histograms, dropped/requeued/lost/flushed counters, and — when a
:class:`~repro.observability.PipelineTracer` is attached — the
``commit`` trace hop stamped at *flush completion*, i.e. when the
batch is really durable in the backend, not when it was enqueued.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.common.errors import BackpressureError, ConfigError
from repro.observability import MetricsRegistry, SpanRecorder
from repro.observability.spans import default_recorder, trace_context
from repro.storage.backend import InsertItem, StorageBackend

logger = logging.getLogger(__name__)

__all__ = ["BACKPRESSURE_POLICIES", "BATCH_SIZE_BUCKETS", "BatchingWriter", "WriterConfig"]

#: Valid ``WriterConfig.policy`` values.
BACKPRESSURE_POLICIES = ("block", "drop-oldest", "error")

#: Readings-per-flush histogram buckets (1 .. 50k readings).
BATCH_SIZE_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0,
)


@dataclass(frozen=True, slots=True)
class WriterConfig:
    """Tuning knobs of the batched ingest path.

    ``max_batch``
        flush once this many readings are staged (size trigger).
    ``max_delay_ns``
        flush once the oldest staged reading is this old on the
        writer's clock (age trigger; bounds worst-case visibility lag).
    ``queue_capacity``
        bound on staged readings; beyond it the backpressure
        ``policy`` applies.
    ``policy``
        one of :data:`BACKPRESSURE_POLICIES`.
    ``writers``
        number of dedicated flush threads.
    ``poll_interval_s``
        real-time granularity at which idle writer threads re-check
        the age trigger; lets an injected
        :class:`~repro.common.timeutil.SimClock` drive age-based
        flushes deterministically.
    ``flush_retries``
        how many times a batch whose flush failed is re-queued and
        retried before its readings are abandoned (counted in
        ``dcdb_writer_readings_lost_total``).  The cap keeps
        :meth:`BatchingWriter.stop` from spinning forever against a
        permanently dead backend.
    ``retry_backoff_s``
        base of the capped exponential pause a writer thread takes
        after a failed flush, so a down backend is probed rather than
        hammered.
    ``slow_flush_s``
        flushes slower than this (wall seconds) are logged at WARNING
        with their trace ID and batch size; 0 disables the slow-op log.
    """

    max_batch: int = 4096
    max_delay_ns: int = 50_000_000  # 50 ms
    queue_capacity: int = 65_536
    policy: str = "block"
    writers: int = 1
    poll_interval_s: float = 0.005
    flush_retries: int = 4
    retry_backoff_s: float = 0.002
    slow_flush_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ns < 0:
            raise ConfigError(f"max_delay_ns must be >= 0, got {self.max_delay_ns}")
        if self.queue_capacity < self.max_batch:
            raise ConfigError(
                f"queue_capacity ({self.queue_capacity}) must be >= "
                f"max_batch ({self.max_batch})"
            )
        if self.policy not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"unknown backpressure policy {self.policy!r}; "
                f"choose one of {BACKPRESSURE_POLICIES}"
            )
        if self.writers < 1:
            raise ConfigError(f"writers must be >= 1, got {self.writers}")
        if self.poll_interval_s <= 0:
            raise ConfigError("poll_interval_s must be positive")
        if self.flush_retries < 0:
            raise ConfigError(f"flush_retries must be >= 0, got {self.flush_retries}")
        if self.retry_backoff_s < 0:
            raise ConfigError("retry_backoff_s must be >= 0")
        if self.slow_flush_s < 0:
            raise ConfigError("slow_flush_s must be >= 0 (0 disables the slow-op log)")


class BatchingWriter:
    """Bounded staging queue + writer threads in front of a backend.

    Queue entries are the per-message reading lists exactly as the
    agent decoded them (no per-reading copies); coalescing concatenates
    message lists only when a flush spans several messages, and a flush
    covering a single staged message passes that list through untouched.
    """

    def __init__(
        self,
        backend: StorageBackend,
        config: WriterConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock=None,
        tracer=None,
        spans: SpanRecorder | None = None,
        rollup=None,
    ) -> None:
        from repro.common.timeutil import now_ns

        self.backend = backend
        # Continuous-aggregation hook (a RollupEngine): observes every
        # batch AFTER insert_batch succeeded, so rollups are derived
        # only from readings that are durably in the backend.
        self.rollup = rollup
        self.config = config if config is not None else WriterConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.spans = spans if spans is not None else default_recorder()
        self._clock = clock if clock is not None else now_ns
        # Entries are (items, traced_origin_ns | None, enqueued_ns,
        # flush_attempts, trace_id | None).  attempts > 0 marks a batch
        # re-queued after a failed flush; it keeps its place at the
        # queue head so the original arrival order is preserved across
        # retries.
        self._entries: deque[
            tuple[list[InsertItem], int | None, int, int, int | None]
        ] = deque()
        self._depth = 0  # readings staged (not yet taken by a writer)
        self._inflight = 0  # readings taken but not yet durable
        self._stopping = False
        self._force_flush = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []

        self.metrics.gauge(
            "dcdb_writer_queue_depth", "Readings staged in the batching writer"
        ).set_function(lambda: self._depth)
        self.metrics.gauge(
            "dcdb_writer_queue_capacity", "Staging queue bound (readings)"
        ).set(self.config.queue_capacity)
        self._queue_hwm = 0  # guarded by _lock
        self.metrics.gauge(
            "dcdb_writer_queue_high_watermark",
            "Deepest the staging queue has been (readings)",
        ).set_function(lambda: self._queue_hwm)
        self._enqueued = self.metrics.counter(
            "dcdb_writer_readings_enqueued_total", "Readings accepted into the staging queue"
        )
        self._flushed = self.metrics.counter(
            "dcdb_writer_readings_flushed_total", "Readings durably written by flushes"
        )
        self._dropped = self.metrics.counter(
            "dcdb_writer_readings_dropped_total",
            "Readings evicted by the drop-oldest backpressure policy",
        )
        self._flushes = self.metrics.counter(
            "dcdb_writer_flushes_total", "Batches handed to the storage backend"
        )
        self._flush_errors = self.metrics.counter(
            "dcdb_writer_flush_errors_total", "Batches the backend failed to accept"
        )
        self._requeued = self.metrics.counter(
            "dcdb_writer_readings_requeued_total",
            "Readings re-staged after a failed flush",
        )
        self._lost = self.metrics.counter(
            "dcdb_writer_readings_lost_total",
            "Readings abandoned after exhausting flush_retries",
        )
        self._consecutive_failures = 0  # guarded by _lock
        self._batch_size = self.metrics.histogram(
            "dcdb_writer_batch_size", "Readings per flushed batch", buckets=BATCH_SIZE_BUCKETS
        )
        self._flush_duration = self.metrics.histogram(
            "dcdb_writer_flush_duration_seconds", "Wall time of one backend flush"
        )
        self.start()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """(Re)start the writer threads; idempotent while running."""
        with self._lock:
            if any(t.is_alive() for t in self._threads):
                return
            self._stopping = False
            self._threads = [
                threading.Thread(
                    target=self._run, name=f"dcdb-writer-{i}", daemon=True
                )
                for i in range(self.config.writers)
            ]
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        """Drain every accepted reading, then stop the writer threads.

        Readings staged before ``stop()`` is called are flushed to the
        backend before this method returns; producers blocked in
        ``put()`` are woken with :class:`BackpressureError`.
        """
        with self._lock:
            self._stopping = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []

    # -- producer side ------------------------------------------------------

    def put(
        self,
        items: list[InsertItem],
        origin_ns: int | None = None,
        trace_id: int | None = None,
    ) -> int:
        """Stage one message's readings; returns the number accepted.

        ``origin_ns`` marks the batch for a ``commit`` trace stamp at
        flush completion (pass the traced reading's origin timestamp,
        or None for unsampled messages).  ``trace_id`` additionally
        attaches the wire trace: the flush records a ``commit`` span
        and the stamp carries the exemplar.
        """
        count = len(items)
        if count == 0:
            return 0
        capacity = self.config.queue_capacity
        with self._lock:
            if self._stopping:
                raise BackpressureError("batching writer is stopped")
            if self._depth + count > capacity:
                policy = self.config.policy
                if policy == "error":
                    raise BackpressureError(
                        f"staging queue full ({self._depth}/{capacity} readings)"
                    )
                if policy == "block":
                    while self._depth + count > capacity and not self._stopping:
                        self._not_full.wait()
                    if self._stopping:
                        raise BackpressureError("batching writer stopped while blocked")
                else:  # drop-oldest
                    while self._depth + count > capacity and self._entries:
                        old_items = self._entries.popleft()[0]
                        self._depth -= len(old_items)
                        self._dropped.inc(len(old_items))
                    if count > capacity:
                        # A single message larger than the whole queue:
                        # keep its freshest tail, consistent with the policy.
                        self._dropped.inc(count - capacity)
                        items = items[count - capacity :]
                        count = capacity
            self._entries.append((items, origin_ns, self._clock(), 0, trace_id))
            self._depth += count
            if self._depth > self._queue_hwm:
                self._queue_hwm = self._depth
            self._enqueued.inc(count)
            self._not_empty.notify()
        return count

    # -- consumer side ------------------------------------------------------

    def _run(self) -> None:
        poll = self.config.poll_interval_s
        while True:
            with self._lock:
                while not self._flush_due_locked():
                    if self._stopping and not self._entries:
                        return
                    # Timed wait so the age trigger is re-evaluated on
                    # the injected clock even when no new puts arrive.
                    self._not_empty.wait(timeout=poll)
                taken, count = self._take_locked()
                self._inflight += count
                self._not_full.notify_all()
            self._write(taken, count)
            with self._lock:
                self._inflight -= count
                if not self._entries and self._inflight == 0:
                    self._idle.notify_all()

    def _flush_due_locked(self) -> bool:
        if not self._entries:
            return False
        if self._stopping or self._force_flush:
            return True
        if self._depth >= self.config.max_batch:
            return True
        oldest_enqueued = self._entries[0][2]
        return self._clock() - oldest_enqueued >= self.config.max_delay_ns

    def _take_locked(
        self,
    ) -> tuple[list[tuple[list[InsertItem], int | None, int, int, int | None]], int]:
        taken: list[tuple[list[InsertItem], int | None, int, int, int | None]] = []
        count = 0
        max_batch = self.config.max_batch
        while self._entries and count < max_batch:
            entry = self._entries.popleft()
            taken.append(entry)
            count += len(entry[0])
        self._depth -= count
        if not self._entries:
            self._force_flush = False
        return taken, count

    def _write(self, taken, count: int) -> None:
        if len(taken) == 1:
            items = taken[0][0]  # single staged message: no copy
        else:
            items = []
            for entry in taken:
                items.extend(entry[0])
        trace_ids = [entry[4] for entry in taken if entry[4] is not None]
        started = time.perf_counter()
        start_ns = self._clock()
        try:
            # One ambient trace covers the whole coalesced flush; the
            # storage layer picks it up for replica/retry spans.
            with trace_context(trace_ids[0] if trace_ids else None):
                self.backend.insert_batch(items)
                # Group-commit barrier: a durable backend must make the
                # WAL records of this batch safe (per its fsync policy)
                # before the batch is acknowledged as flushed.  One
                # fsync covers the whole coalesced batch; a failed sync
                # re-queues the batch like any storage error.
                commit = getattr(self.backend, "commit_durable", None)
                if commit is not None:
                    commit()
        except Exception:
            self._flush_errors.inc()
            logger.exception("batch flush of %d readings failed", count)
            self._requeue(taken)
            return
        with self._lock:
            self._consecutive_failures = 0
        duration = time.perf_counter() - started
        end_ns = self._clock()
        self._flush_duration.observe(duration)
        self._batch_size.observe(count)
        self._flushes.inc()
        self._flushed.inc(count)
        if self.rollup is not None:
            # After the durability accounting: rollups are derived only
            # from readings the backend accepted, and the engine never
            # raises (a rollup failure costs freshness, not raw data).
            self.rollup.observe(items)
        for _, origin_ns, _, attempts, trace_id in taken:
            if origin_ns is not None and self.tracer is not None:
                self.tracer.stamp("commit", origin_ns, trace_id=trace_id)
            if trace_id is not None:
                self.spans.record(
                    trace_id,
                    "commit",
                    "writer",
                    start_ns,
                    end_ns,
                    batch=count,
                    attempts=attempts,
                    flushSeconds=round(duration, 6),
                )
        slow = self.config.slow_flush_s
        if slow > 0 and duration >= slow:
            logger.warning(
                "slow flush: %d readings took %.3fs",
                count,
                duration,
                extra={
                    "trace_id": trace_ids[0] if trace_ids else None,
                    "duration_s": round(duration, 6),
                    "batch": count,
                },
            )

    def _requeue(self, taken) -> None:
        """Re-stage a failed batch at the queue head, oldest first.

        Entries keep their enqueue timestamps and trace origins, so the
        age trigger still sees the true staleness and a traced reading
        still gets its ``commit`` stamp once the retry lands.  Entries
        that have exhausted ``flush_retries`` are abandoned (the only
        point in the writer where accepted readings can be lost, and
        only after the backend refused them flush_retries + 1 times).
        A capped-exponential pause after consecutive failures keeps a
        writer thread from busy-looping on a dead backend.
        """
        retries = self.config.flush_retries
        with self._lock:
            requeued = 0
            for items, origin_ns, enqueued_ns, attempts, trace_id in reversed(taken):
                if attempts >= retries:
                    self._lost.inc(len(items))
                    logger.error(
                        "abandoning %d readings after %d failed flushes",
                        len(items),
                        attempts + 1,
                        extra={"trace_id": trace_id},
                    )
                    continue
                self._entries.appendleft(
                    (items, origin_ns, enqueued_ns, attempts + 1, trace_id)
                )
                requeued += len(items)
            self._depth += requeued
            if requeued:
                self._requeued.inc(requeued)
                self._not_empty.notify()
            self._consecutive_failures += 1
            failures = self._consecutive_failures
        backoff = self.config.retry_backoff_s
        if backoff > 0:
            time.sleep(min(0.1, backoff * (2.0 ** min(failures - 1, 6))))

    # -- synchronization helpers -------------------------------------------

    def drain(self, timeout: float = 10.0) -> bool:
        """Force-flush everything staged and wait until it is durable."""
        with self._lock:
            self._force_flush = True
            self._not_empty.notify_all()
        return self.wait_idle(timeout)

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until the queue is empty and no flush is in flight."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._entries or self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=min(remaining, self.config.poll_interval_s))
            return True

    # -- introspection ------------------------------------------------------

    @property
    def depth(self) -> int:
        """Readings currently staged (excludes in-flight flushes)."""
        with self._lock:
            return self._depth

    @property
    def dropped(self) -> int:
        return int(self._dropped.value)

    @property
    def flushed(self) -> int:
        return int(self._flushed.value)

    @property
    def requeued(self) -> int:
        return int(self._requeued.value)

    @property
    def lost(self) -> int:
        return int(self._lost.value)

    def status(self) -> dict:
        """JSON-friendly snapshot for the REST ``/status`` document."""
        with self._lock:
            depth = self._depth
            inflight = self._inflight
        return {
            "running": any(t.is_alive() for t in self._threads),
            "policy": self.config.policy,
            "queueDepth": depth,
            "inFlight": inflight,
            "queueHighWatermark": self._queue_hwm,
            "slowFlushSeconds": self.config.slow_flush_s,
            "queueCapacity": self.config.queue_capacity,
            "maxBatch": self.config.max_batch,
            "maxDelayMs": self.config.max_delay_ns / 1e6,
            "writers": self.config.writers,
            "enqueued": int(self._enqueued.value),
            "flushed": int(self._flushed.value),
            "dropped": int(self._dropped.value),
            "flushes": int(self._flushes.value),
            "flushErrors": int(self._flush_errors.value),
            "requeued": int(self._requeued.value),
            "lost": int(self._lost.value),
            "flushRetries": self.config.flush_retries,
        }
