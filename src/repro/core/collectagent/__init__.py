"""The Collect Agent: MQTT data broker and storage writer.

Paper section 4.2: Collect Agents are "built on top of a custom MQTT
implementation that only provides a subset of features necessary for
their tasks" — the publish interface only.  On each message the agent
parses the topic, translates it to a 128-bit SID and stores the
reading(s) in the Storage Backend; it also maintains a sensor cache of
the latest readings of all connected Pushers, queryable over REST
(section 5.3).
"""

from repro.core.collectagent.agent import CollectAgent
from repro.core.collectagent.writer import BatchingWriter, WriterConfig
from repro.storage.rollup import RollupConfig

__all__ = ["BatchingWriter", "CollectAgent", "RollupConfig", "WriterConfig"]
