"""The sensor data model: readings, metadata, and the sensor cache.

Paper section 3.2: *"each data point of a monitored entity is called a
sensor ... Each sensor's data consists of a time series, in which
readings are represented by a timestamp and a numerical value.  This
format is enforced across DCDB."*

Values are stored as integers in DCDB (Cassandra column type);
physical quantities are mapped to integers with per-sensor scaling
factors.  We keep that convention: :class:`SensorReading` carries an
``int`` value, and :class:`SensorMetadata` holds the unit and scaling
factor needed to interpret it.  Floating-point sources multiply by the
scale before storage and divide on the query path.

:class:`SensorCache` is the time-bounded ring of most recent readings
that both Pushers and Collect Agents expose over their RESTful APIs
(paper section 5.3: "a sensor cache that stores the latest readings of
all sensors ... configurable in size").
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.common.timeutil import NS_PER_SEC


@dataclass(frozen=True, slots=True, order=True)
class SensorReading:
    """One data point: a nanosecond timestamp and an integer value."""

    timestamp: int
    value: int

    def scaled(self, scale: float) -> float:
        """The physical value this reading encodes under ``scale``."""
        return self.value / scale if scale != 1.0 else float(self.value)


@dataclass(slots=True)
class SensorMetadata:
    """Descriptive and interpretive properties of one sensor.

    These mirror the attributes DCDB's config tool manages (paper
    section 5.2): unit, scaling factor, integrability, plus operational
    hints (TTL, whether deltas should be published instead of raw
    monotonic counter values).
    """

    name: str = ""
    topic: str = ""
    unit: str = "count"
    scale: float = 1.0
    #: True for monotonically increasing counters published as deltas.
    delta: bool = False
    #: True if integrating this sensor over time is meaningful
    #: (e.g. power -> energy).
    integrable: bool = False
    #: Storage time-to-live in seconds; 0 keeps data forever.
    ttl_s: int = 0
    #: Whether readings should be published over MQTT at all.
    publish: bool = True
    #: Sampling interval in nanoseconds (informational; groups own it).
    interval_ns: int = NS_PER_SEC
    #: Free-form extra attributes (e.g. physical location tags).
    attributes: dict[str, str] = field(default_factory=dict)

    def to_physical(self, reading: SensorReading) -> float:
        """Decode a stored reading into its physical value."""
        return reading.value / self.scale

    def from_physical(self, value: float) -> int:
        """Encode a physical value into the stored integer domain."""
        return int(round(value * self.scale))


class SensorCache:
    """Time-bounded cache of the latest readings of one sensor.

    Readings older than ``maxage_ns`` relative to the newest entry are
    evicted on insert.  The default 120 s matches the paper's
    evaluation setup ("a sensor cache size of two minutes",
    section 6.1).  Thread-safe: the sampling thread appends while REST
    handlers snapshot.
    """

    __slots__ = ("maxage_ns", "_readings", "_lock")

    def __init__(self, maxage_ns: int = 120 * NS_PER_SEC) -> None:
        if maxage_ns <= 0:
            raise ValueError("cache max age must be positive")
        self.maxage_ns = maxage_ns
        self._readings: deque[SensorReading] = deque()
        self._lock = threading.Lock()

    def store(self, reading: SensorReading) -> None:
        """Insert a reading and evict entries older than the window."""
        with self._lock:
            self._readings.append(reading)
            horizon = reading.timestamp - self.maxage_ns
            while self._readings and self._readings[0].timestamp < horizon:
                self._readings.popleft()

    def latest(self) -> SensorReading | None:
        """Most recent reading, or None when empty."""
        with self._lock:
            return self._readings[-1] if self._readings else None

    def snapshot(self) -> list[SensorReading]:
        """A copy of all cached readings, oldest first."""
        with self._lock:
            return list(self._readings)

    def view(self, start_ns: int, end_ns: int) -> list[SensorReading]:
        """Cached readings with start <= timestamp <= end."""
        with self._lock:
            return [r for r in self._readings if start_ns <= r.timestamp <= end_ns]

    def average(self, window_ns: int | None = None) -> float | None:
        """Mean raw value over the trailing ``window_ns`` (or all).

        DCDB's cache answers smoothed reads for consumers that want a
        stable recent value rather than the instantaneous sample.
        """
        with self._lock:
            if not self._readings:
                return None
            if window_ns is None:
                items = self._readings
            else:
                horizon = self._readings[-1].timestamp - window_ns
                items = [r for r in self._readings if r.timestamp >= horizon]
            if not items:
                return None
            return sum(r.value for r in items) / len(items)

    def __len__(self) -> int:
        with self._lock:
            return len(self._readings)

    def clear(self) -> None:
        with self._lock:
            self._readings.clear()

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the cached readings.

        Used by the resource-footprint model (paper Figure 6b ties
        Pusher memory to cache contents: interval x sensor count).
        """
        # One SensorReading: two Python ints + object overhead; the
        # constant matches sys.getsizeof measurements on CPython 3.11.
        with self._lock:
            return 120 * len(self._readings)
