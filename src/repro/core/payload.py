"""Wire framing of sensor readings inside MQTT payloads.

DCDB publishes each sensor's readings under its own topic; a payload
carries one or more (timestamp, value) pairs so that a Pusher batching
several sampling cycles into one MQTT message (burst mode, paper
section 6.2.1) needs no extra protocol.  The frame is a flat sequence
of big-endian ``(int64 timestamp_ns, int64 value)`` records — 16 bytes
per reading, no header, count implied by length.  This matches DCDB's
compact fixed-width framing and keeps the Collect Agent's parse cost
to a ``struct.iter_unpack``.
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.common.errors import TransportError
from repro.core.sensor import SensorReading

_RECORD = struct.Struct("!qq")
RECORD_SIZE = _RECORD.size  # 16 bytes


def encode_readings(readings: Iterable[SensorReading]) -> bytes:
    """Pack readings into the 16-byte-per-record wire frame."""
    return b"".join(_RECORD.pack(r.timestamp, r.value) for r in readings)


def encode_reading(timestamp: int, value: int) -> bytes:
    """Pack a single reading (the common continuous-mode case)."""
    return _RECORD.pack(timestamp, value)


def decode_readings(payload: bytes) -> list[SensorReading]:
    """Unpack a wire frame back into readings.

    Raises :class:`TransportError` if the payload length is not a
    multiple of the record size — a framing error worth surfacing
    rather than silently truncating.
    """
    if len(payload) % RECORD_SIZE != 0:
        raise TransportError(
            f"payload length {len(payload)} is not a multiple of {RECORD_SIZE}"
        )
    return [SensorReading(ts, value) for ts, value in _RECORD.iter_unpack(payload)]
