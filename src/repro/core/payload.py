"""Wire framing of sensor readings inside MQTT payloads.

DCDB publishes each sensor's readings under its own topic; a payload
carries one or more (timestamp, value) pairs so that a Pusher batching
several sampling cycles into one MQTT message (burst mode, paper
section 6.2.1) needs no extra protocol.  The frame is a flat sequence
of big-endian ``(int64 timestamp_ns, int64 value)`` records — 16 bytes
per reading, no header, count implied by length.  This matches DCDB's
compact fixed-width framing and keeps the Collect Agent's parse cost
to a ``struct.iter_unpack``.

Sampled readings may additionally carry a **trace header**: a 12-byte
big-endian ``(uint8 magic, uint8 version, uint16 flags, uint64
trace_id)`` prefix that propagates a trace ID end-to-end (pusher →
broker → collect agent → storage).  Because records are 16 bytes, a
headered payload has ``len % 16 == 12`` — a length class no legacy
frame can produce — so headerless payloads decode unchanged and old
decoders never misparse new ones as readings.
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.common.errors import TransportError
from repro.core.sensor import SensorReading

_RECORD = struct.Struct("!qq")
RECORD_SIZE = _RECORD.size  # 16 bytes

_TRACE_HEADER = struct.Struct("!BBHQ")
TRACE_HEADER_SIZE = _TRACE_HEADER.size  # 12 bytes
TRACE_MAGIC = 0xD7
TRACE_VERSION = 1


def encode_readings(
    readings: Iterable[SensorReading], trace_id: int | None = None
) -> bytes:
    """Pack readings into the 16-byte-per-record wire frame.

    When ``trace_id`` is given the frame is prefixed with the 12-byte
    trace header, marking the whole message as a sampled trace.
    """
    body = b"".join(_RECORD.pack(r.timestamp, r.value) for r in readings)
    if trace_id is None:
        return body
    return _TRACE_HEADER.pack(TRACE_MAGIC, TRACE_VERSION, 0, trace_id) + body


def encode_reading(timestamp: int, value: int) -> bytes:
    """Pack a single reading (the common continuous-mode case)."""
    return _RECORD.pack(timestamp, value)


def has_trace_header(payload: bytes) -> bool:
    """True if the payload starts with a valid trace header."""
    return (
        len(payload) >= TRACE_HEADER_SIZE
        and len(payload) % RECORD_SIZE == TRACE_HEADER_SIZE
        and payload[0] == TRACE_MAGIC
        and payload[1] == TRACE_VERSION
    )


def trace_id_of(payload: bytes) -> int | None:
    """Trace ID carried by the payload, or None if untraced.

    O(1): peeks the header without touching the records, so brokers
    can recover trace context per message regardless of burst size.
    """
    if not has_trace_header(payload):
        return None
    return _TRACE_HEADER.unpack_from(payload)[3]


def decode_message(payload: bytes) -> tuple[list[SensorReading], int | None]:
    """Unpack a wire frame into (readings, trace_id-or-None)."""
    if has_trace_header(payload):
        return decode_readings(payload[TRACE_HEADER_SIZE:]), _TRACE_HEADER.unpack_from(
            payload
        )[3]
    return decode_readings(payload), None


def decode_readings(payload: bytes) -> list[SensorReading]:
    """Unpack a wire frame back into readings.

    Accepts both headerless frames and trace-headered ones (the header
    is stripped), so decoders that do not care about tracing keep
    working against traced payloads.  Raises :class:`TransportError`
    if the payload length is not a multiple of the record size — a
    framing error worth surfacing rather than silently truncating.
    """
    if has_trace_header(payload):
        payload = payload[TRACE_HEADER_SIZE:]
    if len(payload) % RECORD_SIZE != 0:
        raise TransportError(
            f"payload length {len(payload)} is not a multiple of {RECORD_SIZE}"
        )
    return [SensorReading(ts, value) for ts, value in _RECORD.iter_unpack(payload)]
