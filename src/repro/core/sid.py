"""128-bit hierarchical Sensor IDs (SIDs).

Paper section 4.2: *"Upon retrieval of an MQTT message, a Collect
Agent parses the topic of the message and translates it into a unique
numerical Sensor ID (SID) that is used as the key to store a sensor's
reading in a Storage Backend.  There is a 1:1 mapping of topics to
SIDs which maintains the hierarchical organization of MQTT topics:
each topic is split into its hierarchical components and each such
component is mapped to a numeric value that is stored in a particular
bit field of the 128-bit SID."*

We reproduce that scheme: the 128 bits are divided into
``SID_LEVELS`` fields of ``SID_BITS_PER_LEVEL`` bits each (8 × 16 by
default).  A :class:`SidMapper` assigns, per level, a dense numeric
code to every distinct component string it sees; code 0 is reserved to
mean "level unused", so topics shallower than 8 levels embed cleanly.
The mapping is bidirectional, which is what makes SIDs usable both as
compact storage keys and as recoverable topic names on the query path.

Because component codes are assigned top-down, every sensor below the
same subtree shares a SID *prefix* — the property the storage layer's
hierarchical partitioner exploits (paper section 4.3) to place a
subtree's data on one server.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.errors import StorageError, TransportError
from repro.mqtt.topics import split_topic, validate_topic

SID_LEVELS = 8
SID_BITS_PER_LEVEL = 16
SID_LEVEL_MASK = (1 << SID_BITS_PER_LEVEL) - 1
SID_TOTAL_BITS = SID_LEVELS * SID_BITS_PER_LEVEL
assert SID_TOTAL_BITS == 128

#: Deepest-level codes from this value upward are reserved for derived
#: series (the storage layer's rollup tiers carve their SIDs out of
#: this range).  The mappers never allocate them for topic components,
#: so a real sensor SID can never collide with — or be misclassified
#: as — a rollup series.
SID_RESERVED_DEEPEST_BASE = 0xFD00


def _level_code_limit(level_idx: int) -> int:
    """Highest component code the mappers may assign at ``level_idx``."""
    if level_idx == SID_LEVELS - 1:
        return SID_RESERVED_DEEPEST_BASE - 1
    return SID_LEVEL_MASK


@dataclass(frozen=True, slots=True, order=True)
class SensorId:
    """An immutable 128-bit sensor identifier.

    The most significant field holds the topmost hierarchy level, so
    integer ordering groups sensors by subtree — range scans over a
    rack's sensors are contiguous.
    """

    value: int
    #: Big-endian 16-byte image, precomputed once: hot serialization
    #: paths (WAL payload framing) split a SID into two u64 halves per
    #: reading, and slicing these cached bytes beats redoing 128-bit
    #: shift/mask arithmetic every time.  Excluded from eq/order/hash —
    #: it is derived from ``value``.
    packed: bytes = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << SID_TOTAL_BITS):
            raise ValueError("SID out of 128-bit range")
        object.__setattr__(self, "packed", self.value.to_bytes(16, "big"))

    def level_code(self, level: int) -> int:
        """Numeric code stored for hierarchy ``level`` (0 = topmost)."""
        if not 0 <= level < SID_LEVELS:
            raise IndexError(f"SID level {level} out of range")
        shift = SID_BITS_PER_LEVEL * (SID_LEVELS - 1 - level)
        return (self.value >> shift) & SID_LEVEL_MASK

    def depth(self) -> int:
        """Number of populated levels (trailing zero fields unused)."""
        for level in range(SID_LEVELS - 1, -1, -1):
            if self.level_code(level) != 0:
                return level + 1
        return 0

    def prefix(self, levels: int) -> int:
        """The SID value with all but the top ``levels`` fields zeroed.

        Used as a partition key: all sensors in a subtree share it.
        """
        if not 0 <= levels <= SID_LEVELS:
            raise ValueError(f"prefix levels {levels} out of range")
        keep_bits = SID_BITS_PER_LEVEL * levels
        if keep_bits == 0:
            return 0
        mask = ((1 << keep_bits) - 1) << (SID_TOTAL_BITS - keep_bits)
        return self.value & mask

    def hex(self) -> str:
        """Canonical 32-hex-digit rendering."""
        return f"{self.value:032x}"

    @classmethod
    def from_hex(cls, text: str) -> "SensorId":
        return cls(int(text, 16))

    @classmethod
    def from_codes(cls, codes: list[int]) -> "SensorId":
        """Build a SID from per-level codes (topmost first)."""
        if len(codes) > SID_LEVELS:
            raise ValueError(f"too many levels: {len(codes)} > {SID_LEVELS}")
        value = 0
        for i, code in enumerate(codes):
            if not 0 <= code <= SID_LEVEL_MASK:
                raise ValueError(f"level code {code} out of range at level {i}")
            shift = SID_BITS_PER_LEVEL * (SID_LEVELS - 1 - i)
            value |= code << shift
        return cls(value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.hex()


class SidMapper:
    """Bidirectional topic ↔ SID mapping.

    Thread-safe: Collect Agents translate topics on multiple reader
    threads concurrently.  Component codes start at 1 per level (0 is
    the "unused" sentinel).  A level can hold at most 65 535 distinct
    component names — 64 767 at the deepest level, whose top codes are
    reserved for rollup series — which comfortably covers DCDB
    deployments (the widest level in practice is per-node sensors, a
    few thousand).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Per level: component string -> code, and the inverse.
        self._forward: list[dict[str, int]] = [dict() for _ in range(SID_LEVELS)]
        self._reverse: list[dict[int, str]] = [dict() for _ in range(SID_LEVELS)]
        self._topic_cache: dict[str, SensorId] = {}

    def sid_for_topic(self, topic: str) -> SensorId:
        """Translate (and register) ``topic`` into its SID.

        The empty leading level produced by DCDB's ``/``-prefixed
        topics is dropped, so ``/a/b`` and ``a/b`` map identically —
        matching the Collect Agent's canonicalization.
        """
        cached = self._topic_cache.get(topic)
        if cached is not None:
            return cached
        validate_topic(topic)
        levels = [lvl for lvl in split_topic(topic) if lvl != ""]
        if not levels:
            raise TransportError(f"topic {topic!r} has no hierarchy levels")
        if len(levels) > SID_LEVELS:
            raise TransportError(
                f"topic {topic!r} has {len(levels)} levels, max is {SID_LEVELS}"
            )
        codes: list[int] = []
        with self._lock:
            for level_idx, component in enumerate(levels):
                forward = self._forward[level_idx]
                code = forward.get(component)
                if code is None:
                    code = len(forward) + 1
                    limit = _level_code_limit(level_idx)
                    if code > limit:
                        raise StorageError(
                            f"SID level {level_idx} exhausted "
                            f"({limit} distinct components)"
                        )
                    forward[component] = code
                    self._reverse[level_idx][code] = component
                codes.append(code)
            sid = SensorId.from_codes(codes)
            self._topic_cache[topic] = sid
        return sid

    def lookup_topic(self, topic: str) -> SensorId | None:
        """Return the SID of a previously *registered* topic, or None.

        Strictly consults the topic registry: a topic whose components
        all happen to be known from other topics still returns None
        until :meth:`sid_for_topic` registers it.  Callers rely on this
        to trigger registration side effects (e.g. the Collect Agent
        persisting the mapping) exactly once per topic.
        """
        return self._topic_cache.get(topic)

    def topic_for_sid(self, sid: SensorId) -> str:
        """Reconstruct the canonical topic (``/``-prefixed) for ``sid``.

        Raises :class:`StorageError` for codes never issued by this
        mapper — the 1:1 property means that can only happen when
        mixing mappers or corrupting state.
        """
        parts: list[str] = []
        with self._lock:
            for level in range(SID_LEVELS):
                code = sid.level_code(level)
                if code == 0:
                    break
                component = self._reverse[level].get(code)
                if component is None:
                    raise StorageError(
                        f"SID {sid.hex()} has unknown code {code} at level {level}"
                    )
                parts.append(component)
        if not parts:
            raise StorageError("SID has no populated levels")
        return "/" + "/".join(parts)

    def prefix_for_topic_prefix(self, topic_prefix: str) -> tuple[int, int] | None:
        """Map a topic prefix to its (SID prefix value, level count).

        Returns None if any component is unknown.  Used by query
        planning to turn hierarchy-level queries into SID range scans.
        """
        levels = [lvl for lvl in split_topic(topic_prefix) if lvl != ""]
        codes: list[int] = []
        with self._lock:
            for level_idx, component in enumerate(levels):
                code = self._forward[level_idx].get(component)
                if code is None:
                    return None
                codes.append(code)
        return SensorId.from_codes(codes).value, len(codes)

    def known_topics(self) -> list[str]:
        """All topics ever registered, in registration order."""
        return list(self._topic_cache)

    def components_at_level(self, level: int) -> list[str]:
        """Distinct component names seen at hierarchy ``level``."""
        with self._lock:
            return list(self._forward[level])

    def __len__(self) -> int:
        return len(self._topic_cache)

    def restore(self, topic: str, sid: SensorId) -> None:
        """Install a known topic->SID mapping (e.g. read from storage).

        Registers each topic component under the code the SID carries,
        so future allocations are consistent with mappings created by
        earlier runs or by other Collect Agents sharing the backend.
        Raises :class:`StorageError` if a component/code pairing
        conflicts with what this mapper already holds.
        """
        levels = [lvl for lvl in split_topic(topic) if lvl != ""]
        with self._lock:
            for level_idx, component in enumerate(levels):
                code = sid.level_code(level_idx)
                forward = self._forward[level_idx]
                existing = forward.get(component)
                if existing is not None and existing != code:
                    raise StorageError(
                        f"component {component!r} at level {level_idx} maps to "
                        f"code {existing}, cannot restore as {code}"
                    )
                held_by = self._reverse[level_idx].get(code)
                if held_by is not None and held_by != component:
                    raise StorageError(
                        f"code {code} at level {level_idx} held by {held_by!r}, "
                        f"cannot restore for {component!r}"
                    )
                forward[component] = code
                self._reverse[level_idx][code] = component
            self._topic_cache[topic] = sid


class PersistentSidMapper(SidMapper):
    """A SidMapper coordinating component codes through storage metadata.

    Multiple Collect Agents write into one Storage Backend (paper
    Figure 1); their topic->SID mappings must agree or distinct topics
    would collide on storage keys.  This mapper persists each
    component-code assignment under ``sidcomp/<level>/<component>``
    and consults the backend before allocating, so mappings are
    consistent across agents sharing a backend and across restarts.

    Coordination is read-check-write on the metadata table; agents in
    one process (or writes serialized by the backend) are safe.  Truly
    concurrent multi-process allocation of the *same new component*
    would need a conditional-put primitive, which the substrate's
    metadata API deliberately keeps out of scope.
    """

    _COMP_PREFIX = "sidcomp"
    _NEXT_PREFIX = "sidnext"

    def __init__(self, backend) -> None:
        super().__init__()
        self._backend = backend

    def _load_component(self, level_idx: int, component: str) -> int | None:
        text = self._backend.get_metadata(
            f"{self._COMP_PREFIX}/{level_idx}/{component}"
        )
        return int(text) if text else None

    def _allocate_component(self, level_idx: int, component: str) -> int:
        next_key = f"{self._NEXT_PREFIX}/{level_idx}"
        text = self._backend.get_metadata(next_key)
        code = int(text) if text else 1
        limit = _level_code_limit(level_idx)
        if code > limit:
            raise StorageError(
                f"SID level {level_idx} exhausted ({limit} components)"
            )
        self._backend.put_metadata(next_key, str(code + 1))
        self._backend.put_metadata(
            f"{self._COMP_PREFIX}/{level_idx}/{component}", str(code)
        )
        return code

    def sid_for_topic(self, topic: str) -> SensorId:
        cached = self._topic_cache.get(topic)
        if cached is not None:
            return cached
        validate_topic(topic)
        levels = [lvl for lvl in split_topic(topic) if lvl != ""]
        if not levels:
            raise TransportError(f"topic {topic!r} has no hierarchy levels")
        if len(levels) > SID_LEVELS:
            raise TransportError(
                f"topic {topic!r} has {len(levels)} levels, max is {SID_LEVELS}"
            )
        codes: list[int] = []
        with self._lock:
            for level_idx, component in enumerate(levels):
                forward = self._forward[level_idx]
                code = forward.get(component)
                if code is None:
                    code = self._load_component(level_idx, component)
                    if code is None:
                        code = self._allocate_component(level_idx, component)
                    forward[component] = code
                    self._reverse[level_idx][code] = component
                codes.append(code)
            sid = SensorId.from_codes(codes)
            self._topic_cache[topic] = sid
        return sid
