"""The dcdbmon plugin: the framework monitoring itself.

DCDB treats its own health as just another data source — "monitoring
the monitor".  This plugin reads the hosting Pusher's
:class:`~repro.observability.MetricsRegistry` and publishes selected
framework metrics back through the ordinary pipeline, so they land in
the Storage Backend, are queryable via libDCDB, and appear in every
sensor cache like any facility or node sensor.

The Pusher attaches its registry when loading the plugin (via the
``attach_registry`` hook), so no configuration is needed to find it.

Configuration::

    group self {
        interval 1000         ; ms
        sensor storeRate {
            metric dcdb_pusher_readings_collected_total
            stat   value      ; value | count | sum | p50 | p95 | p99
            delta  true       ; counters usually published as rates
        }
        sensor pubLatency {
            metric dcdb_pipeline_latency_seconds
            labels hop=publish
            stat   p95
            scale  1000000    ; store microseconds (physical = stored/scale)
            unit   s
        }
    }

A group with no explicit sensor blocks gets the default catalogue of
Pusher health sensors (see :data:`DEFAULT_SENSORS`).

``stat`` selects what is read from the metric family: ``value`` is the
counter/gauge value (for histograms, the observation count); ``count``
and ``sum`` address histograms explicitly; ``p50``/``p95``/``p99``
are histogram percentiles.  ``labels`` filters to matching label pairs
(comma-separated ``key=value``).
"""

from __future__ import annotations

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin
from repro.observability import MetricsRegistry, PIPELINE_METRIC

_STATS = ("value", "count", "sum", "p50", "p95", "p99")

#: Default sensor catalogue: (name, metric, labels, stat, delta, unit, scale).
DEFAULT_SENSORS = (
    ("readingsCollected", "dcdb_pusher_readings_collected_total", None, "value", True, "count", 1.0),
    ("messagesPublished", "dcdb_pusher_messages_published_total", None, "value", True, "count", 1.0),
    ("publishFailures", "dcdb_pusher_publish_failures_total", None, "value", True, "count", 1.0),
    ("reconnects", "dcdb_pusher_reconnects_total", None, "value", True, "count", 1.0),
    ("pendingReadings", "dcdb_pusher_pending_readings", None, "value", False, "count", 1.0),
    # p95 publish latency, stored as microseconds (physical = stored/scale).
    ("publishLatencyP95", PIPELINE_METRIC, {"hop": "publish"}, "p95", False, "s", 1e6),
)


class DcdbmonSensor(PluginSensor):
    """A sensor bound to one metric family (+ label filter + stat)."""

    __slots__ = ("metric", "labels", "stat")

    def __init__(self, *args, metric: str, labels: dict | None = None,
                 stat: str = "value", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.metric = metric
        self.labels = labels
        self.stat = stat


class DcdbmonGroup(SensorGroup):
    """Reads the attached registry; no I/O beyond snapshotting."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.registry: MetricsRegistry | None = None

    def attach_registry(self, registry: MetricsRegistry) -> None:
        """Called by the Pusher at load time with its own registry."""
        self.registry = registry

    def _read_one(self, sensor: DcdbmonSensor) -> float:
        registry = self.registry
        assert registry is not None
        stat = sensor.stat
        if stat == "value":
            return registry.value(sensor.metric, sensor.labels)
        family = registry.get(sensor.metric)
        if family is None:
            return 0.0
        if family.kind != "histogram":
            raise PluginError(
                f"dcdbmon sensor {sensor.name!r}: stat {stat!r} requires a "
                f"histogram, but {sensor.metric!r} is a {family.kind}"
            )
        if stat in ("count", "sum"):
            total = 0.0
            for sample in family.snapshot().samples:
                if sensor.labels is not None and not all(
                    dict(sample.labels).get(k) == str(v)
                    for k, v in sensor.labels.items()
                ):
                    continue
                total += sample.count if stat == "count" else sample.sum
            return total
        q = float(stat[1:]) / 100.0
        value = family.percentile(q, sensor.labels)
        return 0.0 if value is None else value

    def read_raw(self, timestamp: int) -> list[int]:
        if self.registry is None:
            raise PluginError(
                f"dcdbmon group {self.name!r}: no metrics registry attached "
                "(is the group loaded through a Pusher?)"
            )
        out: list[int] = []
        for sensor in self.sensors:
            value = self._read_one(sensor)
            out.append(int(round(value * sensor.metadata.scale)))
        return out


class DcdbmonConfigurator(ConfiguratorBase):
    """Builds self-monitoring groups from config or the default catalogue."""

    plugin_name = "dcdbmon"

    def _parse_labels(self, spec: str | None) -> dict | None:
        if not spec:
            return None
        labels: dict[str, str] = {}
        for pair in spec.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise ConfigError(f"dcdbmon: bad labels spec {spec!r}")
            labels[key.strip()] = value.strip()
        return labels

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        common = self.group_common(name, config)
        group = DcdbmonGroup(**common)
        for key, node in config.children("sensor"):
            base = self.make_sensor(node.value or key, node)
            merged = self._merge_template(node, self._template_sensors)
            metric = merged.get("metric")
            if not metric:
                raise ConfigError(
                    f"dcdbmon sensor {base.name!r}: missing 'metric' key"
                )
            stat = merged.get("stat", "value")
            if stat not in _STATS:
                raise ConfigError(
                    f"dcdbmon sensor {base.name!r}: unknown stat {stat!r} "
                    f"(expected one of {', '.join(_STATS)})"
                )
            sensor = DcdbmonSensor(
                name=base.name,
                mqtt_suffix=base.mqtt_suffix,
                metadata=base.metadata,
                cache_maxage_ns=self.cache_maxage_ns,
                metric=metric,
                labels=self._parse_labels(merged.get("labels")),
                stat=stat,
            )
            group.add_sensor(sensor)
        if not group.sensors:
            for name_, metric, labels, stat, delta, unit, scale in DEFAULT_SENSORS:
                sensor = DcdbmonSensor(
                    name=name_,
                    mqtt_suffix=f"/{name_}",
                    cache_maxage_ns=self.cache_maxage_ns,
                    metric=metric,
                    labels=labels,
                    stat=stat,
                )
                sensor.metadata.delta = delta
                sensor.metadata.unit = unit
                sensor.metadata.scale = scale
                group.add_sensor(sensor)
        return group


register_plugin("dcdbmon", DcdbmonConfigurator)
