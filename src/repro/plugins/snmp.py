"""SNMP plugin: PDU/controller meters via SNMP agents.

Polls integer OIDs from (simulated) SNMP agents — see
:mod:`repro.devices.snmp_agent`.  Connection sharing follows the same
host-entity pattern as IPMI.  Used out-of-band in the paper's case
study 1 to gather infrastructure data ("by leveraging the Pusher's
REST and SNMP plugins", section 7.1).

Configuration::

    connection pdu0 {
        addr      127.0.0.1:1610
        community public
    }
    group outlets {
        entity   pdu0
        interval 10000
        sensor outlet3_power {
            oid        1.3.6.1.4.1.42.3.3
            mqttsuffix /outlet3/power
            unit       W
        }
    }
"""

from __future__ import annotations

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin
from repro.devices.lineserver import LineClient
from repro.plugins.ipmi import parse_addr


class SnmpConnectionEntity(Entity):
    """Shared agent connection for all groups of one device."""

    def __init__(self, name: str, host: str, port: int, community: str = "public") -> None:
        super().__init__(name)
        self.community = community
        self.client = LineClient(host, port)

    def connect(self) -> None:
        self.client.connect()

    def disconnect(self) -> None:
        self.client.close()

    def get(self, oid: str) -> int:
        """Issue one SNMP GET."""
        try:
            lines = self.client.request(f"GET {oid}")
        except (ConnectionError, ValueError, OSError) as exc:
            raise PluginError(f"SNMP {self.name}: {exc}") from exc
        # "<oid> = INTEGER: <value>"
        try:
            return int(lines[0].rsplit(":", 1)[1])
        except (IndexError, ValueError):
            raise PluginError(f"SNMP {self.name}: malformed response {lines[0]!r}") from None

    def walk(self, prefix: str) -> list[tuple[str, int]]:
        """Issue one SNMP WALK over a subtree."""
        try:
            lines = self.client.request(f"WALK {prefix}")
        except (ConnectionError, ValueError, OSError) as exc:
            raise PluginError(f"SNMP {self.name}: {exc}") from exc
        out = []
        for line in lines:
            oid, _, rest = line.partition(" = ")
            out.append((oid.strip(), int(rest.rsplit(":", 1)[1])))
        return out


class SnmpSensor(PluginSensor):
    """A sensor bound to one OID."""

    __slots__ = ("oid",)

    def __init__(self, oid: str, **kwargs) -> None:
        super().__init__(**kwargs)
        self.oid = oid


class SnmpGroup(SensorGroup):
    """GETs each sensor's OID through the connection entity."""

    def read_raw(self, timestamp: int) -> list[int]:
        entity = self.entity
        if not isinstance(entity, SnmpConnectionEntity):
            raise PluginError(f"group {self.name!r} has no SNMP connection entity")
        return [entity.get(s.oid) for s in self.sensors]


class SnmpConfigurator(ConfiguratorBase):
    """Builds SNMP connection entities and their groups."""

    plugin_name = "snmp"
    entity_key = "connection"
    DEFAULT_PORT = 1610

    def build_entity(self, name: str, config: PropertyTree) -> Entity:
        host, port = parse_addr(config.require("addr"), self.DEFAULT_PORT)
        return SnmpConnectionEntity(
            name, host, port, community=config.get("community", "public")
        )

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        if entity is None:
            raise ConfigError(f"SNMP group {name!r} requires an entity")
        group = SnmpGroup(entity=entity, **self.group_common(name, config))
        for key, node in config.children("sensor"):
            base = self.make_sensor(node.value or key, node)
            oid = node.get("oid")
            if oid is None:
                raise ConfigError(f"SNMP sensor {base.name!r} needs an oid")
            sensor = SnmpSensor(
                oid=oid,
                name=base.name,
                mqtt_suffix=base.mqtt_suffix,
                metadata=base.metadata,
                cache_maxage_ns=self.cache_maxage_ns,
            )
            group.add_sensor(sensor)
        if not group.sensors:
            raise ConfigError(f"SNMP group {name!r} defines no sensors")
        return group


register_plugin("snmp", SnmpConfigurator)
