"""The tester plugin: synthetic sensors with negligible read cost.

Paper section 6.2.1: *"we only deploy the tester plugin, which can
generate an arbitrary number of sensors with negligible overhead.
This allows us to isolate the overhead of the various monitoring
backends (e.g., IPMI or perfevents) from that of the Pusher, which is
mostly communication-related."*

Configuration::

    group g0 {
        interval   1000    ; ms
        numSensors 100     ; sensors generated as <group>/s0 .. s99
        generator  counter ; counter | constant | sawtooth
        startValue 0
    }

``counter`` emits a per-sensor monotonically increasing value (cycle
number + sensor index), ``constant`` always ``startValue``, and
``sawtooth`` ramps 0..999 repeatedly — enough variety to exercise
delta handling and payload encoding in tests.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin


class TesterGroup(SensorGroup):
    """Generates values arithmetically — no I/O, near-zero cost."""

    def __init__(self, *args, generator: str = "counter", start_value: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        if generator not in ("counter", "constant", "sawtooth"):
            raise ConfigError(f"tester group {self.name!r}: unknown generator {generator!r}")
        self.generator = generator
        self.start_value = start_value
        self.cycles = 0

    def read_raw(self, timestamp: int) -> list[int]:
        cycle = self.cycles
        self.cycles += 1
        if self.generator == "constant":
            return [self.start_value] * len(self.sensors)
        if self.generator == "sawtooth":
            return [(self.start_value + cycle) % 1000] * len(self.sensors)
        base = self.start_value + cycle
        return [base + i for i in range(len(self.sensors))]


class TesterConfigurator(ConfiguratorBase):
    """Builds tester groups; auto-generates sensors from ``numSensors``."""

    plugin_name = "tester"

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        common = self.group_common(name, config)
        group = TesterGroup(
            generator=config.get("generator", "counter"),
            start_value=config.get_int("startValue", 0),
            **common,
        )
        num = config.get_int("numSensors", 0)
        if num < 0:
            raise ConfigError(f"tester group {name!r}: numSensors must be >= 0")
        for i in range(num):
            sensor = PluginSensor(
                name=f"{name}_s{i}",
                mqtt_suffix=f"/{name}/s{i}",
                cache_maxage_ns=self.cache_maxage_ns,
            )
            group.add_sensor(sensor)
        # Explicit sensor blocks may coexist with generated ones.
        for sensor in self.sensors_from(config):
            group.add_sensor(sensor)
        if not group.sensors:
            raise ConfigError(f"tester group {name!r} defines no sensors")
        return group


register_plugin("tester", TesterConfigurator)
