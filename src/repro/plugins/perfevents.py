"""Perfevents plugin: per-core CPU performance counters.

Paper section 6.2.1: "we use Perfevents to sample performance counters
on CPU cores" — the plugin behind the per-core, high-frequency metrics
that motivate DCDB's scalability design (thousands of sensors per
node, section 2).

**Substitution note** (see DESIGN.md): ``perf_event_open`` is a Linux
syscall unavailable to a portable pure-Python build, so the counter
*source* is abstracted behind :class:`PerfSource`.  The default
:class:`SyntheticPerfSource` models monotonically increasing per-CPU
counters driven by per-event rates (optionally a workload model from
:mod:`repro.simulation.workloads` — the Figure 10 pipeline injects its
phase-dependent rates this way).  Everything above the source — group
semantics, per-CPU sensor fan-out, delta conversion of monotonic
counters, topic layout — is the real plugin code path.

Configuration::

    group instr {
        interval 1000
        counter  instructions
        cpus     0-3,8
        ; sensors auto-generated as /cpu<N>/instructions, delta
    }
"""

from __future__ import annotations

from typing import Protocol

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.common.timeutil import NS_PER_SEC
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin

#: Default synthetic event rates (events per second per CPU), loosely
#: calibrated to a 2 GHz core running typical HPC code.
DEFAULT_RATES: dict[str, float] = {
    "instructions": 2.0e9,
    "cycles": 2.2e9,
    "cache-misses": 4.0e6,
    "cache-references": 8.0e7,
    "branch-misses": 6.0e6,
    "branch-instructions": 4.0e8,
    "page-faults": 1.0e3,
}


class PerfSource(Protocol):
    """Where counter values come from.

    ``read(cpu, event, t_ns)`` returns the monotonic event count of
    ``event`` on ``cpu`` at time ``t_ns``.
    """

    def read(self, cpu: int, event: str, t_ns: int) -> int: ...


class SyntheticPerfSource:
    """Rate-driven monotonic counters.

    ``rates`` maps event name to events/second; ``cpu_skew`` spreads
    per-CPU rates slightly (cpu ``i`` runs at ``1 + cpu_skew*i`` of the
    base rate) so per-core series are distinguishable in tests.
    ``rate_fn`` (when given) overrides rates dynamically:
    ``rate_fn(cpu, event, t_ns) -> rate`` — the hook the workload
    models use to produce phase-dependent behaviour.
    """

    def __init__(
        self,
        rates: dict[str, float] | None = None,
        cpu_skew: float = 0.0,
        rate_fn=None,
    ) -> None:
        self.rates = dict(DEFAULT_RATES if rates is None else rates)
        self.cpu_skew = cpu_skew
        self.rate_fn = rate_fn
        # Integrated counts per (cpu, event): (last_t_ns, count).
        self._state: dict[tuple[int, str], tuple[int, float]] = {}

    def read(self, cpu: int, event: str, t_ns: int) -> int:
        if self.rate_fn is not None:
            last_t, count = self._state.get((cpu, event), (0, 0.0))
            if t_ns > last_t:
                # Integrate the (piecewise-constant) rate over the gap.
                rate = self.rate_fn(cpu, event, last_t)
                count += rate * (t_ns - last_t) / NS_PER_SEC
                self._state[(cpu, event)] = (t_ns, count)
            return int(count)
        base = self.rates.get(event)
        if base is None:
            raise PluginError(f"unknown perf event {event!r}")
        rate = base * (1.0 + self.cpu_skew * cpu)
        return int(rate * t_ns / NS_PER_SEC)


class PerfSensor(PluginSensor):
    """A sensor bound to one (cpu, event) pair."""

    __slots__ = ("cpu", "event")

    def __init__(self, cpu: int, event: str, **kwargs) -> None:
        super().__init__(**kwargs)
        self.cpu = cpu
        self.event = event


class PerfGroup(SensorGroup):
    """Samples every (cpu, event) sensor from the counter source."""

    def __init__(self, *args, source: PerfSource, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.source = source

    def read_raw(self, timestamp: int) -> list[int]:
        return [self.source.read(s.cpu, s.event, timestamp) for s in self.sensors]


def parse_cpu_list(spec: str) -> list[int]:
    """Parse a cpu list like ``0-3,8,12-13`` into sorted CPU ids."""
    cpus: set[int] = set()
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "-" in chunk:
            lo_text, _, hi_text = chunk.partition("-")
            try:
                lo, hi = int(lo_text), int(hi_text)
            except ValueError:
                raise ConfigError(f"bad cpu range {chunk!r}") from None
            if hi < lo:
                raise ConfigError(f"bad cpu range {chunk!r}")
            cpus.update(range(lo, hi + 1))
        else:
            try:
                cpus.add(int(chunk))
            except ValueError:
                raise ConfigError(f"bad cpu id {chunk!r}") from None
    if not cpus:
        raise ConfigError(f"empty cpu list {spec!r}")
    return sorted(cpus)


class PerfeventsConfigurator(ConfiguratorBase):
    """Builds perf groups with auto-generated per-CPU sensors.

    ``source`` is a class attribute so tests and the simulation layer
    swap in a workload-driven source before loading the plugin::

        PerfeventsConfigurator.source_factory = lambda: my_source
    """

    plugin_name = "perfevents"
    source_factory = SyntheticPerfSource

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        event = config.get("counter")
        if event is None:
            raise ConfigError(f"perfevents group {name!r} needs a counter")
        cpus = parse_cpu_list(config.get("cpus", "0"))
        group = PerfGroup(source=self.source_factory(), **self.group_common(name, config))
        for cpu in cpus:
            sensor = PerfSensor(
                cpu=cpu,
                event=event,
                name=f"cpu{cpu}_{event}",
                mqtt_suffix=f"/cpu{cpu}/{event}",
                cache_maxage_ns=self.cache_maxage_ns,
            )
            # Hardware counters are monotonic; publish deltas.
            sensor.metadata.delta = True
            group.add_sensor(sensor)
        return group


register_plugin("perfevents", PerfeventsConfigurator)
