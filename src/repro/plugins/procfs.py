"""ProcFS plugin: kernel metrics from ``/proc``.

Paper section 6.2.1: "the ProcFS plugin collects data from the
meminfo, vmstat and procstat files".  This plugin parses those three
formats.  The file path is configurable, so tests and simulations
point groups at synthetic snapshots with identical syntax, while a
production-like deployment reads the live ``/proc`` files.

Configuration::

    group mem {
        interval 1000
        type     meminfo
        path     /proc/meminfo
        ; with no sensor blocks, one sensor per key is auto-generated
        sensor MemFree { mqttsuffix /memfree  unit KiB }
    }

Supported ``type`` values and their sensor namespaces:

* ``meminfo`` — keys as in the file (``MemTotal``, ``MemFree``, ...);
  values in KiB are reported as-is.
* ``vmstat`` — keys as in the file (``pgfault``, ``pswpin``, ...);
  most are monotonic counters, mark them ``delta true``.
* ``procstat`` — flattened ``/proc/stat``: per-CPU jiffy fields as
  ``cpu0_user`` ... ``cpu0_softirq`` plus aggregate ``cpu_*`` and the
  scalar ``ctxt``, ``processes``, ``procs_running``, ``procs_blocked``.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin

_CPU_FIELDS = ("user", "nice", "system", "idle", "iowait", "irq", "softirq")


def parse_meminfo(text: str) -> dict[str, int]:
    """Parse /proc/meminfo syntax: ``Key:   12345 kB``."""
    values: dict[str, int] = {}
    for line in text.splitlines():
        if ":" not in line:
            continue
        key, _, rest = line.partition(":")
        parts = rest.split()
        if parts:
            try:
                values[key.strip()] = int(parts[0])
            except ValueError:
                continue
    return values


def parse_vmstat(text: str) -> dict[str, int]:
    """Parse /proc/vmstat syntax: ``key 12345``."""
    values: dict[str, int] = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 2:
            try:
                values[parts[0]] = int(parts[1])
            except ValueError:
                continue
    return values


def parse_procstat(text: str) -> dict[str, int]:
    """Parse /proc/stat into a flat metric dictionary."""
    values: dict[str, int] = {}
    for line in text.splitlines():
        parts = line.split()
        if not parts:
            continue
        key = parts[0]
        if key.startswith("cpu"):
            for field_name, field_value in zip(_CPU_FIELDS, parts[1:]):
                try:
                    values[f"{key}_{field_name}"] = int(field_value)
                except ValueError:
                    continue
        elif key in ("ctxt", "processes", "procs_running", "procs_blocked"):
            try:
                values[key] = int(parts[1])
            except ValueError:
                continue
        elif key == "intr" and len(parts) > 1:
            try:
                values["intr"] = int(parts[1])
            except ValueError:
                continue
    return values


_PARSERS = {
    "meminfo": parse_meminfo,
    "vmstat": parse_vmstat,
    "procstat": parse_procstat,
}

#: Metrics that are monotonic counters and default to delta publishing.
_DELTA_DEFAULT = {"vmstat", "procstat"}


class ProcfsGroup(SensorGroup):
    """Reads and parses one /proc file per cycle."""

    def __init__(self, *args, file_type: str, path: str, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if file_type not in _PARSERS:
            raise ConfigError(f"procfs group {self.name!r}: unknown type {file_type!r}")
        self.file_type = file_type
        self.path = path
        self._parser = _PARSERS[file_type]

    def read_file(self) -> dict[str, int]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return self._parser(handle.read())
        except OSError as exc:
            raise PluginError(f"cannot read {self.path}: {exc}") from exc

    def read_raw(self, timestamp: int) -> list[int]:
        values = self.read_file()
        out: list[int] = []
        for sensor in self.sensors:
            value = values.get(sensor.name)
            if value is None:
                raise PluginError(
                    f"metric {sensor.name!r} missing from {self.path} ({self.file_type})"
                )
            out.append(value)
        return out


class ProcfsConfigurator(ConfiguratorBase):
    """Builds procfs groups; auto-discovers sensors when none given."""

    plugin_name = "procfs"

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        file_type = config.get("type", "meminfo")
        path = config.get("path", f"/proc/{'stat' if file_type == 'procstat' else file_type}")
        group = ProcfsGroup(
            file_type=file_type, path=path, **self.group_common(name, config)
        )
        delta_default = file_type in _DELTA_DEFAULT
        explicit = self.sensors_from(config)
        if explicit:
            for sensor in explicit:
                if config.child("sensor") is not None and not _had_delta_key(config, sensor.name):
                    sensor.metadata.delta = sensor.metadata.delta or delta_default
                group.add_sensor(sensor)
        else:
            # Auto-generate one sensor per metric discovered now.
            for metric in sorted(group.read_file()):
                sensor = PluginSensor(
                    name=metric,
                    mqtt_suffix=f"/{name}/{metric}",
                    cache_maxage_ns=self.cache_maxage_ns,
                )
                sensor.metadata.delta = delta_default
                group.add_sensor(sensor)
        if not group.sensors:
            raise ConfigError(f"procfs group {name!r} has no sensors")
        return group


def _had_delta_key(config: PropertyTree, sensor_name: str) -> bool:
    for _key, node in config.children("sensor"):
        if (node.value or _key) == sensor_name:
            return node.get("delta") is not None
    return False


register_plugin("procfs", ProcfsConfigurator)
