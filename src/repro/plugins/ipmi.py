"""IPMI plugin: out-of-band node sensors via BMCs.

Reads Sensor Data Records from (simulated) baseboard management
controllers — see :mod:`repro.devices.bmc`.  Demonstrates the paper's
*entity* concept (section 4.1): "for a plugin reading data from a
remote server (e.g., via IPMI or SNMP), a host entity may be used by
all groups reading from the same host for communication with it" —
all groups of one BMC share a single TCP connection held by the
:class:`IpmiHostEntity`.

Configuration::

    host bmc0 {
        addr 127.0.0.1:6230
    }
    group power {
        entity   bmc0
        interval 1000
        sensor node_power {
            record     12       ; SDR record id
            mqttsuffix /power
            unit       W
        }
    }
"""

from __future__ import annotations

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin
from repro.devices.lineserver import LineClient


def parse_addr(addr: str, default_port: int) -> tuple[str, int]:
    """Split ``host[:port]`` into its parts."""
    host, _, port_text = addr.partition(":")
    if not host:
        raise ConfigError(f"bad address {addr!r}")
    try:
        port = int(port_text) if port_text else default_port
    except ValueError:
        raise ConfigError(f"bad port in address {addr!r}") from None
    return host, port


class IpmiHostEntity(Entity):
    """Shared BMC connection for all groups of one host."""

    def __init__(self, name: str, host: str, port: int) -> None:
        super().__init__(name)
        self.client = LineClient(host, port)

    def connect(self) -> None:
        self.client.connect()

    def disconnect(self) -> None:
        self.client.close()

    def get_sensor(self, record_id: int) -> int:
        """Issue one 'get sensor reading' command."""
        try:
            lines = self.client.request(f"GET SENSOR {record_id}")
        except (ConnectionError, ValueError, OSError) as exc:
            raise PluginError(f"BMC {self.name}: {exc}") from exc
        # "READING <id> <value>"
        parts = lines[0].split()
        if len(parts) != 3 or parts[0] != "READING":
            raise PluginError(f"BMC {self.name}: malformed response {lines[0]!r}")
        return int(parts[2])

    def list_sdr(self) -> list[tuple[int, str, str, str]]:
        """Enumerate the SDR repository: (id, name, type, unit)."""
        try:
            lines = self.client.request("LIST SDR")
        except (ConnectionError, ValueError, OSError) as exc:
            raise PluginError(f"BMC {self.name}: {exc}") from exc
        records = []
        for line in lines:
            if line == "EMPTY":
                break
            _tag, rid, name, stype, unit = line.split()
            records.append((int(rid), name, stype, unit))
        return records


class IpmiSensor(PluginSensor):
    """A sensor bound to one SDR record."""

    __slots__ = ("record_id",)

    def __init__(self, record_id: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.record_id = record_id


class IpmiGroup(SensorGroup):
    """Reads each sensor's SDR record through the host entity."""

    def read_raw(self, timestamp: int) -> list[int]:
        entity = self.entity
        if not isinstance(entity, IpmiHostEntity):
            raise PluginError(f"group {self.name!r} has no IPMI host entity")
        return [entity.get_sensor(s.record_id) for s in self.sensors]


class IpmiConfigurator(ConfiguratorBase):
    """Builds IPMI host entities and their groups."""

    plugin_name = "ipmi"
    entity_key = "host"
    DEFAULT_PORT = 6230

    def build_entity(self, name: str, config: PropertyTree) -> Entity:
        addr = config.require("addr")
        host, port = parse_addr(addr, self.DEFAULT_PORT)
        return IpmiHostEntity(name, host, port)

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        if entity is None:
            raise ConfigError(f"IPMI group {name!r} requires an entity")
        group = IpmiGroup(entity=entity, **self.group_common(name, config))
        for key, node in config.children("sensor"):
            base = self.make_sensor(node.value or key, node)
            record_id = node.get_int("record")
            if record_id is None:
                raise ConfigError(f"IPMI sensor {base.name!r} needs a record id")
            sensor = IpmiSensor(
                record_id=record_id,
                name=base.name,
                mqtt_suffix=base.mqtt_suffix,
                metadata=base.metadata,
                cache_maxage_ns=self.cache_maxage_ns,
            )
            group.add_sensor(sensor)
        if not group.sensors:
            raise ConfigError(f"IPMI group {name!r} defines no sensors")
        return group


register_plugin("ipmi", IpmiConfigurator)
