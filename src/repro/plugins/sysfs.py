"""SysFS plugin: single-value kernel attribute files.

Paper section 6.2.1: "we use SysFS to sample various temperature and
energy sensors" — on LRZ systems these are hwmon/coretemp and RAPL
``energy_uj`` files.  Each sensor names one file containing a number;
an optional ``filter`` regular expression extracts the value from
files with decoration around it.

Configuration::

    group coretemp {
        interval 1000
        sensor pkg0_temp {
            path       /sys/class/hwmon/hwmon1/temp1_input
            mqttsuffix /temp/pkg0
            unit       mC
        }
        sensor pkg0_energy {
            path       /sys/class/powercap/intel-rapl:0/energy_uj
            mqttsuffix /energy/pkg0
            unit       uJ
            delta      true
        }
    }
"""

from __future__ import annotations

import re

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin


class SysfsSensor(PluginSensor):
    """A sensor bound to one sysfs attribute file."""

    __slots__ = ("path", "filter_re")

    def __init__(self, path: str, filter_pattern: str | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.path = path
        self.filter_re = re.compile(filter_pattern) if filter_pattern else None

    def read_value(self) -> int:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
        except OSError as exc:
            raise PluginError(f"cannot read {self.path}: {exc}") from exc
        if self.filter_re is not None:
            match = self.filter_re.search(text)
            if match is None:
                raise PluginError(
                    f"filter {self.filter_re.pattern!r} matched nothing in {self.path}"
                )
            text = match.group(1) if match.groups() else match.group(0)
        try:
            return int(float(text))
        except ValueError:
            raise PluginError(f"non-numeric content in {self.path}: {text!r}") from None


class SysfsGroup(SensorGroup):
    """Reads each sensor's file per cycle."""

    def read_raw(self, timestamp: int) -> list[int]:
        return [sensor.read_value() for sensor in self.sensors]


class SysfsConfigurator(ConfiguratorBase):
    """Builds sysfs groups from per-sensor file paths."""

    plugin_name = "sysfs"

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        group = SysfsGroup(**self.group_common(name, config))
        for key, node in config.children("sensor"):
            base = self.make_sensor(node.value or key, node)
            path = node.get("path")
            if path is None:
                raise ConfigError(f"sysfs sensor {base.name!r} needs a path")
            sensor = SysfsSensor(
                path=path,
                filter_pattern=node.get("filter"),
                name=base.name,
                mqtt_suffix=base.mqtt_suffix,
                metadata=base.metadata,
                cache_maxage_ns=self.cache_maxage_ns,
            )
            group.add_sensor(sensor)
        if not group.sensors:
            raise ConfigError(f"sysfs group {name!r} defines no sensors")
        return group


register_plugin("sysfs", SysfsConfigurator)
