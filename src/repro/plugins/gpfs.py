"""GPFS plugin: parallel-filesystem I/O metrics.

The paper lists GPFS among the I/O plugins (section 3.1).  Real
deployments read GPFS's ``mmpmon`` interface; its ``fs_io_s`` output
is a line of ``_tag_ value`` fields per filesystem.  This plugin
parses that format from a stats file (the mmpmon named-pipe output is
commonly captured this way), with the path configurable so simulations
can regenerate it.

Recognized fields, matching mmpmon's ``io_s`` naming:

========  =========================
``_br_``  bytes read
``_bw_``  bytes written
``_oc_``  open() calls
``_cc_``  close() calls
``_rdc_`` application read requests
``_wc_``  application write requests
========  =========================

All are monotonic counters published as deltas.

Configuration::

    group gpfs_io {
        interval 1000
        path     /var/run/mmpmon_stats
        ; sensors auto-generate for all fields, or select:
        sensor bytes_read  { field _br_  mqttsuffix /gpfs/bytes_read }
    }
"""

from __future__ import annotations

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin

FIELDS = {
    "_br_": "bytes_read",
    "_bw_": "bytes_written",
    "_oc_": "opens",
    "_cc_": "closes",
    "_rdc_": "reads",
    "_wc_": "writes",
}


def parse_mmpmon(text: str) -> dict[str, int]:
    """Parse an mmpmon ``fs_io_s``-style line into tagged counters."""
    values: dict[str, int] = {}
    tokens = text.split()
    for i, token in enumerate(tokens):
        if token in FIELDS and i + 1 < len(tokens):
            try:
                values[token] = int(tokens[i + 1])
            except ValueError:
                continue
    return values


class GpfsSensor(PluginSensor):
    """A sensor bound to one mmpmon field tag."""

    __slots__ = ("field",)

    def __init__(self, field: str, **kwargs) -> None:
        super().__init__(**kwargs)
        self.field = field


class GpfsGroup(SensorGroup):
    """Reads and parses the stats file once per cycle."""

    def __init__(self, *args, path: str, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.path = path

    def read_raw(self, timestamp: int) -> list[int]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                values = parse_mmpmon(handle.read())
        except OSError as exc:
            raise PluginError(f"cannot read {self.path}: {exc}") from exc
        out: list[int] = []
        for sensor in self.sensors:
            value = values.get(sensor.field)
            if value is None:
                raise PluginError(f"field {sensor.field!r} missing from {self.path}")
            out.append(value)
        return out


class GpfsConfigurator(ConfiguratorBase):
    """Builds GPFS groups; auto-generates sensors for all fields."""

    plugin_name = "gpfs"

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        path = config.get("path")
        if path is None:
            raise ConfigError(f"gpfs group {name!r} needs a path")
        group = GpfsGroup(path=path, **self.group_common(name, config))
        sensor_nodes = list(config.children("sensor"))
        if sensor_nodes:
            for key, node in sensor_nodes:
                base = self.make_sensor(node.value or key, node)
                field = node.get("field")
                if field not in FIELDS:
                    raise ConfigError(
                        f"gpfs sensor {base.name!r}: unknown field {field!r}"
                    )
                sensor = GpfsSensor(
                    field=field,
                    name=base.name,
                    mqtt_suffix=base.mqtt_suffix,
                    metadata=base.metadata,
                    cache_maxage_ns=self.cache_maxage_ns,
                )
                sensor.metadata.delta = True
                group.add_sensor(sensor)
        else:
            for tag, metric in FIELDS.items():
                sensor = GpfsSensor(
                    field=tag,
                    name=metric,
                    mqtt_suffix=f"/{name}/{metric}",
                    cache_maxage_ns=self.cache_maxage_ns,
                )
                sensor.metadata.delta = True
                group.add_sensor(sensor)
        return group


register_plugin("gpfs", GpfsConfigurator)
