"""Pusher plugins.

The paper ships ten plugins covering "in-band application performance
metrics (Perfevents), server-side sensors and metrics (ProcFS and
SysFS), I/O metrics (GPFS and Omnipath), out-of-band sensors of IT
components (IPMI and SNMP), RESTful APIs, and building management
systems (BACnet)" (section 3.1), plus the ``tester`` plugin used
throughout the evaluation to generate arbitrary sensor counts with
negligible acquisition overhead (section 6.2.1).

All ten (plus tester) are reproduced here.  Each module registers its
configurator with the plugin registry on import; the registry imports
lazily by name, so ``pusher.load_plugin("procfs", cfg)`` just works.

In-band plugins (procfs, sysfs, perfevents, gpfs, opa) read from file
trees; their roots are configurable so tests point them at synthetic
snapshots while production-like runs read the live ``/proc``.
Out-of-band plugins (ipmi, snmp, rest, bacnet) speak simplified wire
protocols over TCP against the simulated devices in
:mod:`repro.devices`.
"""
