"""Application-instrumentation plugin.

The paper's goal is monitoring "from facility to application sensor
data", and its future work plans "plugins to collect profiling data
as well, so as to extend the application analysis capabilities of
DCDB" (section 9; compare Caliper, which the related-work section says
"could potentially be included in DCDB as additional data sources").

This plugin is that data source: applications instrument themselves
through a process-wide registry of counters and gauges, and the
Pusher samples the registry like any other sensor source — no
application-side MQTT, storage or timing code.

Application side::

    from repro.plugins.appinstr import instruments

    iterations = instruments.counter("solver_iterations")
    residual = instruments.gauge("residual", scale=1e6)

    while not converged:
        iterations.inc()
        residual.set(current_residual)

Pusher side::

    group app {
        interval 100
        registry default       ; the process-wide registry
        ; with no sensor blocks, every instrument is exported;
        ; counters publish as deltas.
    }
"""

from __future__ import annotations

import threading

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        with self._lock:
            self._value += amount

    def read(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value; floats encode via ``scale``."""

    __slots__ = ("name", "scale", "_value", "_lock")

    def __init__(self, name: str, scale: float = 1.0) -> None:
        self.name = name
        self.scale = scale
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = int(round(value * self.scale))

    def read(self) -> int:
        with self._lock:
            return self._value


class InstrumentRegistry:
    """A named collection of application instruments.

    ``instruments`` below is the default process-wide registry; tests
    and multi-tenant processes can create isolated ones and register
    them under their own names.
    """

    _registries: dict[str, "InstrumentRegistry"] = {}
    _registries_lock = threading.Lock()

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """Get or create a counter (idempotent by name)."""
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Counter):
                    raise ConfigError(f"instrument {name!r} exists as a gauge")
                return existing
            instrument = Counter(name)
            self._instruments[name] = instrument
            return instrument

    def gauge(self, name: str, scale: float = 1.0) -> Gauge:
        """Get or create a gauge (idempotent by name)."""
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Gauge):
                    raise ConfigError(f"instrument {name!r} exists as a counter")
                return existing
            instrument = Gauge(name, scale=scale)
            self._instruments[name] = instrument
            return instrument

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Counter | Gauge | None:
        with self._lock:
            return self._instruments.get(name)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    # -- named registries ----------------------------------------------------

    @classmethod
    def named(cls, name: str) -> "InstrumentRegistry":
        """Get or create the registry registered under ``name``."""
        with cls._registries_lock:
            registry = cls._registries.get(name)
            if registry is None:
                registry = cls()
                cls._registries[name] = registry
            return registry


#: The default process-wide registry applications import.
instruments = InstrumentRegistry.named("default")


class AppInstrSensor(PluginSensor):
    """A sensor bound to one instrument."""

    __slots__ = ("instrument_name",)

    def __init__(self, instrument_name: str, **kwargs) -> None:
        super().__init__(**kwargs)
        self.instrument_name = instrument_name


class AppInstrGroup(SensorGroup):
    """Samples instruments from a registry.

    Instruments registered *after* the plugin started are picked up on
    the fly when the group was configured in export-all mode.
    """

    def __init__(self, *args, registry: InstrumentRegistry, export_all: bool, **kwargs):
        super().__init__(*args, **kwargs)
        self.registry = registry
        self.export_all = export_all
        self._cache_maxage_ns = None

    def read_raw(self, timestamp: int) -> list[int]:
        if self.export_all:
            self._sync_sensors()
        values: list[int] = []
        for sensor in self.sensors:
            instrument = self.registry.get(sensor.instrument_name)
            if instrument is None:
                raise PluginError(
                    f"instrument {sensor.instrument_name!r} disappeared"
                )
            values.append(instrument.read())
        return values

    def _sync_sensors(self) -> None:
        known = {s.instrument_name for s in self.sensors}
        for name in self.registry.names():
            if name in known:
                continue
            instrument = self.registry.get(name)
            sensor = AppInstrSensor(
                instrument_name=name,
                name=name,
                mqtt_suffix=f"/{self.name}/{name}",
            )
            sensor.metadata.delta = isinstance(instrument, Counter)
            if isinstance(instrument, Gauge):
                sensor.metadata.scale = instrument.scale
            self.add_sensor(sensor)


class AppInstrConfigurator(ConfiguratorBase):
    """Builds instrumentation groups over a named registry."""

    plugin_name = "appinstr"

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        registry = InstrumentRegistry.named(config.get("registry", "default"))
        sensor_nodes = list(config.children("sensor"))
        group = AppInstrGroup(
            registry=registry,
            export_all=not sensor_nodes,
            **self.group_common(name, config),
        )
        for key, node in sensor_nodes:
            base = self.make_sensor(node.value or key, node)
            instrument_name = node.get("instrument", base.name)
            sensor = AppInstrSensor(
                instrument_name=instrument_name,
                name=base.name,
                mqtt_suffix=base.mqtt_suffix,
                metadata=base.metadata,
                cache_maxage_ns=self.cache_maxage_ns,
            )
            group.add_sensor(sensor)
        return group


register_plugin("appinstr", AppInstrConfigurator)
