"""REST plugin: HTTP/JSON telemetry endpoints.

Polls JSON sensor documents from HTTP APIs — the paper's REST plugin,
used in case study 1 for the cooling-circuit controllers.  One
:class:`RestEndpointEntity` per base URL; each sensor selects a field
of the fetched document.

Configuration::

    endpoint cu0 {
        baseurl http://127.0.0.1:8088
        path    /sensors
    }
    group circuit {
        entity   cu0
        interval 10000
        sensor heat_removed {
            field      heat_out
            mqttsuffix /heat_removed
            unit       W
        }
    }
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin


class RestEndpointEntity(Entity):
    """One HTTP endpoint fetched once per group cycle.

    A group cycle issues a single GET and every sensor extracts its
    field from the same document — one request however many sensors,
    the entity-level resource sharing of paper section 4.1.
    """

    def __init__(self, name: str, base_url: str, path: str = "/sensors", timeout: float = 5.0):
        super().__init__(name)
        self.url = base_url.rstrip("/") + path
        self.timeout = timeout

    def fetch(self) -> dict:
        try:
            with urllib.request.urlopen(self.url, timeout=self.timeout) as response:
                return json.loads(response.read())
        except (urllib.error.URLError, json.JSONDecodeError, OSError) as exc:
            raise PluginError(f"REST {self.name}: {exc}") from exc


class RestSensor(PluginSensor):
    """A sensor bound to one field of the endpoint document."""

    __slots__ = ("field",)

    def __init__(self, field: str, **kwargs) -> None:
        super().__init__(**kwargs)
        self.field = field


class RestGroup(SensorGroup):
    """One GET per cycle; sensors pick their fields."""

    def read_raw(self, timestamp: int) -> list[int]:
        entity = self.entity
        if not isinstance(entity, RestEndpointEntity):
            raise PluginError(f"group {self.name!r} has no REST endpoint entity")
        document = entity.fetch()
        values: list[int] = []
        for sensor in self.sensors:
            value = document.get(sensor.field)
            if value is None:
                raise PluginError(
                    f"REST {entity.name}: field {sensor.field!r} missing from document"
                )
            values.append(int(round(float(value))))
        return values


class RestConfigurator(ConfiguratorBase):
    """Builds REST endpoint entities and their groups."""

    plugin_name = "rest"
    entity_key = "endpoint"

    def build_entity(self, name: str, config: PropertyTree) -> Entity:
        base_url = config.require("baseurl")
        return RestEndpointEntity(name, base_url, path=config.get("path", "/sensors"))

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        if entity is None:
            raise ConfigError(f"REST group {name!r} requires an entity")
        group = RestGroup(entity=entity, **self.group_common(name, config))
        for key, node in config.children("sensor"):
            base = self.make_sensor(node.value or key, node)
            field = node.get("field", base.name)
            sensor = RestSensor(
                field=field,
                name=base.name,
                mqtt_suffix=base.mqtt_suffix,
                metadata=base.metadata,
                cache_maxage_ns=self.cache_maxage_ns,
            )
            group.add_sensor(sensor)
        if not group.sensors:
            raise ConfigError(f"REST group {name!r} defines no sensors")
        return group


register_plugin("rest", RestConfigurator)
