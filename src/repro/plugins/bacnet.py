"""BACnet plugin: building-management-system points.

Reads analog-input Present_Values from (simulated) BACnet controllers
— see :mod:`repro.devices.bacnet_device`.  This is the facility end of
the paper's "from facility to application" span: chiller temperatures,
pump speeds and flow meters live behind the building management
system.

Configuration::

    device ahu1 {
        addr     127.0.0.1:47808
        deviceId 120
    }
    group coolingloop {
        entity   ahu1
        interval 10000
        sensor inlet_temp {
            objectInstance 1
            mqttsuffix     /inlet_temp
            unit           C
            scale          100     ; controller reports centi-degrees
        }
    }
"""

from __future__ import annotations

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin
from repro.devices.lineserver import LineClient
from repro.plugins.ipmi import parse_addr


class BacnetDeviceEntity(Entity):
    """Shared controller connection for all groups of one device."""

    def __init__(self, name: str, host: str, port: int, device_id: int = 0) -> None:
        super().__init__(name)
        self.device_id = device_id
        self.client = LineClient(host, port)

    def connect(self) -> None:
        self.client.connect()

    def disconnect(self) -> None:
        self.client.close()

    def read_present_value(self, instance: int) -> int:
        try:
            lines = self.client.request(f"READPROP AI {instance} PRESENT_VALUE")
        except (ConnectionError, ValueError, OSError) as exc:
            raise PluginError(f"BACnet {self.name}: {exc}") from exc
        # "AI <instance> PRESENT_VALUE <value>"
        parts = lines[0].split()
        if len(parts) != 4 or parts[2] != "PRESENT_VALUE":
            raise PluginError(f"BACnet {self.name}: malformed response {lines[0]!r}")
        return int(parts[3])


class BacnetSensor(PluginSensor):
    """A sensor bound to one analog-input instance."""

    __slots__ = ("object_instance",)

    def __init__(self, object_instance: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.object_instance = object_instance


class BacnetGroup(SensorGroup):
    """Reads Present_Value of each object through the entity."""

    def read_raw(self, timestamp: int) -> list[int]:
        entity = self.entity
        if not isinstance(entity, BacnetDeviceEntity):
            raise PluginError(f"group {self.name!r} has no BACnet device entity")
        return [entity.read_present_value(s.object_instance) for s in self.sensors]


class BacnetConfigurator(ConfiguratorBase):
    """Builds BACnet device entities and their groups."""

    plugin_name = "bacnet"
    entity_key = "device"
    DEFAULT_PORT = 47808

    def build_entity(self, name: str, config: PropertyTree) -> Entity:
        host, port = parse_addr(config.require("addr"), self.DEFAULT_PORT)
        return BacnetDeviceEntity(
            name, host, port, device_id=config.get_int("deviceId", 0)
        )

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        if entity is None:
            raise ConfigError(f"BACnet group {name!r} requires an entity")
        group = BacnetGroup(entity=entity, **self.group_common(name, config))
        for key, node in config.children("sensor"):
            base = self.make_sensor(node.value or key, node)
            instance = node.get_int("objectInstance")
            if instance is None:
                raise ConfigError(f"BACnet sensor {base.name!r} needs an objectInstance")
            sensor = BacnetSensor(
                object_instance=instance,
                name=base.name,
                mqtt_suffix=base.mqtt_suffix,
                metadata=base.metadata,
                cache_maxage_ns=self.cache_maxage_ns,
            )
            group.add_sensor(sensor)
        if not group.sensors:
            raise ConfigError(f"BACnet group {name!r} defines no sensors")
        return group


register_plugin("bacnet", BacnetConfigurator)
