"""Omni-Path (OPA) plugin: network fabric port counters.

Paper section 6.2.1: "we use ... OPA to measure network-related
metrics" on the Omni-Path systems (SuperMUC-NG, CooLMUC-3 in Table 1).
Omni-Path host fabric interfaces expose port counters as sysfs-style
attribute files; this plugin samples the standard four:

* ``port_xmit_data`` / ``port_rcv_data`` — data moved (in flits/words)
* ``port_xmit_pkts`` / ``port_rcv_pkts`` — packets moved

The counter directory root is configurable (default mirrors the
kernel's ``/sys/class/infiniband`` layout) so simulations generate a
synthetic tree.

Configuration::

    group fabric {
        interval 1000
        root /sys/class/infiniband
        hfi  hfi1_0
        port 1
        ; sensors auto-generate for the four standard counters
    }
"""

from __future__ import annotations

import os

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin

COUNTERS = ("port_xmit_data", "port_rcv_data", "port_xmit_pkts", "port_rcv_pkts")


class OpaGroup(SensorGroup):
    """Samples the counter files of one HFI port."""

    def __init__(self, *args, counter_dir: str, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.counter_dir = counter_dir

    def read_raw(self, timestamp: int) -> list[int]:
        out: list[int] = []
        for sensor in self.sensors:
            path = os.path.join(self.counter_dir, sensor.name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    out.append(int(handle.read().strip()))
            except OSError as exc:
                raise PluginError(f"cannot read {path}: {exc}") from exc
            except ValueError:
                raise PluginError(f"non-numeric counter in {path}") from None
        return out


class OpaConfigurator(ConfiguratorBase):
    """Builds OPA groups over one HFI port's counter directory."""

    plugin_name = "opa"

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        root = config.get("root", "/sys/class/infiniband")
        hfi = config.get("hfi", "hfi1_0")
        port = config.get_int("port", 1)
        counter_dir = os.path.join(root, hfi, "ports", str(port), "counters")
        group = OpaGroup(counter_dir=counter_dir, **self.group_common(name, config))
        selected = config.get("counters")
        counters = (
            [c.strip() for c in selected.split(",") if c.strip()]
            if selected
            else list(COUNTERS)
        )
        for counter in counters:
            if counter not in COUNTERS:
                raise ConfigError(f"opa group {name!r}: unknown counter {counter!r}")
            sensor = PluginSensor(
                name=counter,
                mqtt_suffix=f"/{hfi}/port{port}/{counter}",
                cache_maxage_ns=self.cache_maxage_ns,
            )
            sensor.metadata.delta = True
            group.add_sensor(sensor)
        return group


register_plugin("opa", OpaConfigurator)
