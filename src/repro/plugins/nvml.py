"""NVML plugin: GPU sensors (the paper's future work, section 9).

Paper: "we plan to further extend DCDB and develop further plugins in
order to support a broader range of sensors and performance events,
such as those deriving from GPU usage."  (DCDB later gained exactly
this plugin against NVIDIA's NVML.)  This reproduction implements the
plugin on an abstracted :class:`NvmlSource`; the default synthetic
source models GPUs alternating between busy and idle kernels, since no
GPU is available in this environment (see DESIGN.md's substitution
policy).

Metrics per GPU (NVML field analogues):

=================  ======================================  =====
``power``          board power draw                        mW
``utilization``    SM utilization                          percent
``temperature``    core temperature                        C
``memory_used``    device memory in use                    MiB
``sm_clock``       current SM clock                        MHz
=================  ======================================  =====

Configuration::

    group gpus {
        interval 1000
        gpus     0-3
        metrics  power,utilization,temperature
        ; sensors auto-generate as /gpu<N>/<metric>
    }
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.common.errors import ConfigError, PluginError
from repro.common.proptree import PropertyTree
from repro.common.timeutil import NS_PER_SEC
from repro.core.pusher.plugin import ConfiguratorBase, Entity, PluginSensor, SensorGroup
from repro.core.pusher.registry import register_plugin
from repro.plugins.perfevents import parse_cpu_list

METRICS: dict[str, str] = {
    "power": "mW",
    "utilization": "percent",
    "temperature": "C",
    "memory_used": "MiB",
    "sm_clock": "MHz",
}


class NvmlSource(Protocol):
    """Where GPU readings come from."""

    def device_count(self) -> int: ...

    def read(self, gpu: int, metric: str, t_ns: int) -> int: ...


class SyntheticNvmlSource:
    """GPUs alternating between compute-bound and idle phases.

    Each GPU follows a square-ish duty cycle (period ``period_s``,
    phase-shifted per GPU) between idle and busy operating points;
    temperature follows utilization with first-order lag.  Entirely
    deterministic in time, so stepped tests are exact.
    """

    IDLE = {
        "power": 55_000,  # mW
        "utilization": 2,
        "temperature": 34,
        "memory_used": 450,
        "sm_clock": 585,
    }
    BUSY = {
        "power": 285_000,
        "utilization": 97,
        "temperature": 71,
        "memory_used": 14_200,
        "sm_clock": 1410,
    }

    def __init__(self, gpus: int = 4, period_s: float = 120.0, duty: float = 0.7) -> None:
        if not 0.0 < duty < 1.0:
            raise ConfigError("duty cycle must be in (0, 1)")
        self._gpus = gpus
        self.period_s = period_s
        self.duty = duty

    def device_count(self) -> int:
        return self._gpus

    def _busy_fraction(self, gpu: int, t_ns: int) -> float:
        """Smoothed duty-cycle position in [0, 1]."""
        t_s = t_ns / NS_PER_SEC + gpu * self.period_s / max(self._gpus, 1)
        phase = (t_s % self.period_s) / self.period_s
        # Smooth the square edges with a short sine ramp.
        edge = 0.05
        if phase < self.duty - edge:
            return 1.0
        if phase < self.duty + edge:
            return 0.5 - 0.5 * math.sin((phase - self.duty) / edge * math.pi / 2)
        if phase < 1.0 - edge:
            return 0.0
        return 0.5 + 0.5 * math.sin((phase - 1.0) / edge * math.pi / 2)

    def read(self, gpu: int, metric: str, t_ns: int) -> int:
        if not 0 <= gpu < self._gpus:
            raise PluginError(f"no GPU {gpu} (device count {self._gpus})")
        idle = self.IDLE.get(metric)
        busy = self.BUSY.get(metric)
        if idle is None or busy is None:
            raise PluginError(f"unknown NVML metric {metric!r}")
        frac = self._busy_fraction(gpu, t_ns)
        return int(round(idle + (busy - idle) * frac))


class NvmlSensor(PluginSensor):
    """A sensor bound to one (gpu, metric) pair."""

    __slots__ = ("gpu", "metric")

    def __init__(self, gpu: int, metric: str, **kwargs) -> None:
        super().__init__(**kwargs)
        self.gpu = gpu
        self.metric = metric


class NvmlGroup(SensorGroup):
    """Samples every (gpu, metric) sensor from the NVML source."""

    def __init__(self, *args, source: NvmlSource, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.source = source

    def read_raw(self, timestamp: int) -> list[int]:
        return [self.source.read(s.gpu, s.metric, timestamp) for s in self.sensors]


class NvmlConfigurator(ConfiguratorBase):
    """Builds NVML groups with per-GPU sensor fan-out.

    ``source_factory`` is swappable like the perfevents one, so tests
    and workload simulations inject their own device behaviour.
    """

    plugin_name = "nvml"
    source_factory = SyntheticNvmlSource

    def build_group(
        self, name: str, config: PropertyTree, entity: Entity | None
    ) -> SensorGroup:
        source = self.source_factory()
        gpu_spec = config.get("gpus")
        gpus = (
            parse_cpu_list(gpu_spec)
            if gpu_spec
            else list(range(source.device_count()))
        )
        for gpu in gpus:
            if gpu >= source.device_count():
                raise ConfigError(
                    f"nvml group {name!r}: GPU {gpu} beyond device count "
                    f"{source.device_count()}"
                )
        selected = config.get("metrics")
        metrics = (
            [m.strip() for m in selected.split(",") if m.strip()]
            if selected
            else list(METRICS)
        )
        for metric in metrics:
            if metric not in METRICS:
                raise ConfigError(f"nvml group {name!r}: unknown metric {metric!r}")
        group = NvmlGroup(source=source, **self.group_common(name, config))
        for gpu in gpus:
            for metric in metrics:
                sensor = NvmlSensor(
                    gpu=gpu,
                    metric=metric,
                    name=f"gpu{gpu}_{metric}",
                    mqtt_suffix=f"/gpu{gpu}/{metric}",
                    cache_maxage_ns=self.cache_maxage_ns,
                )
                sensor.metadata.unit = METRICS[metric]
                group.add_sensor(sensor)
        return group


register_plugin("nvml", NvmlConfigurator)
