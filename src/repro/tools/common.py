"""Shared plumbing of the command-line tools."""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.storage.backend import StorageBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SqliteBackend


def open_backend(uri: str) -> StorageBackend:
    """Open a storage backend from a tool ``--db`` URI.

    ``sqlite:<path>`` opens (creating if needed) a file-backed store;
    ``memory:`` an empty in-process store (useful for piping csvimport
    straight into a query in tests).
    """
    scheme, _, rest = uri.partition(":")
    if scheme == "sqlite":
        if not rest:
            raise ConfigError("sqlite URI needs a path: sqlite:/path/to.db")
        return SqliteBackend(rest)
    if scheme == "memory":
        return MemoryBackend()
    raise ConfigError(f"unknown storage URI scheme {scheme!r} (use sqlite: or memory:)")


def parse_time(text: str) -> int:
    """Parse a tool time argument into nanoseconds.

    Accepts raw integer nanoseconds, or a number suffixed with
    ``s``/``ms``/``us``/``ns``.
    """
    text = text.strip()
    for suffix, factor in (("ns", 1), ("us", 1_000), ("ms", 1_000_000), ("s", 1_000_000_000)):
        if text.endswith(suffix):
            try:
                return int(float(text[: -len(suffix)]) * factor)
            except ValueError:
                raise ConfigError(f"bad time value {text!r}") from None
    try:
        return int(text)
    except ValueError:
        raise ConfigError(f"bad time value {text!r}") from None
