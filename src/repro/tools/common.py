"""Shared plumbing of the command-line tools."""

from __future__ import annotations

from urllib.parse import parse_qsl

from repro.common.errors import ConfigError
from repro.storage.backend import StorageBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SqliteBackend


def open_backend(uri: str) -> StorageBackend:
    """Open a storage backend from a tool ``--db`` URI.

    ``sqlite:<path>`` opens (creating if needed) a file-backed store;
    ``memory:`` an empty in-process store (useful for piping csvimport
    straight into a query in tests); ``durable:<dir>`` the WAL-backed
    log-structured store (``docs/durability.md``), with optional query
    parameters, e.g. ``durable:/var/dcdb?fsync=always`` —

    ``fsync``
        WAL sync policy: ``always``, ``interval`` (default) or ``off``.
    ``fsync_interval_s``
        Sync period for the ``interval`` policy (float seconds).
    ``flush_threshold``
        Memtable rows before an automatic seal into a segment file.
    """
    scheme, _, rest = uri.partition(":")
    if scheme == "sqlite":
        if not rest:
            raise ConfigError("sqlite URI needs a path: sqlite:/path/to.db")
        return SqliteBackend(rest)
    if scheme == "memory":
        return MemoryBackend()
    if scheme == "durable":
        from repro.storage.durable import DurableBackend

        path, _, query = rest.partition("?")
        if not path:
            raise ConfigError("durable URI needs a directory: durable:/path/to/data")
        options = dict(parse_qsl(query))
        kwargs: dict = {}
        try:
            if "fsync" in options:
                kwargs["fsync"] = options.pop("fsync")
            if "fsync_interval_s" in options:
                kwargs["fsync_interval_s"] = float(options.pop("fsync_interval_s"))
            if "flush_threshold" in options:
                kwargs["flush_threshold"] = int(options.pop("flush_threshold"))
        except ValueError as exc:
            raise ConfigError(f"bad durable URI option: {exc}") from None
        if options:
            raise ConfigError(
                f"unknown durable URI option(s): {', '.join(sorted(options))}"
            )
        try:
            return DurableBackend(path, **kwargs)
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
    raise ConfigError(
        f"unknown storage URI scheme {scheme!r} (use sqlite:, memory: or durable:)"
    )


def parse_time(text: str) -> int:
    """Parse a tool time argument into nanoseconds.

    Accepts raw integer nanoseconds, or a number suffixed with
    ``s``/``ms``/``us``/``ns``.
    """
    text = text.strip()
    for suffix, factor in (("ns", 1), ("us", 1_000), ("ms", 1_000_000), ("s", 1_000_000_000)):
        if text.endswith(suffix):
            try:
                return int(float(text[: -len(suffix)]) * factor)
            except ValueError:
                raise ConfigError(f"bad time value {text!r}") from None
    try:
        return int(text)
    except ValueError:
        raise ConfigError(f"bad time value {text!r}") from None
