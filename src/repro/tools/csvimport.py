"""``dcdb-csvimport``: bulk CSV loading into a storage backend.

Paper section 5.2 lists csvimport among the secondary utility tools.
The input format is the query tool's own output (``sensor,time,value``
with nanosecond times), so exports round-trip.

Topics absent from the backend's mapping are allocated SIDs via a
local :class:`~repro.core.sid.SidMapper` seeded from the existing
mapping, so imports compose with live-collected data.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import DCDBError
from repro.core.sid import SensorId, SidMapper
from repro.storage.csv_io import import_csv
from repro.tools.common import open_backend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcdb-csvimport", description="Import CSV sensor data into DCDB storage."
    )
    parser.add_argument("--db", required=True, help="storage URI (sqlite:<path> | memory:)")
    parser.add_argument("csvfile", help="input file, or - for stdin")
    parser.add_argument("--ttl", type=int, default=0, help="TTL seconds for imported rows")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        backend = open_backend(args.db)
        mapper = SidMapper()
        # Seed the mapper with existing topic mappings so re-imports
        # reuse SIDs instead of colliding.
        known: dict[str, SensorId] = {}
        for key in backend.metadata_keys("sidmap"):
            topic = key[len("sidmap") :]
            hex_sid = backend.get_metadata(key)
            if hex_sid:
                known[topic] = SensorId.from_hex(hex_sid)

        def sid_of(name: str) -> SensorId:
            topic = name if name.startswith("/") else "/" + name
            sid = known.get(topic)
            if sid is None:
                sid = mapper.sid_for_topic(topic)
                # Avoid colliding with pre-existing SIDs from another
                # mapper's numbering by linear probing on the last level.
                taken = set(s.value for s in known.values())
                while sid.value in taken:
                    sid = SensorId(sid.value + 1)
                known[topic] = sid
                backend.put_metadata(f"sidmap{topic}", sid.hex())
            return sid

        if args.csvfile == "-":
            count = import_csv(backend, sys.stdin, sid_of, ttl_s=args.ttl)
        else:
            with open(args.csvfile, "r", encoding="utf-8", newline="") as handle:
                count = import_csv(backend, handle, sid_of, ttl_s=args.ttl)
        backend.flush()
        backend.close()
        print(f"imported {count} readings")
        return 0
    except DCDBError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
