"""Command-line tools (paper section 5.2).

* ``dcdb-query`` — time-range sensor queries in CSV, plus integrals,
  derivatives and summaries (:mod:`repro.tools.query`).
* ``dcdb-config`` — sensor properties, virtual-sensor definitions and
  database maintenance (:mod:`repro.tools.config`).
* ``dcdb-csvimport`` — bulk CSV import (:mod:`repro.tools.csvimport`).
* ``dcdb-pusher`` / ``dcdb-collectagent`` — the daemons
  (:mod:`repro.tools.pusherd`, :mod:`repro.tools.agentd`).
* ``dcdb-genplugin`` — plugin skeleton generator
  (:mod:`repro.core.pusher.generator`).

All tools address storage through a URI: ``sqlite:<path>`` for a
file-backed store, ``memory:`` for an in-process scratch store.
"""
