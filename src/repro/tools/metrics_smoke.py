"""``make metrics-smoke``: gate on the /metrics exposition being sane.

Boots a complete in-process pipeline — a Pusher running the tester and
dcdbmon plugins, an InProc hub, a Collect Agent ingesting through the
asynchronous batching writer into a memory backend, and both REST APIs
sharing ONE metrics registry — lets it collect for a few simulated
seconds, then scrapes ``/metrics`` from each API over real HTTP and
validates the Prometheus text with the strict parser.  Exits non-zero
on any malformed exposition, missing instrument kind, missing pipeline
latency histogram, or missing batching-writer instrument, so CI
catches renderer and wiring regressions before a real Prometheus does.

It is also the **docs drift gate**: every ``dcdb_*`` family a component
registers at construction must be named in ``docs/observability.md``'s
instrument catalogue, and every family the docs name must exist at
runtime — so the catalogue cannot silently rot as instruments are
added or renamed.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

from repro.common.httpjson import JsonHttpServer, http_json, http_text
from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent, RollupConfig, WriterConfig
from repro.libdcdb.api import DCDBClient
from repro.core.collectagent.restapi import CollectAgentRestApi
from repro.core.pusher import Pusher, PusherConfig
from repro.core.pusher.restapi import PusherRestApi
from repro.mqtt.broker import MQTTBroker
from repro.mqtt.client import MQTTClient
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.observability import (
    EventLoopLagProbe,
    MetricsRegistry,
    PIPELINE_METRIC,
    parse_prometheus_text,
)
from repro.storage import DurableBackend, MemoryBackend, StorageCluster, StorageNode
from repro.storage.rollup import is_rollup_sid

TESTER_CONFIG = "group g0 { interval 1000\n numSensors 16 }"
DCDBMON_CONFIG = "group self { interval 1000 }"
SIM_SECONDS = 10

#: Batching-writer instruments that must be visible on every scrape.
WRITER_METRICS = (
    "dcdb_writer_queue_depth",
    "dcdb_writer_batch_size",
    "dcdb_writer_flush_duration_seconds",
    "dcdb_writer_readings_dropped_total",
)

#: libDCDB query-path instruments that must be visible on every scrape.
QUERY_METRICS = (
    "dcdb_query_cache_hits_total",
    "dcdb_query_cache_misses_total",
    "dcdb_libdcdb_query_seconds",
)

#: Continuous-aggregation instruments (rollup engine write path plus
#: the query planner's tier-selection counter — see
#: docs/query_performance.md) that must be visible on every scrape.
ROLLUP_METRICS = (
    "dcdb_rollup_readings_observed_total",
    "dcdb_rollup_buckets_written_total",
    "dcdb_rollup_flushes_total",
    "dcdb_rollup_write_errors_total",
    "dcdb_rollup_late_readings_total",
    "dcdb_rollup_retention_deleted_total",
    "dcdb_rollup_tier_selected_total",
)

#: Event-loop transport instruments (broker session/backpressure state
#: and client reconnect counters — see docs/transport.md) that must be
#: visible on every scrape.
TRANSPORT_METRICS = (
    "dcdb_broker_connections",
    "dcdb_broker_keepalive_disconnects_total",
    "dcdb_broker_write_buffer_bytes",
    "dcdb_client_reconnects_total",
    "dcdb_client_qos0_drops_total",
)

#: Durable-engine instruments (write-ahead log and segment files — see
#: docs/durability.md) that must be visible on every scrape when the
#: pipeline ingests into a durable backend.
DURABILITY_METRICS = (
    "dcdb_wal_appends_total",
    "dcdb_wal_bytes_total",
    "dcdb_wal_syncs_total",
    "dcdb_wal_rotations_total",
    "dcdb_wal_replayed_records_total",
    "dcdb_wal_size_bytes",
    "dcdb_segment_files_written_total",
    "dcdb_segment_compactions_total",
    "dcdb_segment_write_errors_total",
    "dcdb_segment_files",
    "dcdb_segment_disk_bytes",
    "dcdb_segment_compression_ratio",
    "dcdb_segment_blocks_pruned_total",
    "dcdb_segment_block_cache_hits_total",
    "dcdb_segment_block_cache_misses_total",
    "dcdb_segment_block_cache_evictions_total",
    "dcdb_segment_block_cache_bytes",
    "dcdb_compaction_runs_total",
    "dcdb_compaction_seconds",
    "dcdb_compaction_backlog",
)


#: The instrument catalogue the gate diffs against.
DOCS_PATH = Path(__file__).resolve().parents[3] / "docs" / "observability.md"

#: Doc-only names that are not metric families (label examples, config
#: keys, or exposition snippets that merely look like families).
_DOC_ALLOWLIST: set[str] = set()


def _runtime_families() -> set[str]:
    """Every ``dcdb_*`` family the components register at construction.

    Instantiates one of each instrumented component into a fresh
    registry (nothing is started — no sockets, no threads) and unions
    the family names, including the per-backend registries a cluster
    scrape would merge in.
    """
    registry = MetricsRegistry()
    hub = InProcHub(metrics=registry)
    InProcClient("drift-inproc", hub, metrics=registry)
    MQTTBroker(port=0, metrics=registry)
    MQTTClient("drift-tcp", host="127.0.0.1", port=1, metrics=registry)
    EventLoopLagProbe(None, registry)
    cluster = StorageCluster(
        [StorageNode("drift-node", metrics=registry)], metrics=registry
    )
    with tempfile.TemporaryDirectory(prefix="dcdb-drift-") as tmp:
        DurableBackend(tmp, name="drift-durable", metrics=registry).close()
    backend = MemoryBackend()
    agent = CollectAgent(
        backend,
        broker=hub,
        writer_config=WriterConfig(),
        rollup_config=RollupConfig(),
        metrics=registry,
    )
    Pusher(
        PusherConfig(mqtt_prefix="/drift/host0"),
        client=InProcClient("drift-pusher", hub, metrics=registry),
        metrics=registry,
    )
    DCDBClient(backend, metrics=registry)
    JsonHttpServer(metrics=registry)
    names: set[str] = set()
    for source in [registry, *cluster.metrics_registries(), *agent.metrics_registries()]:
        for family in source.collect():
            names.add(family.name)
    return names


def _pruning_exercise(failures: list[str]) -> None:
    """Windowed read over a reopened multi-file durable store: footer
    pruning must skip the non-overlapping blocks and the block cache
    must serve the repeat read without decoding again."""
    from repro.core.sid import SensorId

    print("durable read path: block pruning + cache")
    sid = SensorId.from_codes([9, 9])
    with tempfile.TemporaryDirectory(prefix="dcdb-prune-") as tmp:
        seed = DurableBackend(
            tmp, name="prune", fsync="off", max_segment_files=100
        )
        for block in range(4):
            seed.insert_batch(
                [(sid, (block * 100 + i) * NS_PER_SEC, i, 0) for i in range(100)]
            )
            seed.flush()
        seed.close()
        store = DurableBackend(
            tmp, name="prune", fsync="off", max_segment_files=100
        )
        label = {"node": "prune"}
        ts, _ = store.query(sid, 0, 99 * NS_PER_SEC)  # first file only
        pruned = store.metrics.value("dcdb_segment_blocks_pruned_total", label)
        misses = store.metrics.value("dcdb_segment_block_cache_misses_total", label)
        _check(ts.size == 100, f"windowed read returned its block ({ts.size} rows)", failures)
        _check(
            pruned == 3,
            f"footer bounds pruned the non-overlapping blocks ({pruned:g}/3)",
            failures,
        )
        _check(misses >= 1, f"cold block decoded through the cache ({misses:g} misses)", failures)
        store.query(sid, 0, 99 * NS_PER_SEC)
        hits = store.metrics.value("dcdb_segment_block_cache_hits_total", label)
        _check(
            store.metrics.value("dcdb_segment_block_cache_misses_total", label) == misses,
            "repeat read decoded nothing new",
            failures,
        )
        _check(hits >= 1, f"repeat read served from the block cache ({hits:g} hits)", failures)
        store.close()


def _drift_gate(failures: list[str]) -> None:
    """Diff the runtime family set against the documented catalogue."""
    print(f"docs drift gate: {DOCS_PATH}")
    if not DOCS_PATH.is_file():
        failures.append(f"docs file missing: {DOCS_PATH}")
        print("  [FAIL] docs/observability.md not found")
        return
    documented = set(
        re.findall(r"dcdb_[a-z0-9_]+", DOCS_PATH.read_text(encoding="utf-8"))
    )
    runtime = _runtime_families()
    undocumented = sorted(runtime - documented)
    stale = sorted(documented - runtime - _DOC_ALLOWLIST)
    _check(
        not undocumented,
        f"every runtime family is documented (missing: {undocumented})",
        failures,
    )
    _check(
        not stale,
        f"every documented family exists at runtime (stale: {stale})",
        failures,
    )


def _check(condition: bool, message: str, failures: list[str]) -> None:
    status = "ok " if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def _scrape(name: str, port: int, failures: list[str]) -> None:
    url = f"http://127.0.0.1:{port}/metrics"
    status, text, content_type = http_text("GET", url)
    print(f"{name}: GET {url}")
    _check(status == 200, f"{name}: HTTP 200 (got {status})", failures)
    _check(
        content_type.startswith("text/plain"),
        f"{name}: text/plain content type (got {content_type!r})",
        failures,
    )
    try:
        families = parse_prometheus_text(text)
    except ValueError as exc:
        failures.append(f"{name}: malformed exposition: {exc}")
        print(f"  [FAIL] exposition parses ({exc})")
        return
    kinds = {meta["type"] for meta in families.values()}
    _check(
        {"counter", "gauge", "histogram"} <= kinds,
        f"{name}: has a counter, gauge and histogram (got {sorted(kinds)})",
        failures,
    )
    pipeline = families.get(PIPELINE_METRIC)
    _check(
        pipeline is not None and pipeline["type"] == "histogram",
        f"{name}: {PIPELINE_METRIC} histogram present",
        failures,
    )
    _check(
        all(metric in families for metric in WRITER_METRICS),
        f"{name}: batching-writer instruments present",
        failures,
    )
    _check(
        all(metric in families for metric in QUERY_METRICS),
        f"{name}: libDCDB query-cache instruments present",
        failures,
    )
    _check(
        all(metric in families for metric in TRANSPORT_METRICS),
        f"{name}: transport instruments present",
        failures,
    )
    _check(
        all(metric in families for metric in ROLLUP_METRICS),
        f"{name}: rollup/tier-planner instruments present",
        failures,
    )
    _check(
        all(metric in families for metric in DURABILITY_METRICS),
        f"{name}: WAL/segment durability instruments present",
        failures,
    )
    json_status, doc = http_json("GET", f"{url}?format=json")
    _check(
        json_status == 200 and isinstance(doc, dict) and PIPELINE_METRIC in doc,
        f"{name}: ?format=json mirror works",
        failures,
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="dcdb-smoke-") as data_dir:
        return _run(data_dir)


def _run(data_dir: str) -> int:
    clock = SimClock(0)
    # One registry for hub, agent, writer and pusher: both REST APIs
    # then expose the complete pipeline, including writer metrics.
    registry = MetricsRegistry()
    hub = InProcHub(allow_subscribe=False, metrics=registry)
    # The smoke pipeline ingests into the durable engine so the
    # WAL/segment instruments carry real traffic on both endpoints.
    backend = DurableBackend(data_dir, name="smoke-durable", metrics=registry)
    agent = CollectAgent(
        backend,
        broker=hub,
        writer_config=WriterConfig(max_batch=256),
        rollup_config=RollupConfig(),
    )
    pusher = Pusher(
        PusherConfig(mqtt_prefix="/smoke/host0"),
        client=InProcClient("smoke-pusher", hub, metrics=registry),
        clock=clock,
        metrics=registry,
    )
    pusher.load_plugin("tester", TESTER_CONFIG)
    pusher.load_plugin("dcdbmon", DCDBMON_CONFIG)
    pusher.client.connect()
    pusher.start_plugin("tester")
    pusher.start_plugin("dcdbmon")
    pusher.advance_to(SIM_SECONDS * NS_PER_SEC)

    failures: list[str] = []
    _check(pusher.readings_collected > 0, "pusher collected readings", failures)
    _check(agent.readings_stored > 0, "agent accepted readings", failures)
    _check(agent.writer.drain(), "staging queue drained", failures)
    # Rollup series ride along in the same store; the durability check
    # is about the raw readings the agent accepted.
    stored = sum(
        backend.count(sid, 0, (1 << 63) - 1)
        for sid in backend.sids()
        if not is_rollup_sid(sid)
    )
    _check(
        stored == agent.readings_stored,
        "every accepted reading is durable after drain "
        f"({stored}/{agent.readings_stored})",
        failures,
    )
    # Exercise the libDCDB read path on the shared registry: a repeat
    # query must be served from the raw-series cache, so both /metrics
    # endpoints expose non-trivial hit/miss counters.
    client = DCDBClient(backend, metrics=registry)
    topics = client.topics()
    _check(bool(topics), "libDCDB resolves collected topics", failures)
    if topics:
        span = (0, SIM_SECONDS * NS_PER_SEC)
        client.query(topics[0], *span)
        client.query(topics[0], *span)
        hits = registry.counter("dcdb_query_cache_hits_total").value
        _check(hits >= 1, f"raw-series cache served a repeat query ({hits} hits)", failures)
        # Exercise the tier-aware planner: the rollup engine sealed the
        # 10s buckets at ingest, so a coarse aggregate over the sealed
        # span must be tier-served (not a raw fallback).  The window is
        # inclusive, so it ends one tick before the bucket boundary —
        # overhanging the grid would need max_points + 1 buckets and
        # correctly falls back to raw.
        client.query_aggregate(
            topics[0], 0, SIM_SECONDS * NS_PER_SEC - 1, "avg", max_points=1
        )
        tiers = {}
        for family in registry.collect():
            if family.name == "dcdb_rollup_tier_selected_total":
                for sample in family.samples:
                    tiers[dict(sample.labels)["tier"]] = sample.value
        _check(
            sum(v for t, v in tiers.items() if t != "raw") >= 1,
            f"aggregate query was tier-served (selections: {tiers})",
            failures,
        )
        written = sum(
            sample.value
            for family in registry.collect()
            if family.name == "dcdb_rollup_buckets_written_total"
            for sample in family.samples
        )
        _check(
            written > 0, f"rollup engine wrote sealed buckets ({written:g})", failures
        )
    with PusherRestApi(pusher) as pusher_api, CollectAgentRestApi(agent) as agent_api:
        _scrape("pusher", pusher_api.port, failures)
        _scrape("agent", agent_api.port, failures)
    agent.stop()
    backend.close()
    _pruning_exercise(failures)
    _drift_gate(failures)

    if failures:
        print(f"metrics smoke: {len(failures)} check(s) FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("metrics smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
