"""``dcdb-query``: sensor data retrieval in CSV.

Paper section 5.2: "The query tool then allows users to obtain sensor
data for a specified time period in CSV format or perform basic
analysis tasks on the data such as integrals or derivatives."

Examples::

    dcdb-query --db sqlite:monitor.db /hpc/r0/n0/power/s0 \
        --start 0s --end 3600s
    dcdb-query --db sqlite:monitor.db /virtual/total_power \
        --start 0s --end 3600s --integral
    dcdb-query --db sqlite:monitor.db /hpc/r0/n0/energy \
        --start 0s --end 3600s --derivative --unit W
    dcdb-query --db sqlite:monitor.db --list /hpc
"""

from __future__ import annotations

import argparse
import csv
import sys

from repro.common.errors import DCDBError
from repro.libdcdb.analysis import derivative, integral, summary
from repro.libdcdb.api import DCDBClient
from repro.tools.common import open_backend, parse_time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcdb-query", description="Query DCDB sensor data as CSV."
    )
    parser.add_argument("--db", required=True, help="storage URI (sqlite:<path> | memory:)")
    parser.add_argument("topics", nargs="*", help="sensor topics or virtual sensor names")
    parser.add_argument("--start", default="0", help="range start (e.g. 0s, 1500ms, raw ns)")
    parser.add_argument("--end", default=str((1 << 62)), help="range end")
    parser.add_argument("--unit", default=None, help="convert output to this unit")
    parser.add_argument("--list", metavar="PREFIX", default=None, help="list topics below a prefix and exit")
    parser.add_argument(
        "--max-points",
        type=int,
        default=1000,
        help="bucket budget for --aggregate (default 1000)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--integral", action="store_true", help="print the time integral (value*seconds)")
    mode.add_argument("--derivative", action="store_true", help="print the finite-difference rate series")
    mode.add_argument("--summary", action="store_true", help="print min/max/mean/std instead of rows")
    mode.add_argument(
        "--aggregate",
        choices=("avg", "min", "max", "sum", "count"),
        default=None,
        help="per-bucket aggregate via the tier-aware planner (rollups when covered)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        backend = open_backend(args.db)
        client = DCDBClient(backend)
        if args.list is not None:
            for topic in client.topics(args.list):
                print(topic)
            return 0
        if not args.topics:
            print("error: no topics given (or use --list)", file=sys.stderr)
            return 2
        start = parse_time(args.start)
        end = parse_time(args.end)
        writer = csv.writer(sys.stdout)
        if args.integral:
            writer.writerow(("sensor", "integral"))
        elif args.summary:
            writer.writerow(("sensor", "count", "min", "max", "mean", "std"))
        else:
            writer.writerow(("sensor", "time", "value"))
        if args.aggregate is not None:
            for topic in args.topics:
                timestamps, values = client.query_aggregate(
                    topic, start, end, args.aggregate, args.max_points, args.unit
                )
                for t, v in zip(timestamps.tolist(), values.tolist()):
                    writer.writerow((topic, t, v))
            backend.close()
            return 0
        if len(args.topics) > 1:
            # One batched storage read covers every concrete topic;
            # the per-topic queries below then hit the raw cache.
            client.prefetch_raw(args.topics, start, end)
        for topic in args.topics:
            timestamps, values = client.query(topic, start, end, unit=args.unit)
            if args.integral:
                writer.writerow((topic, integral(timestamps, values)))
            elif args.derivative:
                d_ts, d_vals = derivative(timestamps, values)
                for t, v in zip(d_ts.tolist(), d_vals.tolist()):
                    writer.writerow((topic, t, v))
            elif args.summary:
                s = summary(timestamps, values)
                writer.writerow((topic, s.count, s.minimum, s.maximum, s.mean, s.std))
            else:
                for t, v in zip(timestamps.tolist(), values.tolist()):
                    writer.writerow((topic, t, v))
        backend.close()
        return 0
    except DCDBError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
