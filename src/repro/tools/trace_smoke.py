"""``make trace-smoke``: gate on end-to-end trace propagation.

Boots a small :class:`~repro.simulation.simcluster.SimulatedCluster`
with tracing on, steps it a few simulated seconds, then asserts that a
complete distributed trace — collect, publish, dispatch, insert and
commit spans, at least five in one trace — is retrievable through the
Collect Agent's ``GET /traces`` endpoint over real HTTP, and that
``GET /health`` answers 200 for the healthy pipeline.  Exits non-zero
if any hop dropped its span, so CI catches broken context propagation
(a component that stops honoring the wire trace header) immediately.
"""

from __future__ import annotations

import sys

from repro.common.httpjson import http_json
from repro.core.collectagent.restapi import CollectAgentRestApi
from repro.simulation.simcluster import SimClusterConfig, SimulatedCluster

#: Every hop of the pipeline must contribute a span to a traced reading.
REQUIRED_SPANS = {"collect", "publish", "dispatch", "insert", "commit"}


def _check(condition: bool, message: str, failures: list[str]) -> None:
    status = "ok " if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def main() -> int:
    sim = SimulatedCluster(
        SimClusterConfig(
            hosts=2,
            sensors_per_host=4,
            interval_ms=1000,
            trace_sample_every=1,
        )
    )
    failures: list[str] = []
    try:
        stored = sim.run(3)
        _check(stored > 0, f"pipeline stored readings ({stored})", failures)
        with CollectAgentRestApi(sim.agent) as api:
            base = f"http://127.0.0.1:{api.port}"
            status, traces = http_json("GET", f"{base}/traces?limit=50")
            _check(status == 200, f"/traces answers 200 (got {status})", failures)
            _check(
                isinstance(traces, list) and len(traces) > 0,
                f"/traces returned traces ({len(traces) if isinstance(traces, list) else traces})",
                failures,
            )
            complete = None
            if isinstance(traces, list):
                for trace in traces:
                    names = {span["name"] for span in trace.get("spans", ())}
                    if REQUIRED_SPANS <= names and trace["spanCount"] >= 5:
                        complete = trace
                        break
            _check(
                complete is not None,
                f"some trace has >= 5 spans covering {sorted(REQUIRED_SPANS)}",
                failures,
            )
            if complete is not None:
                print(
                    f"       trace {complete['traceId']}: "
                    + " -> ".join(span["name"] for span in complete["spans"])
                )
            status, health = http_json("GET", f"{base}/health")
            _check(
                status == 200 and health.get("status") == "ok",
                f"/health reports ok (got {status} {health!r})",
                failures,
            )
    finally:
        sim.stop()

    if failures:
        print(f"trace smoke: {len(failures)} check(s) FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("trace smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
