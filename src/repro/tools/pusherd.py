"""``dcdb-pusher``: the Pusher daemon.

Runs a Pusher from a global configuration file, mirroring DCDB's
``dcdbpusher <config>``.  Configuration::

    global {
        mqttPrefix   /lrz/sys/rack0/node0
        brokerHost   127.0.0.1
        brokerPort   1883
        transport    tcp            ; tcp | inproc (see docs/transport.md)
        threads      2
        sendMode     continuous     ; or burst
        qos          0
        restPort     8000           ; 0 disables the REST API
        cacheInterval 120000        ; ms
        traceSampleEvery 1          ; trace 1-in-N readings (0 = off)
        logFormat    plain          ; plain | json (structured one-line JSON)
    }
    plugin tester {
        config {
            group g0 { interval 1000
                       numSensors 100 }
        }
    }
    plugin procfs {
        configFile /etc/dcdb/procfs.conf
    }

Each ``plugin`` block either inlines its configuration under
``config`` or points at a separate file via ``configFile`` (DCDB's
layout).  Runs until interrupted.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.common.errors import DCDBError
from repro.common.proptree import PropertyTree, dump_info, parse_info
from repro.core.pusher.pusher import Pusher, PusherConfig
from repro.core.pusher.restapi import PusherRestApi
from repro.observability import configure_json_logging


def configure_logging(global_cfg: PropertyTree, component: str) -> None:
    """Honor the ``logFormat`` config key (shared by both daemons)."""
    if global_cfg.get("logFormat", "plain").lower() == "json":
        configure_json_logging(component)


def pusher_from_config(tree: PropertyTree) -> tuple[Pusher, PusherRestApi | None]:
    """Build a Pusher (and optional REST API) from a parsed config."""
    global_cfg = tree.child("global")
    if global_cfg is None:
        global_cfg = PropertyTree()
    configure_logging(global_cfg, "pusher")
    config = PusherConfig(
        mqtt_prefix=global_cfg.get("mqttPrefix", "/test/host0"),
        broker_host=global_cfg.get("brokerHost", "127.0.0.1"),
        broker_port=global_cfg.get_int("brokerPort", 1883),
        transport=global_cfg.get("transport", "tcp"),
        qos=global_cfg.get_int("qos", 0),
        threads=global_cfg.get_int("threads", 2),
        send_mode=global_cfg.get("sendMode", "continuous"),
        cache_interval_ms=global_cfg.get_int("cacheInterval", 120_000),
        trace_sample_every=global_cfg.get_int("traceSampleEvery", 1),
    )
    pusher = Pusher(config)
    for _key, node in tree.children("plugin"):
        name = node.value
        inline = node.child("config")
        config_file = node.get("configFile")
        if inline is not None:
            pusher.load_plugin(name, inline, plugin_alias=node.get("alias", name))
        elif config_file is not None:
            with open(config_file, "r", encoding="utf-8") as handle:
                pusher.load_plugin(
                    name, handle.read(), plugin_alias=node.get("alias", name)
                )
        else:
            raise DCDBError(f"plugin {name!r} has neither config nor configFile")
    rest_port = global_cfg.get_int("restPort", 0)
    rest = PusherRestApi(pusher, port=rest_port) if rest_port else None
    return pusher, rest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="dcdb-pusher", description="Run a DCDB Pusher.")
    parser.add_argument("config", help="global configuration file")
    parser.add_argument(
        "--dump", action="store_true", help="print the parsed configuration and exit"
    )
    args = parser.parse_args(argv)
    try:
        with open(args.config, "r", encoding="utf-8") as handle:
            tree = parse_info(handle.read())
        if args.dump:
            print(dump_info(tree))
            return 0
        pusher, rest = pusher_from_config(tree)
        for alias in list(pusher.plugins):
            pusher.start_plugin(alias)
        pusher.start()
        if rest is not None:
            rest.start()
            print(f"REST API on port {rest.port}", file=sys.stderr)
        print(
            f"pusher running: {pusher.sensor_count} sensors, prefix "
            f"{pusher.config.mqtt_prefix}",
            file=sys.stderr,
        )
        stop = threading.Event()
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        stop.wait()
        if rest is not None:
            rest.stop()
        pusher.stop()
        return 0
    except (DCDBError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
