"""``dcdb-collectagent``: the Collect Agent daemon.

Runs a Collect Agent from a configuration file, mirroring DCDB's
``collectagent <config>``.  Configuration::

    global {
        mqttHost   127.0.0.1
        mqttPort   1883
        transport  tcp           ; tcp | inproc (see docs/transport.md)
        restPort   8080          ; 0 disables the REST API
        db         sqlite:/var/lib/dcdb/monitor.db
                                 ; or durable:/var/lib/dcdb?fsync=interval
                                 ; (WAL + segments, docs/durability.md)
        ttl        0             ; seconds, 0 = keep forever
        cacheInterval 120000     ; ms
        batching      false      ; asynchronous batched ingest path
        batchSize     4096       ; readings per coalesced flush
        batchDelayMs  50         ; max staging age before a flush
        queueCapacity 65536      ; staging queue bound (readings)
        backpressure  block      ; block | drop-oldest | error
        writerThreads 1          ; dedicated flush threads
        traceSampleEvery 1       ; trace 1-in-N headerless messages (0 = off)
        logFormat     plain      ; plain | json (structured one-line JSON)
        rollups       false      ; continuous aggregation tiers
        rollupTtl     0          ; seconds, TTL on rollup rows
        rawHorizon    0          ; seconds before raw rows demote to rollups
        tierHorizons  0,0,0      ; per-tier horizons, finest first
    }

Runs until interrupted; drains the staging queue (when batching) and
flushes storage on shutdown.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.common.errors import DCDBError
from repro.common.proptree import PropertyTree, parse_info
from repro.common.timeutil import NS_PER_MS
from repro.core.collectagent.agent import CollectAgent
from repro.core.collectagent.restapi import CollectAgentRestApi
from repro.core.collectagent.writer import WriterConfig
from repro.storage.rollup import RetentionPolicy, RollupConfig
from repro.tools.common import open_backend
from repro.tools.pusherd import configure_logging


def agent_from_config(tree: PropertyTree) -> tuple[CollectAgent, CollectAgentRestApi | None]:
    """Build a Collect Agent (and optional REST API) from a config.

    An ``analytics`` block (or ``analyticsConfig <file>`` in
    ``global``) attaches a configured streaming-analytics manager; the
    manager is exposed as ``agent.analytics``.
    """
    global_cfg = tree.child("global")
    if global_cfg is None:
        global_cfg = PropertyTree()
    configure_logging(global_cfg, "collectagent")
    backend = open_backend(global_cfg.get("db", "memory:"))
    writer_config = None
    if global_cfg.get_bool("batching", False):
        writer_config = WriterConfig(
            max_batch=global_cfg.get_int("batchSize", 4096),
            max_delay_ns=global_cfg.get_int("batchDelayMs", 50) * NS_PER_MS,
            queue_capacity=global_cfg.get_int("queueCapacity", 65_536),
            policy=global_cfg.get("backpressure", "block"),
            writers=global_cfg.get_int("writerThreads", 1),
        )
    rollup_config = None
    if global_cfg.get_bool("rollups", False):
        horizons = tuple(
            int(h) for h in global_cfg.get("tierHorizons", "0,0,0").split(",")
        )
        retention = RetentionPolicy(
            raw_horizon_s=global_cfg.get_int("rawHorizon", 0),
            tier_horizons_s=horizons,
        )
        if retention.raw_horizon_s == 0 and not any(horizons):
            retention = None
        rollup_config = RollupConfig(
            ttl_s=global_cfg.get_int("rollupTtl", 0), retention=retention
        )
    agent = CollectAgent(
        backend,
        host=global_cfg.get("mqttHost", "127.0.0.1"),
        port=global_cfg.get_int("mqttPort", 1883),
        cache_maxage_ns=global_cfg.get_int("cacheInterval", 120_000) * NS_PER_MS,
        default_ttl_s=global_cfg.get_int("ttl", 0),
        writer_config=writer_config,
        rollup_config=rollup_config,
        transport=global_cfg.get("transport", "tcp"),
        trace_sample_every=global_cfg.get_int("traceSampleEvery", 1),
    )
    analytics_tree = tree.child("analytics")
    analytics_file = global_cfg.get("analyticsConfig")
    if analytics_tree is not None or analytics_file:
        from repro.analytics.config import manager_from_config

        if analytics_tree is not None:
            manager = manager_from_config(analytics_tree)
        else:
            with open(analytics_file, "r", encoding="utf-8") as handle:
                manager = manager_from_config(handle.read())
        manager.attach_to_agent(agent)
        agent.analytics = manager
    rest_port = global_cfg.get_int("restPort", 0)
    rest = CollectAgentRestApi(agent, port=rest_port) if rest_port else None
    return agent, rest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dcdb-collectagent", description="Run a DCDB Collect Agent."
    )
    parser.add_argument("config", help="configuration file")
    args = parser.parse_args(argv)
    try:
        with open(args.config, "r", encoding="utf-8") as handle:
            tree = parse_info(handle.read())
        agent, rest = agent_from_config(tree)
        agent.start()
        if rest is not None:
            rest.start()
            print(f"REST API on port {rest.port}", file=sys.stderr)
        print(f"collect agent listening on MQTT port {agent.port}", file=sys.stderr)
        stop = threading.Event()
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        stop.wait()
        if rest is not None:
            rest.stop()
        agent.stop()
        agent.backend.close()
        return 0
    except (DCDBError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
