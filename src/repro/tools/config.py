"""``dcdb-config``: database and sensor administration.

Paper section 5.2: "the config tool allows administrators to perform
basic database management tasks (e.g., deleting old data or
compacting) as well as configuring the properties of sensors such as
units and scaling factors or defining virtual sensors."

Subcommands::

    dcdb-config --db URI sensor list [PREFIX]
    dcdb-config --db URI sensor show TOPIC
    dcdb-config --db URI sensor set TOPIC --unit W --scale 1000 [--integrable]
    dcdb-config --db URI vsensor list
    dcdb-config --db URI vsensor add NAME EXPR --unit W --interval-ms 1000
    dcdb-config --db URI vsensor delete NAME
    dcdb-config --db URI db compact
    dcdb-config --db URI db deleteolder TOPIC CUTOFF
    dcdb-config --db URI db retention --raw-horizon 2592000 \
        [--tier-horizons 604800,2592000,0]
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import DCDBError
from repro.common.timeutil import NS_PER_MS
from repro.libdcdb.api import DCDBClient
from repro.libdcdb.virtualsensors import VirtualSensorDef
from repro.storage.rollup import RetentionPolicy, RollupEngine, coverage_key
from repro.tools.common import open_backend, parse_time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcdb-config", description="Administer a DCDB storage backend."
    )
    parser.add_argument("--db", required=True, help="storage URI (sqlite:<path> | memory:)")
    sub = parser.add_subparsers(dest="domain", required=True)

    sensor = sub.add_parser("sensor", help="sensor properties")
    sensor_sub = sensor.add_subparsers(dest="action", required=True)
    sensor_list = sensor_sub.add_parser("list")
    sensor_list.add_argument("prefix", nargs="?", default="")
    sensor_show = sensor_sub.add_parser("show")
    sensor_show.add_argument("topic")
    sensor_set = sensor_sub.add_parser("set")
    sensor_set.add_argument("topic")
    sensor_set.add_argument("--unit", default=None)
    sensor_set.add_argument("--scale", type=float, default=None)
    sensor_set.add_argument("--integrable", action="store_true")
    sensor_set.add_argument("--ttl", type=int, default=None, help="seconds")

    vsensor = sub.add_parser("vsensor", help="virtual sensors")
    vsensor_sub = vsensor.add_subparsers(dest="action", required=True)
    vsensor_sub.add_parser("list")
    vsensor_add = vsensor_sub.add_parser("add")
    vsensor_add.add_argument("name")
    vsensor_add.add_argument("expression")
    vsensor_add.add_argument("--unit", default="count")
    vsensor_add.add_argument("--interval-ms", type=int, default=1000)
    vsensor_add.add_argument("--scale", type=float, default=1000.0)
    vsensor_delete = vsensor_sub.add_parser("delete")
    vsensor_delete.add_argument("name")

    db = sub.add_parser("db", help="database maintenance")
    db_sub = db.add_subparsers(dest="action", required=True)
    db_sub.add_parser("compact")
    db_delete = db_sub.add_parser("deleteolder")
    db_delete.add_argument("topic")
    db_delete.add_argument("cutoff", help="delete readings older than this time")
    db_retention = db_sub.add_parser(
        "retention", help="catch up rollups and demote aged raw data"
    )
    db_retention.add_argument(
        "--raw-horizon",
        type=int,
        default=0,
        help="delete raw readings older than this many seconds (0 = keep)",
    )
    db_retention.add_argument(
        "--tier-horizons",
        default=None,
        help="comma-separated per-tier horizons in seconds, finest first",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        backend = open_backend(args.db)
        client = DCDBClient(backend)
        if args.domain == "sensor":
            if args.action == "list":
                for topic in client.topics(args.prefix):
                    print(topic)
            elif args.action == "show":
                config = client.sensor_config(args.topic)
                print(f"topic      {config.topic}")
                print(f"unit       {config.unit}")
                print(f"scale      {config.scale}")
                print(f"integrable {config.integrable}")
                print(f"ttl_s      {config.ttl_s}")
            elif args.action == "set":
                config = client.sensor_config(args.topic)
                if args.unit is not None:
                    config.unit = args.unit
                if args.scale is not None:
                    config.scale = args.scale
                if args.integrable:
                    config.integrable = True
                if args.ttl is not None:
                    config.ttl_s = args.ttl
                client.set_sensor_config(config)
                print(f"updated {args.topic}")
        elif args.domain == "vsensor":
            if args.action == "list":
                for vdef in client.virtual_sensors():
                    print(f"{vdef.name}\t{vdef.unit}\t{vdef.expression}")
            elif args.action == "add":
                client.define_virtual_sensor(
                    VirtualSensorDef(
                        name=args.name,
                        expression=args.expression,
                        unit=args.unit,
                        interval_ns=args.interval_ms * NS_PER_MS,
                        scale=args.scale,
                    )
                )
                print(f"defined virtual sensor {args.name}")
            elif args.action == "delete":
                client.delete_virtual_sensor(args.name)
                print(f"deleted virtual sensor {args.name}")
        elif args.domain == "db":
            if args.action == "compact":
                backend.compact()
                print("compaction complete")
            elif args.action == "deleteolder":
                removed = client.delete_before(args.topic, parse_time(args.cutoff))
                print(f"removed {removed} readings")
            elif args.action == "retention":
                horizons = (
                    tuple(int(h) for h in args.tier_horizons.split(","))
                    if args.tier_horizons
                    else (0, 0, 0)
                )
                policy = RetentionPolicy(
                    raw_horizon_s=args.raw_horizon, tier_horizons_s=horizons
                )
                engine = RollupEngine(backend)
                # Seed the engine so a cold CLI process catches up
                # before demoting.  Sensors with a persisted coverage
                # document resume from it and only need the newest
                # reading to seal the remainder.  Sensors without one
                # (rollups never ran) are seeded from their OLDEST
                # reading too, anchoring every tier at the start of
                # the series so the whole history is rolled up —
                # anchoring at the newest reading would seal nothing
                # while the demotion guard still reads as caught-up,
                # silently deleting raw data no rollup has absorbed.
                finest = engine.config.tiers[0].label
                for topic in client.topics(""):
                    if topic.startswith("/virtual/"):
                        continue
                    sid = client.sid_of(topic)
                    newest = backend.latest(sid)
                    if newest is None:
                        continue
                    seed = [(sid, newest[0], newest[1], 0)]
                    if not backend.get_metadata(coverage_key(sid, finest)):
                        oldest = backend.oldest(sid)
                        if oldest is not None and oldest[0] != newest[0]:
                            seed.insert(0, (sid, oldest[0], oldest[1], 0))
                    engine.observe(seed)
                removed = engine.apply_retention(policy)
                for kind, count in removed.items():
                    print(f"{kind}: removed {count} readings")
        backend.flush()
        backend.close()
        return 0
    except DCDBError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
