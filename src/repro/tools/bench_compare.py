"""``make bench-compare``: diff a benchmark run against the committed
baselines.

The repo commits one pytest-benchmark JSON per suite (``BENCH_*.json``,
refreshed by ``make bench-baseline``) so performance regressions show
up as a reviewable diff.  This tool closes the loop in CI:

* **Compare mode** (default): given one or more fresh
  ``--benchmark-json`` files, match every benchmark by ``fullname``
  against the committed baselines and fail when a gated stat regresses
  by more than ``--threshold`` (25% by default).  Gated stats are the
  best-of-rounds wall time (``stats.min`` — the least noisy of the
  recorded aggregates) and the machine-independent ``extra_info``
  ratios the suites record (``*_speedup_x`` and ``*_ratio`` must not
  drop, ``*_overhead_x`` must not grow).
* **Check mode** (``--check``): no benchmarks are run.  Validates that
  every committed baseline parses, carries stats, and names only
  benchmarks that still collect from ``benchmarks/`` — so a renamed or
  deleted benchmark cannot leave a silently stale baseline.  Cheap
  enough to ride along with every ``make test``.

Exit status is non-zero on any regression or staleness, with one
``[FAIL]`` line per finding.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

#: Fraction by which a gated stat may regress before the diff fails.
DEFAULT_THRESHOLD = 0.25

#: ``extra_info`` keys are compared by suffix: ratios where bigger is
#: better versus overheads where smaller is better.  Anything else
#: (row counts, recorded gate constants) is informational only.
_HIGHER_IS_BETTER = ("_speedup_x", "_ratio")
_LOWER_IS_BETTER = ("_overhead_x",)


def _load(path: Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def _baseline_files(baseline_dir: Path) -> list[Path]:
    return sorted(baseline_dir.glob("BENCH_*.json"))


def _index(doc: dict) -> dict[str, dict]:
    return {b["fullname"]: b for b in doc.get("benchmarks", [])}


def _info_direction(key: str) -> str | None:
    if any(key.endswith(sfx) for sfx in _HIGHER_IS_BETTER):
        return "higher"
    if any(key.endswith(sfx) for sfx in _LOWER_IS_BETTER):
        return "lower"
    return None


def _compare_one(
    name: str, base: dict, fresh: dict, threshold: float, failures: list[str]
) -> None:
    base_min = base.get("stats", {}).get("min")
    fresh_min = fresh.get("stats", {}).get("min")
    if base_min and fresh_min:
        ratio = fresh_min / base_min
        verdict = "ok " if ratio <= 1.0 + threshold else "FAIL"
        print(
            f"  [{verdict}] {name}: min {fresh_min * 1e3:.2f} ms vs "
            f"baseline {base_min * 1e3:.2f} ms ({ratio:.2f}x)"
        )
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: wall time regressed {ratio:.2f}x "
                f"(threshold {1.0 + threshold:.2f}x)"
            )
    for key, base_val in (base.get("extra_info") or {}).items():
        direction = _info_direction(key)
        fresh_val = (fresh.get("extra_info") or {}).get(key)
        if direction is None or not isinstance(base_val, (int, float)):
            continue
        if not isinstance(fresh_val, (int, float)) or not base_val:
            continue
        if direction == "higher":
            bad = fresh_val < base_val * (1.0 - threshold)
            arrow = "dropped"
        else:
            bad = fresh_val > base_val * (1.0 + threshold)
            arrow = "grew"
        verdict = "FAIL" if bad else "ok "
        print(
            f"  [{verdict}] {name}: {key} {fresh_val} vs baseline {base_val}"
        )
        if bad:
            failures.append(
                f"{name}: {key} {arrow} to {fresh_val} from the "
                f"committed {base_val} (threshold {threshold:.0%})"
            )


def compare(
    fresh_paths: list[Path], baseline_dir: Path, threshold: float
) -> list[str]:
    failures: list[str] = []
    baselines: dict[str, dict] = {}
    for path in _baseline_files(baseline_dir):
        baselines.update(_index(_load(path)))
    if not baselines:
        return [f"no BENCH_*.json baselines under {baseline_dir}"]
    fresh: dict[str, dict] = {}
    for path in fresh_paths:
        fresh.update(_index(_load(path)))
    matched = sorted(set(fresh) & set(baselines))
    print(
        f"bench compare: {len(matched)} benchmark(s) matched against "
        f"{len(baselines)} baseline entries"
    )
    if not matched:
        return ["fresh run shares no benchmarks with the committed baselines"]
    for name in matched:
        _compare_one(name, baselines[name], fresh[name], threshold, failures)
    unbaselined = sorted(set(fresh) - set(baselines))
    for name in unbaselined:
        print(f"  [new ] {name}: no committed baseline (run make bench-baseline)")
    return failures


def check(baseline_dir: Path, benchmarks_dir: Path) -> list[str]:
    """Structural smoke: baselines parse and match the live suite."""
    failures: list[str] = []
    paths = _baseline_files(baseline_dir)
    if not paths:
        return [f"no BENCH_*.json baselines under {baseline_dir}"]
    env = dict(os.environ)
    src = baseline_dir / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    # -o addopts= neutralizes the project-wide -q so a single -q here
    # yields one nodeid per line (with addopts stacking it becomes -qq,
    # which prints only per-file counts).
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only",
         "-o", "addopts=", "-q", str(benchmarks_dir)],
        capture_output=True,
        text=True,
        cwd=baseline_dir,
        env=env,
    )
    collected = {
        line.strip()
        for line in proc.stdout.splitlines()
        if "::" in line and not line.startswith(("=", "<"))
    }
    if proc.returncode != 0 or not collected:
        return [
            "pytest --collect-only failed over "
            f"{benchmarks_dir}:\n{proc.stdout}\n{proc.stderr}"
        ]
    for path in paths:
        try:
            entries = _load(path).get("benchmarks", [])
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"{path.name}: unreadable baseline ({exc})")
            continue
        if not entries:
            failures.append(f"{path.name}: baseline records no benchmarks")
            continue
        for bench in entries:
            name = bench.get("fullname", "<missing fullname>")
            if name not in collected:
                failures.append(
                    f"{path.name}: baseline entry {name!r} no longer "
                    "collects — refresh with make bench-baseline"
                )
            elif not bench.get("stats", {}).get("min"):
                failures.append(f"{path.name}: {name} has no stats.min")
            else:
                print(f"  [ok ] {path.name}: {name}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh",
        nargs="*",
        type=Path,
        help="fresh --benchmark-json file(s) to diff against the baselines",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path(__file__).resolve().parents[3],
        help="directory holding the committed BENCH_*.json files "
        "(default: the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional regression before failing (default 0.25)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="structural smoke only: validate the committed baselines "
        "against the collected benchmark suite (no timing diff)",
    )
    args = parser.parse_args(argv)
    baseline_dir = args.baseline_dir.resolve()
    if args.check:
        print(f"bench baselines check: {baseline_dir}")
        failures = check(baseline_dir, baseline_dir / "benchmarks")
    elif not args.fresh:
        parser.error("pass fresh benchmark JSON file(s) or --check")
    else:
        failures = compare(args.fresh, baseline_dir, args.threshold)
    for failure in failures:
        print(f"  [FAIL] {failure}")
    if failures:
        print(f"bench compare: {len(failures)} failure(s)")
        return 1
    print("bench compare: all gated stats within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
