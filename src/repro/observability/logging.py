"""Structured JSON logging with component and trace-ID correlation.

Diagnostics that mention a trace ID are only useful if logs carry the
same ID: a slow-flush warning with ``traceId`` can be joined against
``/traces`` output and the exemplars on the latency histograms.  This
module provides a :class:`JsonFormatter` that renders every record as
one JSON object per line with a stable key set, and
:func:`configure_json_logging` to install it process-wide from the
daemons (``pusherd``/``agentd``/``simcluster``).

Trace correlation is automatic two ways:

* records logged inside a :func:`repro.observability.spans.trace_context`
  block pick up the ambient trace ID;
* ``logger.warning(..., extra={"trace_id": tid})`` overrides it
  explicitly (the slow-op logs do this — they know their trace ID even
  off the ambient thread).

Extra fields passed via ``extra=`` that are JSON-representable are
emitted verbatim, so call sites can attach structured attributes
(batch size, duration, replica) without string formatting.
"""

from __future__ import annotations

import json
import logging
import sys

from repro.observability.spans import current_trace

__all__ = ["JsonFormatter", "component_logger", "configure_json_logging"]

#: LogRecord attributes that are plumbing, not payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, component, message, traceId."""

    def __init__(self, component: str = "") -> None:
        super().__init__()
        self.component = component

    def format(self, record: logging.LogRecord) -> str:
        doc: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "component": getattr(record, "component", None) or self.component,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None)
        if trace_id is None:
            trace_id = current_trace()
        if trace_id is not None:
            doc["traceId"] = f"{trace_id:016x}" if isinstance(trace_id, int) else str(trace_id)
        if record.exc_info and record.exc_info[0] is not None:
            doc["exception"] = self.formatException(record.exc_info)
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in ("component", "trace_id") or key in doc:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            doc[key] = value
        return json.dumps(doc, separators=(",", ":"))


def configure_json_logging(
    component: str,
    level: int | str = logging.INFO,
    stream=None,
) -> logging.Handler:
    """Install a JSON handler on the root ``repro`` logger.

    Idempotent per component: reconfiguring replaces the previously
    installed JSON handler rather than stacking duplicates.  Returns
    the handler (tests capture its stream).
    """
    root = logging.getLogger("repro")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter(component))
    handler._repro_json_handler = True  # type: ignore[attr-defined]
    for existing in list(root.handlers):
        if getattr(existing, "_repro_json_handler", False):
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler


def component_logger(component: str) -> logging.Logger:
    """The namespaced logger for one pipeline component.

    Slow-op convention: components that enforce a slow-op threshold
    log at WARNING with ``extra={"trace_id": ..., "duration_s": ...}``
    so the JSON formatter emits machine-joinable fields.
    """
    return logging.getLogger(f"repro.{component}")
