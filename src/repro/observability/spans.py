"""Span trees for sampled readings: who touched a reading, and when.

The hop histograms (:mod:`repro.observability.tracing`) answer *how
slow* each pipeline stage is in aggregate; spans answer *which*
reading went where — which broker dispatched it, which flush batched
it, which replica retried, whether a fault was injected.  Each sampled
message carries a compact trace ID on the wire
(:mod:`repro.core.payload`); every component that handles it records a
:class:`Span` into a :class:`SpanRecorder`, a bounded lock-striped
ring of recent traces served by the ``/traces`` REST route.

Recording is strictly passive: components call
:meth:`SpanRecorder.record` with explicit start/end timestamps, there
is no context-manager timing machinery on the hot path, and an
untraced message (no trace ID) costs one ``is None`` check.

Ambient context
---------------

The storage layer sits below the wire: ``StorageCluster.insert_batch``
receives plain reading lists, not payloads.  :func:`trace_context`
sets a thread-local ambient trace ID around such calls so deep layers
can pick it up via :func:`current_trace` without threading a parameter
through every backend signature.  The ambient value never crosses
thread-pool boundaries — callers that fan out must capture
:func:`current_trace` once and pass it explicitly.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Span",
    "SpanRecorder",
    "current_trace",
    "default_recorder",
    "new_trace_id",
    "trace_context",
]

_id_counter = itertools.count(1)
_id_base = int.from_bytes(os.urandom(6), "big") << 16


def new_trace_id() -> int:
    """A process-unique non-zero 64-bit trace ID.

    Random high bits keep IDs distinct across processes (old/new
    pusher mixes feeding one agent); the low counter bits make IDs
    unique and cheap within a process — no per-call entropy read.
    """
    return (_id_base | (next(_id_counter) & 0xFFFF)) & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True, slots=True)
class Span:
    """One component's handling of one traced message."""

    name: str  # hop/operation: collect, publish, dispatch, insert, flush, ...
    component: str  # who recorded it: pusher, broker, agent, writer, cluster
    start_ns: int
    end_ns: int
    attributes: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "component": self.component,
            "startNs": self.start_ns,
            "endNs": self.end_ns,
            "durationNs": self.end_ns - self.start_ns,
            "attributes": dict(self.attributes),
        }


class _TraceSlot:
    __slots__ = ("trace_id", "spans")

    def __init__(self, trace_id: int) -> None:
        self.trace_id = trace_id
        self.spans: list[Span] = []


class SpanRecorder:
    """Bounded lock-striped ring buffer of recent traces.

    ``capacity`` bounds the number of distinct traces retained;
    ``max_spans_per_trace`` bounds each trace's span list (runaway
    retry loops cannot grow memory without bound).  Old traces are
    evicted FIFO per stripe.  Recording takes one stripe lock keyed by
    trace ID, so concurrent pipeline stages rarely contend.
    """

    DEFAULT_CAPACITY = 256

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        stripes: int = 8,
        max_spans_per_trace: int = 64,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self._stripes = stripes
        self._per_stripe = max(1, capacity // stripes)
        self._max_spans = max_spans_per_trace
        self._locks = [threading.Lock() for _ in range(stripes)]
        # Insertion-ordered dicts double as FIFO rings per stripe.
        self._rings: list[dict[int, _TraceSlot]] = [{} for _ in range(stripes)]
        self._dropped_spans = 0

    def _stripe_of(self, trace_id: int) -> int:
        return trace_id % self._stripes

    def record(
        self,
        trace_id: int | None,
        name: str,
        component: str,
        start_ns: int,
        end_ns: int,
        **attributes,
    ) -> None:
        """Append a span to a trace; no-op when ``trace_id`` is None."""
        if trace_id is None:
            return
        span = Span(name, component, start_ns, end_ns, attributes)
        idx = self._stripe_of(trace_id)
        with self._locks[idx]:
            ring = self._rings[idx]
            slot = ring.get(trace_id)
            if slot is None:
                while len(ring) >= self._per_stripe:
                    ring.pop(next(iter(ring)))
                slot = _TraceSlot(trace_id)
                ring[trace_id] = slot
            if len(slot.spans) >= self._max_spans:
                self._dropped_spans += 1
                return
            slot.spans.append(span)

    def trace(self, trace_id: int) -> list[Span]:
        """Spans of one trace (copy), oldest first; [] if unknown."""
        idx = self._stripe_of(trace_id)
        with self._locks[idx]:
            slot = self._rings[idx].get(trace_id)
            return list(slot.spans) if slot is not None else []

    def traces(
        self,
        limit: int = 50,
        sid: str | None = None,
        min_latency_ns: int = 0,
    ) -> list[dict]:
        """Recent traces as JSON-ready documents, newest first.

        ``sid`` filters to traces whose spans mention that sensor ID
        (substring match on the ``sid``/``topic`` attributes);
        ``min_latency_ns`` filters on whole-trace wall span.
        """
        docs = []
        for idx in range(self._stripes):
            with self._locks[idx]:
                slots = list(self._rings[idx].values())
            for slot in slots:
                spans = slot.spans
                if not spans:
                    continue
                start = min(s.start_ns for s in spans)
                end = max(s.end_ns for s in spans)
                if end - start < min_latency_ns:
                    continue
                if sid is not None and not any(
                    sid in str(s.attributes.get(key, ""))
                    for s in spans
                    for key in ("sid", "topic")
                ):
                    continue
                docs.append(
                    {
                        "traceId": f"{slot.trace_id:016x}",
                        "startNs": start,
                        "endNs": end,
                        "durationNs": end - start,
                        "spanCount": len(spans),
                        "spans": [s.as_dict() for s in spans],
                    }
                )
        docs.sort(key=lambda d: d["startNs"], reverse=True)
        return docs[:limit]

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings)

    def clear(self) -> None:
        for idx in range(self._stripes):
            with self._locks[idx]:
                self._rings[idx].clear()


_default = SpanRecorder()


def default_recorder() -> SpanRecorder:
    """The process-global recorder.

    Components record here unless handed an explicit recorder, so a
    pusher, broker, agent and storage cluster wired in one process
    (the simulated-cluster topology) contribute to a single span tree
    per trace, and either REST API's ``/traces`` sees all hops.
    """
    return _default


_ambient = threading.local()


def current_trace() -> int | None:
    """The ambient trace ID set by :func:`trace_context`, if any."""
    return getattr(_ambient, "trace_id", None)


@contextmanager
def trace_context(trace_id: int | None) -> Iterator[None]:
    """Set the ambient trace ID for the current thread.

    Nested use restores the outer value on exit; ``None`` is a cheap
    no-op pass-through so untraced paths need no branching at the
    call site.
    """
    if trace_id is None:
        yield
        return
    previous = getattr(_ambient, "trace_id", None)
    _ambient.trace_id = trace_id
    try:
        yield
    finally:
        _ambient.trace_id = previous
