"""End-to-end pipeline tracing: per-hop latency without payload copies.

Every reading already carries its origin — the nanosecond collection
timestamp that is the first 8 bytes of each wire record
(:mod:`repro.core.payload`).  Aggregate tracing therefore needs no
payload rewriting: each pipeline stage *stamps* the reading by
observing ``now - origin`` into a shared latency histogram labelled
with the hop name.  The cumulative-latency histograms that result give
p50/p95/p99 per hop directly, and hop-to-hop deltas by subtraction.
Sampled messages additionally carry a wire trace ID
(:func:`repro.core.payload.trace_id_of`); pass it to :meth:`stamp` to
attach it as a histogram *exemplar*, linking the bucket back to the
concrete span tree in the :class:`~repro.observability.spans.SpanRecorder`.

Hops, in pipeline order:

``collect``   sampling cycle done, readings queued (Pusher)
``publish``   MQTT message handed to the transport (Pusher)
``dispatch``  PUBLISH accepted by the broker/hub (Collect Agent side)
``insert``    payload decoded, batch about to hit storage (Collect Agent)
``commit``    storage acknowledged the batch — end-to-end latency

Overhead is bounded by the *sampling knob*: ``sample_every=N`` stamps
one of every N candidates (a shared atomic cycle counter, no lock).
``sample_every=0`` disables tracing entirely.
"""

from __future__ import annotations

import itertools
import struct
from typing import Callable

from repro.common.timeutil import now_ns
from repro.observability.metrics import MetricsRegistry

__all__ = ["HOPS", "LATENCY_BUCKETS", "PIPELINE_METRIC", "PipelineTracer", "payload_origin_ns"]

#: Pipeline stages in order; ``commit`` is end-to-end.
HOPS = ("collect", "publish", "dispatch", "insert", "commit")

PIPELINE_METRIC = "dcdb_pipeline_latency_seconds"

#: 100 us .. 60 s — spans in-process hops through cross-network bursts.
LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_TS = struct.Struct("!q")
_RECORD_SIZE = 16  # must match repro.core.payload.RECORD_SIZE
_HEADER_SIZE = 12  # must match repro.core.payload.TRACE_HEADER_SIZE
_TRACE_MAGIC = 0xD7  # must match repro.core.payload.TRACE_MAGIC

#: Timestamps beyond ~2106 CE (2^62 ns) cannot be real reading origins;
#: ASCII/JSON bytes reinterpreted as big-endian int64 land far above
#: this (``{`` = 0x7B in the top byte ≈ 8.9e18), so the bound rejects
#: textual metadata/announce payloads that happen to be 16-byte
#: multiples instead of stamping garbage into the dispatch histogram.
_MAX_PLAUSIBLE_ORIGIN_NS = 1 << 62


def payload_origin_ns(payload: bytes) -> int | None:
    """Origin timestamp of a reading payload, or None if it isn't one.

    Peeks the first record's timestamp without copying or decoding the
    rest — the property that keeps broker-side stamping O(1) per
    message regardless of burst size.  Trace-headered payloads
    (``len % 16 == 12``) peek past the header; payloads whose leading
    8 bytes do not look like a nanosecond timestamp (negative, or
    beyond 2^62) are rejected as non-reading frames.
    """
    offset = 0
    remainder = len(payload) % _RECORD_SIZE
    if remainder == _HEADER_SIZE and len(payload) > _HEADER_SIZE:
        if payload[0] != _TRACE_MAGIC:
            return None
        offset = _HEADER_SIZE
    elif remainder != 0:
        return None
    if len(payload) - offset < _RECORD_SIZE:
        return None
    origin = _TS.unpack_from(payload, offset)[0]
    if not 0 <= origin < _MAX_PLAUSIBLE_ORIGIN_NS:
        return None
    return origin


class PipelineTracer:
    """Records per-hop cumulative latencies into a registry histogram.

    All tracers stamping into the same :class:`MetricsRegistry` share
    one histogram family (get-or-create semantics), so a Pusher, a
    broker and a Collect Agent wired in-process produce a single
    coherent per-hop distribution.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Callable[[], int] | None = None,
        sample_every: int = 1,
        metric: str = PIPELINE_METRIC,
    ) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 disables tracing)")
        self.registry = registry
        self.sample_every = sample_every
        self._clock = clock if clock is not None else now_ns
        self._cycle = itertools.count()
        self._hist = registry.histogram(
            metric,
            "Cumulative pipeline latency since collection, by hop",
            labelnames=("hop",),
            buckets=LATENCY_BUCKETS,
        )
        self._children = {hop: self._hist.labels(hop=hop) for hop in HOPS}

    def should_sample(self) -> bool:
        """Decide whether this reading/message is traced.

        ``itertools.count`` is a single C-level object: advancing it is
        atomic under the GIL, so sampling costs no lock.
        """
        if self.sample_every == 0:
            return False
        if self.sample_every == 1:
            return True
        return next(self._cycle) % self.sample_every == 0

    def stamp(
        self,
        hop: str,
        origin_ns: int,
        at_ns: int | None = None,
        trace_id: int | None = None,
    ) -> None:
        """Observe the latency from ``origin_ns`` to now at ``hop``.

        Negative deltas (simulated clocks running behind aligned
        sampling timestamps) clamp to zero rather than corrupting the
        distribution.  A ``trace_id`` is attached as the bucket's
        exemplar, linking the observation to its span tree.
        """
        now = at_ns if at_ns is not None else self._clock()
        child = self._children.get(hop)
        if child is None:
            child = self._hist.labels(hop=hop)
            self._children[hop] = child
        child.observe(
            max(0, now - origin_ns) / 1e9,
            f"{trace_id:016x}" if trace_id is not None else None,
        )

    def stamp_payload(self, hop: str, payload: bytes, trace_id: int | None = None) -> None:
        """Stamp from a wire payload's embedded origin, if it has one."""
        origin = payload_origin_ns(payload)
        if origin is not None:
            self.stamp(hop, origin, trace_id=trace_id)

    def percentiles(self, hop: str) -> dict | None:
        """p50/p95/p99 summary of one hop, or None before any stamp."""
        labels = {"hop": hop}
        count = int(self.registry.value(self._hist.name, labels))
        if count == 0:
            return None
        return {
            "count": count,
            "p50": self._hist.percentile(0.50, labels),
            "p95": self._hist.percentile(0.95, labels),
            "p99": self._hist.percentile(0.99, labels),
        }
