"""Self-monitoring for the monitoring framework.

DCDB's paper evaluates DCDB's own footprint and latency; this package
is the measurement surface that makes such claims reproducible here:
a thread-safe :class:`MetricsRegistry` threaded through every pipeline
stage, per-reading pipeline tracing (:class:`PipelineTracer`), and
Prometheus/JSON exposition behind the shared ``/metrics`` REST route.
See ``docs/observability.md`` for the instrument catalogue.
"""

from repro.observability.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    render_json,
    render_prometheus,
)
from repro.observability.metrics import (
    Counter,
    FamilySnapshot,
    Gauge,
    Histogram,
    HistogramSample,
    MetricsRegistry,
    Sample,
    merge_snapshots,
)
from repro.observability.tracing import (
    HOPS,
    LATENCY_BUCKETS,
    PIPELINE_METRIC,
    PipelineTracer,
    payload_origin_ns,
)

__all__ = [
    "Counter",
    "FamilySnapshot",
    "Gauge",
    "HOPS",
    "Histogram",
    "HistogramSample",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "PIPELINE_METRIC",
    "PROMETHEUS_CONTENT_TYPE",
    "PipelineTracer",
    "Sample",
    "merge_snapshots",
    "parse_prometheus_text",
    "payload_origin_ns",
    "render_json",
    "render_prometheus",
]
