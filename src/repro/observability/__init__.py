"""Self-monitoring for the monitoring framework.

DCDB's paper evaluates DCDB's own footprint and latency; this package
is the measurement surface that makes such claims reproducible here:
a thread-safe :class:`MetricsRegistry` threaded through every pipeline
stage, per-reading pipeline tracing (:class:`PipelineTracer`) with
wire-propagated trace IDs and span trees (:class:`SpanRecorder`),
runtime probes (:class:`EventLoopLagProbe`), structured JSON logging,
and Prometheus/JSON exposition behind the shared ``/metrics``,
``/traces`` and ``/health`` REST routes.  See
``docs/observability.md`` for the instrument catalogue.
"""

from repro.observability.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    render_health,
    render_json,
    render_prometheus,
)
from repro.observability.logging import (
    JsonFormatter,
    component_logger,
    configure_json_logging,
)
from repro.observability.metrics import (
    Counter,
    FamilySnapshot,
    Gauge,
    Histogram,
    HistogramSample,
    MetricsRegistry,
    Sample,
    merge_snapshots,
)
from repro.observability.runtime import (
    EVENTLOOP_LAG_METRIC,
    EventLoopLagProbe,
)
from repro.observability.spans import (
    Span,
    SpanRecorder,
    current_trace,
    default_recorder,
    new_trace_id,
    trace_context,
)
from repro.observability.tracing import (
    HOPS,
    LATENCY_BUCKETS,
    PIPELINE_METRIC,
    PipelineTracer,
    payload_origin_ns,
)

__all__ = [
    "Counter",
    "EVENTLOOP_LAG_METRIC",
    "EventLoopLagProbe",
    "FamilySnapshot",
    "Gauge",
    "HOPS",
    "Histogram",
    "HistogramSample",
    "JsonFormatter",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "PIPELINE_METRIC",
    "PROMETHEUS_CONTENT_TYPE",
    "PipelineTracer",
    "Sample",
    "Span",
    "SpanRecorder",
    "component_logger",
    "configure_json_logging",
    "current_trace",
    "default_recorder",
    "merge_snapshots",
    "new_trace_id",
    "parse_prometheus_text",
    "payload_origin_ns",
    "render_health",
    "render_json",
    "render_prometheus",
    "trace_context",
]
