"""Thread-safe metrics instruments: Counter, Gauge, Histogram.

DCDB's evaluation is largely a measurement of DCDB itself (paper
Fig. 4-6 Pusher overhead, Fig. 8 Collect Agent load, Table 1
production overhead).  This module gives every pipeline component a
uniform, cheap way to record that self-measurement:

* :class:`MetricsRegistry` — a named catalogue of instrument
  *families*; each family may carry labels (e.g. ``hop="publish"``)
  and each distinct label combination owns one *child* instrument.
* :class:`Counter` — monotonically increasing totals.
* :class:`Gauge` — point-in-time values; supports callback gauges
  evaluated lazily at snapshot time so live state (queue depths,
  connected clients) needs no write on the hot path.
* :class:`Histogram` — fixed-bucket distributions with ``sum`` and
  ``count``, plus percentile estimation by linear interpolation
  within a bucket.

Concurrency model: increments are *lock-striped* — children are
assigned one of a small pool of registry-wide locks round-robin, so
two hot counters on different threads almost never contend on the
same lock while the memory cost stays bounded.  ``collect()`` returns
immutable snapshot dataclasses; snapshots from several registries
(e.g. one per storage node) combine with :func:`merge_snapshots`.
"""

from __future__ import annotations

import bisect
import itertools
import math
import threading
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "FamilySnapshot",
    "Gauge",
    "Histogram",
    "HistogramSample",
    "MetricsRegistry",
    "Sample",
    "merge_snapshots",
]

#: Default histogram buckets: generic latency-ish spread in seconds.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

LabelPairs = tuple[tuple[str, str], ...]


@dataclass(frozen=True, slots=True)
class Sample:
    """One counter/gauge child at snapshot time."""

    labels: LabelPairs
    value: float


@dataclass(frozen=True, slots=True)
class HistogramSample:
    """One histogram child at snapshot time.

    ``buckets`` are (upper_bound, cumulative_count) pairs ending with
    the ``+Inf`` bucket, Prometheus-style.  ``exemplars`` are
    (upper_bound, exemplar_label, observed_value) triples — at most
    one per bucket, the most recent exemplar-bearing observation that
    landed there (e.g. a trace ID linking the bucket to a concrete
    sampled reading).
    """

    labels: LabelPairs
    buckets: tuple[tuple[float, int], ...]
    sum: float
    count: int
    exemplars: tuple[tuple[float, str, float], ...] = ()

    def percentile(self, q: float) -> float | None:
        """Estimate the q-quantile (0 < q <= 1) from the buckets."""
        return _bucket_percentile(self.buckets, self.count, q)


@dataclass(frozen=True, slots=True)
class FamilySnapshot:
    """All children of one instrument family at snapshot time."""

    name: str
    type: str  # "counter" | "gauge" | "histogram"
    help: str
    samples: tuple[Sample | HistogramSample, ...]

    def total(self) -> float:
        """Sum of all scalar samples (count for histograms)."""
        if self.type == "histogram":
            return float(sum(s.count for s in self.samples))
        return float(sum(s.value for s in self.samples))


def _bucket_percentile(
    buckets: tuple[tuple[float, int], ...], count: int, q: float
) -> float | None:
    if count <= 0:
        return None
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    target = q * count
    prev_cum = 0
    prev_bound = 0.0
    for bound, cum in buckets:
        if cum >= target:
            if math.isinf(bound):
                # Observation beyond the last finite bucket: the best
                # honest answer is that bucket's lower edge.
                return prev_bound
            in_bucket = cum - prev_cum
            if in_bucket <= 0:
                return bound
            fraction = (target - prev_cum) / in_bucket
            return prev_bound + (bound - prev_bound) * fraction
        prev_cum = cum
        prev_bound = bound if not math.isinf(bound) else prev_bound
    return prev_bound


# -- children ------------------------------------------------------------


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at snapshot time instead of storing a value."""
        self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            return float(fn())
        with self._lock:
            return self._value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count", "_exemplars")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._exemplars: dict[int, tuple[str, float]] | None = None

    def observe(self, value: float, exemplar: str | None = None) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                if self._exemplars is None:
                    self._exemplars = {}
                self._exemplars[index] = (exemplar, value)

    def _exemplar_triples(self) -> tuple[tuple[float, str, float], ...]:
        with self._lock:
            if not self._exemplars:
                return ()
            items = sorted(self._exemplars.items())
        bounds = self._bounds
        return tuple(
            (bounds[i] if i < len(bounds) else math.inf, label, value)
            for i, (label, value) in items
        )

    def percentile(self, q: float) -> float | None:
        return _bucket_percentile(self._cumulative(), self.count, q)

    def _cumulative(self) -> tuple[tuple[float, int], ...]:
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self._bounds, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return tuple(out)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


# -- families ------------------------------------------------------------


class _Family:
    """Shared machinery: label resolution and the children table."""

    kind = "untyped"
    _child_cls: type = _CounterChild

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], object] = {}
        self._table_lock = threading.Lock()
        if not labelnames:
            self._default = self._make_child(())
        else:
            self._default = None

    def _make_child(self, key: tuple[str, ...]):
        child = self._new_child(self._registry._next_stripe())
        self._children[key] = child
        return child

    def _new_child(self, lock: threading.Lock):
        return self._child_cls(lock)

    def labels(self, *values: object, **kwargs: object):
        """The child instrument for one label-value combination."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc} for {self.name}") from exc
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._table_lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
        return child

    def _only(self):
        if self._default is None:
            raise ValueError(f"{self.name} is labelled; call .labels(...) first")
        return self._default

    def _sample_children(self) -> list[tuple[LabelPairs, object]]:
        with self._table_lock:
            items = list(self._children.items())
        return [(tuple(zip(self.labelnames, key)), child) for key, child in items]

    def snapshot(self) -> FamilySnapshot:
        samples = tuple(
            Sample(labels, child.value) for labels, child in self._sample_children()
        )
        return FamilySnapshot(self.name, self.kind, self.help, samples)


class Counter(_Family):
    """A family of monotonically increasing counters."""

    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    @property
    def value(self) -> float:
        return sum(child.value for _, child in self._sample_children())


class Gauge(_Family):
    """A family of point-in-time values."""

    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._only().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._only().set_function(fn)

    @property
    def value(self) -> float:
        return sum(child.value for _, child in self._sample_children())


class Histogram(_Family):
    """A family of fixed-bucket distributions."""

    kind = "histogram"

    def __init__(self, registry, name, help, labelnames, buckets) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("the +Inf bucket is implicit; omit it")
        self.buckets = bounds
        super().__init__(registry, name, help, labelnames)

    def _new_child(self, lock: threading.Lock):
        return _HistogramChild(lock, self.buckets)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self._only().observe(value, exemplar)

    def percentile(self, q: float, labels: dict[str, str] | None = None) -> float | None:
        """Aggregate quantile estimate over children matching ``labels``."""
        merged: list[int] | None = None
        total = 0
        for pairs, child in self._sample_children():
            if labels is not None and not _labels_match(pairs, labels):
                continue
            cumulative = child._cumulative()
            counts = [cumulative[0][1]] + [
                cumulative[i][1] - cumulative[i - 1][1] for i in range(1, len(cumulative))
            ]
            if merged is None:
                merged = counts
            else:
                merged = [a + b for a, b in zip(merged, counts)]
            total += cumulative[-1][1]
        if merged is None or total == 0:
            return None
        bounds = tuple(self.buckets) + (math.inf,)
        running = 0
        cum: list[tuple[float, int]] = []
        for bound, n in zip(bounds, merged):
            running += n
            cum.append((bound, running))
        return _bucket_percentile(tuple(cum), total, q)

    def snapshot(self) -> FamilySnapshot:
        samples = []
        for labels, child in self._sample_children():
            cumulative = child._cumulative()
            samples.append(
                HistogramSample(
                    labels,
                    cumulative,
                    child.sum,
                    child.count,
                    child._exemplar_triples(),
                )
            )
        return FamilySnapshot(self.name, self.kind, self.help, tuple(samples))


def _labels_match(pairs: LabelPairs, wanted: dict[str, str]) -> bool:
    have = dict(pairs)
    return all(have.get(k) == str(v) for k, v in wanted.items())


# -- registry ------------------------------------------------------------


class MetricsRegistry:
    """A named catalogue of instrument families.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for
    an existing name returns the existing family (and raises if the
    type or labels disagree), so independent components can share one
    registry without coordination.
    """

    def __init__(self, stripes: int = 16) -> None:
        if stripes < 1:
            raise ValueError("need at least one lock stripe")
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in range(stripes)]
        self._stripe_iter = itertools.count()

    def _next_stripe(self) -> threading.Lock:
        return self._stripes[next(self._stripe_iter) % len(self._stripes)]

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"{name!r} already registered as {family.kind}, not {cls.kind}"
                    )
                if family.labelnames != labelnames:
                    raise ValueError(
                        f"{name!r} registered with labels {family.labelnames}, "
                        f"asked for {labelnames}"
                    )
                return family
            family = cls(self, name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=tuple(buckets)
        )

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, labels: dict[str, str] | None = None) -> float:
        """Summed value of a family's matching children (0 if absent).

        Histograms report their observation count.  This is the
        read-side helper status endpoints use instead of duck-typing
        component attributes.
        """
        family = self.get(name)
        if family is None:
            return 0.0
        snap = family.snapshot()
        total = 0.0
        for sample in snap.samples:
            if labels is not None and not _labels_match(sample.labels, labels):
                continue
            if isinstance(sample, HistogramSample):
                total += sample.count
            else:
                total += sample.value
        return total

    def collect(self) -> list[FamilySnapshot]:
        """Immutable snapshot of every family, sorted by name."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        return [family.snapshot() for family in families]


def merge_snapshots(
    snapshot_lists: Iterable[Iterable[FamilySnapshot]],
) -> list[FamilySnapshot]:
    """Combine snapshots from several registries into one exposition.

    Counters and histograms with the same (name, labels) are summed
    (histograms must share bucket bounds); gauges are summed too,
    which is the meaningful aggregation for the per-node gauges this
    codebase registers (rows, segments, queue depths).
    """
    by_name: dict[str, dict] = {}
    for snapshots in snapshot_lists:
        for family in snapshots:
            entry = by_name.setdefault(
                family.name,
                {"type": family.type, "help": family.help, "samples": {}},
            )
            if entry["type"] != family.type:
                raise ValueError(
                    f"{family.name!r} appears as both {entry['type']} and {family.type}"
                )
            if family.help and not entry["help"]:
                entry["help"] = family.help
            for sample in family.samples:
                existing = entry["samples"].get(sample.labels)
                if existing is None:
                    entry["samples"][sample.labels] = sample
                elif isinstance(sample, HistogramSample):
                    bounds = tuple(b for b, _ in existing.buckets)
                    if bounds != tuple(b for b, _ in sample.buckets):
                        raise ValueError(
                            f"{family.name!r}: histogram bucket bounds differ across registries"
                        )
                    merged_exemplars = {b: (lbl, v) for b, lbl, v in existing.exemplars}
                    merged_exemplars.update(
                        {b: (lbl, v) for b, lbl, v in sample.exemplars}
                    )
                    entry["samples"][sample.labels] = HistogramSample(
                        sample.labels,
                        tuple(
                            (b, c1 + c2)
                            for (b, c1), (_, c2) in zip(existing.buckets, sample.buckets)
                        ),
                        existing.sum + sample.sum,
                        existing.count + sample.count,
                        tuple(
                            (b, lbl, v)
                            for b, (lbl, v) in sorted(merged_exemplars.items())
                        ),
                    )
                else:
                    entry["samples"][sample.labels] = Sample(
                        sample.labels, existing.value + sample.value
                    )
    return [
        FamilySnapshot(name, e["type"], e["help"], tuple(e["samples"].values()))
        for name, e in sorted(by_name.items())
    ]
