"""Runtime diagnostics probes.

:class:`EventLoopLagProbe` measures scheduling lag on an event loop: a
self-rescheduling timer notes when it *expected* to fire and observes
``actual - expected`` into ``dcdb_eventloop_lag_seconds``.  Sustained
lag means the loop thread is saturated (too many connections, a
blocking callback) long before throughput collapses — the paper's
Collect Agent load analysis (Fig. 8) in probe form.

Probes register themselves in a class-level active set while running;
the test suite asserts the set is empty after every test, which turns
"a timer was left on the loop after stop()" from a silent leak into a
failure.
"""

from __future__ import annotations

import threading
import time

from repro.observability.metrics import MetricsRegistry

__all__ = ["EVENTLOOP_LAG_METRIC", "EventLoopLagProbe"]

EVENTLOOP_LAG_METRIC = "dcdb_eventloop_lag_seconds"

#: 0.1 ms .. 5 s — healthy loops sit in the lowest buckets.
LAG_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class EventLoopLagProbe:
    """Periodic timer lag sampler for one event loop.

    ``loop`` needs only ``call_later(delay_s, callback) -> timer`` with
    ``timer.cancel()`` — the surface :class:`repro.mqtt.eventloop.EventLoop`
    provides.  ``start()``/``stop()`` are idempotent; ``stop()`` is safe
    from any thread, including the loop thread itself.
    """

    _active: set["EventLoopLagProbe"] = set()
    _active_lock = threading.Lock()

    def __init__(
        self,
        loop,
        registry: MetricsRegistry,
        name: str = "loop",
        interval_s: float = 0.25,
        clock=time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self._loop = loop
        self._name = name
        self._interval = interval_s
        self._clock = clock
        self._child = registry.histogram(
            EVENTLOOP_LAG_METRIC,
            "Event-loop timer scheduling lag (actual - expected fire time)",
            labelnames=("loop",),
            buckets=LAG_BUCKETS,
        ).labels(loop=name)
        self._lock = threading.Lock()
        self._timer = None
        self._expected = 0.0
        self._running = False

    @property
    def name(self) -> str:
        return self._name

    @property
    def running(self) -> bool:
        return self._running

    @classmethod
    def active_probes(cls) -> list["EventLoopLagProbe"]:
        """Probes started but not yet stopped (test-suite leak check)."""
        with cls._active_lock:
            return list(cls._active)

    def start(self) -> None:
        with self._lock:
            if self._running:
                return
            self._running = True
            self._expected = self._clock() + self._interval
            self._timer = self._loop.call_later(self._interval, self._tick)
        with self._active_lock:
            self._active.add(self)

    def stop(self) -> None:
        with self._lock:
            if not self._running:
                return
            self._running = False
            timer, self._timer = self._timer, None
        if timer is not None:
            timer.cancel()
        with self._active_lock:
            self._active.discard(self)

    def _tick(self) -> None:
        now = self._clock()
        with self._lock:
            if not self._running:
                return
            lag = max(0.0, now - self._expected)
            self._expected = now + self._interval
            self._timer = self._loop.call_later(self._interval, self._tick)
        self._child.observe(lag)
