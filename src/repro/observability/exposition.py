"""Rendering metric snapshots for machine consumption.

Two formats back the shared ``/metrics`` route of the Pusher and
Collect Agent REST APIs:

* Prometheus text exposition (format 0.0.4) — the lingua franca of
  scrape-based monitoring, so a DCDB deployment can be watched by the
  same Prometheus/Grafana stack it feeds sensor data into;
* plain JSON (``?format=json``) — for tools and tests that want the
  snapshot without a Prometheus parser.

:func:`parse_prometheus_text` is a deliberately strict validator used
by the ``make metrics-smoke`` gate and the test suite: it rejects the
malformed output a sloppy renderer would produce (bad names, missing
``+Inf`` buckets, count/bucket disagreement).
"""

from __future__ import annotations

import math
import re
from typing import Iterable

from repro.observability.metrics import FamilySnapshot, HistogramSample, Sample

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "parse_prometheus_text",
    "render_health",
    "render_json",
    "render_prometheus",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Coerce an arbitrary string into a legal metric name."""
    name = _INVALID_CHARS.sub("_", name)
    if not name or not _NAME_RE.match(name):
        name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_string(pairs: Iterable[tuple[str, str]]) -> str:
    rendered = [
        f'{_INVALID_CHARS.sub("_", k)}="{_escape_label_value(str(v))}"'
        for k, v in pairs
    ]
    return "{" + ",".join(rendered) + "}" if rendered else ""


def render_prometheus(families: Iterable[FamilySnapshot]) -> str:
    """Render snapshots as Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for family in families:
        name = sanitize_name(family.name)
        help_text = family.help.replace("\\", r"\\").replace("\n", r"\n")
        lines.append(f"# HELP {name} {help_text}" if help_text else f"# HELP {name}")
        lines.append(f"# TYPE {name} {family.type}")
        for sample in family.samples:
            if isinstance(sample, HistogramSample):
                for bound, cum in sample.buckets:
                    labels = _label_string(
                        list(sample.labels) + [("le", _format_value(bound))]
                    )
                    lines.append(f"{name}_bucket{labels} {cum}")
                base = _label_string(sample.labels)
                lines.append(f"{name}_sum{base} {_format_value(sample.sum)}")
                lines.append(f"{name}_count{base} {sample.count}")
            else:
                labels = _label_string(sample.labels)
                lines.append(f"{name}{labels} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def render_json(families: Iterable[FamilySnapshot]) -> dict:
    """Render snapshots as a plain JSON-serializable document."""
    out: dict[str, dict] = {}
    for family in families:
        samples: list[dict] = []
        for sample in family.samples:
            if isinstance(sample, HistogramSample):
                doc = {
                    "labels": dict(sample.labels),
                    "buckets": [
                        {"le": ("+Inf" if math.isinf(b) else b), "count": c}
                        for b, c in sample.buckets
                    ],
                    "sum": sample.sum,
                    "count": sample.count,
                    "p50": sample.percentile(0.50),
                    "p95": sample.percentile(0.95),
                    "p99": sample.percentile(0.99),
                }
                if sample.exemplars:
                    # Exemplars live in JSON only: text format 0.0.4
                    # (and our strict parser) has no exemplar syntax.
                    doc["exemplars"] = [
                        {
                            "le": ("+Inf" if math.isinf(b) else b),
                            "traceId": label,
                            "value": value,
                        }
                        for b, label, value in sample.exemplars
                    ]
                samples.append(doc)
            else:
                samples.append({"labels": dict(sample.labels), "value": sample.value})
        out[family.name] = {
            "type": family.type,
            "help": family.help,
            "samples": samples,
        }
    return out


def render_health(checks: dict[str, tuple[bool, dict]]) -> tuple[int, dict]:
    """Combine named readiness checks into a ``/health`` document.

    ``checks`` maps component name to ``(healthy, detail_dict)``.
    Returns ``(http_status, body)``: 200 with ``status: ok`` when every
    check passes, 503 with ``status: degraded`` otherwise — the
    convention load balancers and Grafana "Save & Test" expect.
    """
    components: dict[str, dict] = {}
    healthy = True
    for name, (ok, detail) in checks.items():
        components[name] = {"healthy": bool(ok), **detail}
        healthy = healthy and bool(ok)
    return (
        200 if healthy else 503,
        {"status": "ok" if healthy else "degraded", "components": components},
    )


_SAMPLE_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+\d+)?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse + validate Prometheus text exposition.

    Returns ``{metric_name: {"type": ..., "samples": int}}`` for the
    declared families.  Raises :class:`ValueError` on malformed input:
    unparseable lines, samples without a TYPE declaration, histograms
    missing the ``+Inf`` bucket or whose ``_count`` disagrees with it.
    """
    types: dict[str, str] = {}
    sample_counts: dict[str, int] = {}
    inf_buckets: dict[str, dict[str, float]] = {}
    counts: dict[str, dict[str, float]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line: {raw!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample line: {raw!r}")
        name = match.group("name")
        label_text = match.group("labels") or ""
        labels = dict(_LABEL_PAIR_RE.findall(label_text))
        if label_text and not labels and label_text.strip():
            raise ValueError(f"line {lineno}: unparseable labels: {raw!r}")
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad sample value {value_text!r}") from exc
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and types.get(stripped) in ("histogram", "summary"):
                base = stripped
                break
        if base not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE declaration")
        sample_counts[base] = sample_counts.get(base, 0) + 1
        if types[base] == "histogram":
            series = _label_string(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name.endswith("_bucket") and labels.get("le") == "+Inf":
                inf_buckets.setdefault(base, {})[series] = value
            elif name.endswith("_count"):
                counts.setdefault(base, {})[series] = value
    for base, kind in types.items():
        if kind != "histogram" or base not in sample_counts:
            continue
        series_counts = counts.get(base, {})
        series_infs = inf_buckets.get(base, {})
        if not series_infs:
            raise ValueError(f"histogram {base!r} has no +Inf bucket")
        for series, total in series_counts.items():
            inf = series_infs.get(series)
            if inf is None:
                raise ValueError(f"histogram {base!r}{series} is missing its +Inf bucket")
            if inf != total:
                raise ValueError(
                    f"histogram {base!r}{series}: +Inf bucket {inf} != count {total}"
                )
    return {
        name: {"type": kind, "samples": sample_counts.get(name, 0)}
        for name, kind in types.items()
    }
