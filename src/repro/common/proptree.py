"""Property-tree configuration format.

DCDB configures Pushers through boost::property_tree ``INFO`` files
(paper section 4.1): an intuitive nested key/value format::

    global {
        mqttBroker   localhost:1883
        mqttprefix   /system/rack0/node7
        threads      2
    }

    template_group perf_defaults {
        interval     1000
        minValues    3
    }

    group cache_events {
        default      perf_defaults
        sensor l1_misses {
            mqttsuffix   /l1m
            unit         count
        }
    }

This module is a from-scratch parser/emitter for that format.  A
:class:`PropertyTree` is an ordered multimap: a key may appear several
times (e.g. many ``group`` nodes) and order is preserved.  Values are
strings; typed accessors perform conversion at the call site, which is
where the meaningful error message lives.

Grammar notes (matching boost's INFO reader closely enough for DCDB
configs):

* a line is ``key [value]`` optionally followed by ``{`` to open a
  child scope; ``}`` closes the scope;
* keys and values may be double-quoted to embed whitespace;
* ``;`` starts a comment running to end of line;
* blank lines are ignored.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import ConfigError


class PropertyTree:
    """An ordered key/value multimap with nested children.

    Mirrors the subset of ``boost::property_tree::ptree`` DCDB uses.
    """

    __slots__ = ("value", "_children")

    def __init__(self, value: str = "") -> None:
        self.value = value
        self._children: list[tuple[str, "PropertyTree"]] = []

    # -- construction ---------------------------------------------------

    def add(self, key: str, value: "PropertyTree | str" = "") -> "PropertyTree":
        """Append a child under ``key`` and return it.

        ``value`` may be a ready-made subtree or a plain string value.
        """
        node = value if isinstance(value, PropertyTree) else PropertyTree(str(value))
        self._children.append((key, node))
        return node

    def put(self, path: str, value: str) -> "PropertyTree":
        """Set ``path`` (dot-separated) to ``value``, creating nodes.

        If the final key already exists, its value is replaced (first
        occurrence); otherwise it is appended.
        """
        node = self
        parts = path.split(".")
        for part in parts[:-1]:
            child = node.child(part)
            if child is None:
                child = node.add(part)
            node = child
        leaf = node.child(parts[-1])
        if leaf is None:
            leaf = node.add(parts[-1])
        leaf.value = str(value)
        return leaf

    # -- access ---------------------------------------------------------

    def child(self, key: str) -> "PropertyTree | None":
        """First child named ``key``, or None."""
        for k, node in self._children:
            if k == key:
                return node
        return None

    def children(self, key: str | None = None) -> Iterator[tuple[str, "PropertyTree"]]:
        """Iterate ``(key, node)`` pairs; filtered to ``key`` if given."""
        for k, node in self._children:
            if key is None or k == key:
                yield k, node

    def get(self, path: str, default: str | None = None) -> str | None:
        """Value at dot-separated ``path``, or ``default`` if absent."""
        node = self
        for part in path.split("."):
            child = node.child(part)
            if child is None:
                return default
            node = child
        return node.value

    def require(self, path: str) -> str:
        """Like :meth:`get` but raises :class:`ConfigError` if absent."""
        value = self.get(path)
        if value is None:
            raise ConfigError(f"missing required configuration key {path!r}")
        return value

    def get_int(self, path: str, default: int | None = None) -> int | None:
        raw = self.get(path)
        if raw is None or raw == "":
            return default
        try:
            return int(raw)
        except ValueError:
            raise ConfigError(f"expected integer at {path!r}, got {raw!r}") from None

    def get_float(self, path: str, default: float | None = None) -> float | None:
        raw = self.get(path)
        if raw is None or raw == "":
            return default
        try:
            return float(raw)
        except ValueError:
            raise ConfigError(f"expected number at {path!r}, got {raw!r}") from None

    def get_bool(self, path: str, default: bool | None = None) -> bool | None:
        raw = self.get(path)
        if raw is None or raw == "":
            return default
        lowered = raw.strip().lower()
        if lowered in ("true", "on", "1", "yes"):
            return True
        if lowered in ("false", "off", "0", "no"):
            return False
        raise ConfigError(f"expected boolean at {path!r}, got {raw!r}")

    def __len__(self) -> int:
        return len(self._children)

    def __bool__(self) -> bool:
        # A node is truthy if it carries a value or any children; this
        # lets callers write ``if tree.child("group"):`` naturally.
        return bool(self.value) or bool(self._children)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyTree):
            return NotImplemented
        return self.value == other.value and self._children == other._children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PropertyTree(value={self.value!r}, children={len(self._children)})"


# -- tokenizer ----------------------------------------------------------


def _tokenize_line(line: str, lineno: int) -> list[str]:
    """Split one line into tokens, honouring quotes and ; comments."""
    tokens: list[str] = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch in " \t":
            i += 1
            continue
        if ch == ";":
            break
        if ch == '"':
            j = i + 1
            buf: list[str] = []
            while j < n:
                if line[j] == "\\" and j + 1 < n:
                    # Only quote and backslash are escapes; any other
                    # backslash stays literal so regex values like
                    # "\d+" survive quoting.
                    if line[j + 1] in ('"', "\\"):
                        buf.append(line[j + 1])
                    else:
                        buf.append(line[j])
                        buf.append(line[j + 1])
                    j += 2
                    continue
                if line[j] == '"':
                    break
                buf.append(line[j])
                j += 1
            else:
                raise ConfigError(f"line {lineno}: unterminated quoted string")
            tokens.append("".join(buf))
            i = j + 1
            continue
        if ch in "{}":
            tokens.append(ch)
            i += 1
            continue
        j = i
        while j < n and line[j] not in ' \t;{}"':
            j += 1
        tokens.append(line[i:j])
        i = j
    return tokens


def parse_info(text: str) -> PropertyTree:
    """Parse INFO-format ``text`` into a :class:`PropertyTree`.

    Raises :class:`ConfigError` with a line number on malformed input.
    """
    root = PropertyTree()
    stack: list[PropertyTree] = [root]
    # When a line ends in a key (no '{' yet), a following line holding
    # only '{' opens that node's scope — boost allows this style.
    pending: PropertyTree | None = None

    for lineno, line in enumerate(text.splitlines(), start=1):
        tokens = _tokenize_line(line, lineno)
        idx = 0
        while idx < len(tokens):
            tok = tokens[idx]
            if tok == "{":
                if pending is None:
                    raise ConfigError(f"line {lineno}: '{{' without a preceding key")
                stack.append(pending)
                pending = None
                idx += 1
                continue
            if tok == "}":
                if pending is not None:
                    pending = None
                if len(stack) == 1:
                    raise ConfigError(f"line {lineno}: unmatched '}}'")
                stack.pop()
                idx += 1
                continue
            # A key, optionally followed by one value token, optionally
            # '{'.  Several key/value pairs may share a line; values
            # containing whitespace must be quoted (as in boost INFO).
            key = tok
            value = ""
            idx += 1
            if idx < len(tokens) and tokens[idx] not in ("{", "}"):
                value = tokens[idx]
                idx += 1
            pending = stack[-1].add(key, value)
    if len(stack) != 1:
        raise ConfigError("unexpected end of input: unclosed '{'")
    return root


def _needs_quoting(s: str) -> bool:
    return s == "" or any(c in s for c in ' \t;{}"')


def _quote(s: str) -> str:
    if _needs_quoting(s):
        escaped = s.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return s


def dump_info(tree: PropertyTree, indent: int = 0) -> str:
    """Serialize ``tree`` back to INFO format (inverse of parse_info)."""
    lines: list[str] = []
    pad = "    " * indent
    for key, node in tree.children():
        head = f"{pad}{_quote(key)}"
        if node.value:
            head += f" {_quote(node.value)}"
        if len(node):
            lines.append(head + " {")
            lines.append(dump_info(node, indent + 1))
            lines.append(f"{pad}}}")
        else:
            lines.append(head)
    return "\n".join(line for line in lines if line != "")
