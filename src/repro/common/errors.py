"""Exception hierarchy for the DCDB reproduction.

All library errors derive from :class:`DCDBError` so callers can catch
one base type at API boundaries.  Subsystem-specific subclasses allow
targeted handling (e.g. retrying transport errors while letting
configuration errors abort start-up).
"""

from __future__ import annotations


class DCDBError(Exception):
    """Base class of all errors raised by this library."""


class ConfigError(DCDBError):
    """Raised for malformed or inconsistent configuration input.

    This covers property-tree parse failures, unknown plugin names,
    out-of-range sampling intervals and similar start-up problems.
    """


class TransportError(DCDBError):
    """Raised for MQTT protocol violations and transport failures."""


class StorageError(DCDBError):
    """Raised by storage backends for ingest/query failures."""


class NodeDownError(StorageError):
    """Raised when an operation reaches a storage node that is down.

    Emitted by the fault-injection layer's flaky node proxy
    (:class:`repro.faults.FlakyNode`) while the node is killed.  The
    cluster treats it like any other :class:`StorageError` — retry,
    failover to another replica, or queue a hinted handoff — but tests
    can match it to assert *why* an operation failed.
    """


class FaultInjectedError(StorageError):
    """Raised by fault-injection wrappers for a deliberately failed op.

    Distinct from organic :class:`StorageError` failures so chaos tests
    can assert that every observed failure was one they scheduled.
    """


class BackpressureError(StorageError):
    """Raised when a bounded ingest queue rejects new readings.

    Emitted by the Collect Agent's batching writer under the ``error``
    backpressure policy (and by ``put`` after the writer was stopped),
    so producers can distinguish "the pipeline is full" from a storage
    failure and apply their own shedding or retry policy.
    """


class QueryError(DCDBError):
    """Raised by libDCDB for invalid queries (unknown sensors, bad
    time ranges, malformed virtual-sensor expressions)."""


class PluginError(DCDBError):
    """Raised by Pusher plugins for acquisition failures.

    A :class:`PluginError` during a single sampling cycle is not fatal:
    the Pusher logs it and continues with the next cycle, matching
    DCDB's production behaviour where a flaky device must not take the
    whole collector down.
    """


class UnitError(DCDBError):
    """Raised when two units cannot be converted into one another."""
