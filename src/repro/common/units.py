"""Sensor units and automatic conversion.

DCDB's virtual sensors convert the units of underlying physical
sensors automatically (paper section 3.2): a virtual sensor summing a
``mW`` PDU channel and a ``kW`` rack meter must bring both to a common
base before adding.  The conversion machinery here mirrors DCDB's
``dcdb/unitconv``: a unit is a (dimension, scale) pair and conversion
within a dimension is multiplication by a scale ratio.

The catalogue covers the units that the paper's plugins emit: power,
energy, temperature, flow, bandwidth, event counts and utilization
fractions.  Temperature is affine (Celsius/Fahrenheit/Kelvin) and is
handled with explicit offset terms rather than bare ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import UnitError


@dataclass(frozen=True, slots=True)
class Unit:
    """A measurement unit.

    ``dimension`` names the physical quantity ("power", "energy", ...);
    two units are convertible iff their dimensions match.  ``scale``
    and ``offset`` map a value in this unit to the dimension's base
    unit via ``base = value * scale + offset``.
    """

    symbol: str
    dimension: str
    scale: float = 1.0
    offset: float = 0.0

    def to_base(self, value: float) -> float:
        """Convert ``value`` from this unit into the dimension base unit."""
        return value * self.scale + self.offset

    def from_base(self, value: float) -> float:
        """Convert ``value`` from the dimension base unit into this unit."""
        return (value - self.offset) / self.scale


_CATALOGUE: dict[str, Unit] = {}


def _register(unit: Unit) -> Unit:
    _CATALOGUE[unit.symbol] = unit
    return unit


# Power (base: watt)
_register(Unit("W", "power"))
_register(Unit("mW", "power", 1e-3))
_register(Unit("uW", "power", 1e-6))
_register(Unit("kW", "power", 1e3))
_register(Unit("MW", "power", 1e6))

# Energy (base: joule)
_register(Unit("J", "energy"))
_register(Unit("mJ", "energy", 1e-3))
_register(Unit("uJ", "energy", 1e-6))
_register(Unit("kJ", "energy", 1e3))
_register(Unit("Wh", "energy", 3600.0))
_register(Unit("kWh", "energy", 3.6e6))

# Temperature (base: kelvin)
_register(Unit("K", "temperature"))
_register(Unit("C", "temperature", 1.0, 273.15))
_register(Unit("mC", "temperature", 1e-3, 273.15))
_register(Unit("F", "temperature", 5.0 / 9.0, 255.3722222222222))

# Volumetric flow (base: cubic metre per second)
_register(Unit("m3/s", "flow"))
_register(Unit("m3/h", "flow", 1.0 / 3600.0))
_register(Unit("l/min", "flow", 1.0 / 60000.0))
_register(Unit("l/s", "flow", 1e-3))

# Data rate (base: byte per second)
_register(Unit("B/s", "bandwidth"))
_register(Unit("KB/s", "bandwidth", 1e3))
_register(Unit("MB/s", "bandwidth", 1e6))
_register(Unit("GB/s", "bandwidth", 1e9))

# Data volume (base: byte)
_register(Unit("B", "data"))
_register(Unit("KB", "data", 1e3))
_register(Unit("MB", "data", 1e6))
_register(Unit("GB", "data", 1e9))
_register(Unit("KiB", "data", 1024.0))
_register(Unit("MiB", "data", 1048576.0))

# Frequency (base: hertz)
_register(Unit("Hz", "frequency"))
_register(Unit("kHz", "frequency", 1e3))
_register(Unit("MHz", "frequency", 1e6))
_register(Unit("GHz", "frequency", 1e9))

# Dimensionless quantities: event counts, ratios, percentages.
_register(Unit("count", "dimensionless"))
_register(Unit("ratio", "dimensionless"))
_register(Unit("percent", "dimensionless", 1e-2))

# Time (base: second) — sensors occasionally report durations.
_register(Unit("s", "time"))
_register(Unit("ms", "time", 1e-3))
_register(Unit("us", "time", 1e-6))
_register(Unit("ns", "time", 1e-9))

# Electrical
_register(Unit("V", "voltage"))
_register(Unit("mV", "voltage", 1e-3))
_register(Unit("A", "current"))
_register(Unit("mA", "current", 1e-3))


def lookup(symbol: str) -> Unit:
    """Return the catalogue :class:`Unit` for ``symbol``.

    Raises :class:`UnitError` for unknown symbols; plugins registering
    device-specific units should call :func:`register_unit` first.
    """
    try:
        return _CATALOGUE[symbol]
    except KeyError:
        raise UnitError(f"unknown unit {symbol!r}") from None


def register_unit(unit: Unit) -> None:
    """Add a custom unit to the global catalogue.

    Re-registering an existing symbol with different parameters is an
    error: silently changing conversion factors mid-run would corrupt
    stored data interpretations.
    """
    existing = _CATALOGUE.get(unit.symbol)
    if existing is not None and existing != unit:
        raise UnitError(f"unit {unit.symbol!r} already registered with different parameters")
    _CATALOGUE[unit.symbol] = unit


class UnitConverter:
    """Converts values between two convertible units.

    Instances are cheap and cache the combined affine transform so the
    per-reading cost on query paths is one multiply-add.
    """

    __slots__ = ("src", "dst", "_scale", "_offset")

    def __init__(self, src: Unit, dst: Unit) -> None:
        if src.dimension != dst.dimension:
            raise UnitError(
                f"cannot convert {src.symbol!r} ({src.dimension}) "
                f"to {dst.symbol!r} ({dst.dimension})"
            )
        self.src = src
        self.dst = dst
        # base = v*s1 + o1 ; out = (base - o2)/s2  =>  out = v*(s1/s2) + (o1-o2)/s2
        self._scale = src.scale / dst.scale
        self._offset = (src.offset - dst.offset) / dst.scale

    def convert(self, value: float) -> float:
        """Convert a single value from ``src`` to ``dst`` units."""
        return value * self._scale + self._offset

    def __call__(self, value: float) -> float:
        return self.convert(value)


_CONVERTER_CACHE: dict[tuple[str, str], UnitConverter] = {}


def get_converter(src: str, dst: str) -> UnitConverter:
    """Return a (cached) converter between two unit symbols."""
    key = (src, dst)
    conv = _CONVERTER_CACHE.get(key)
    if conv is None:
        conv = UnitConverter(lookup(src), lookup(dst))
        _CONVERTER_CACHE[key] = conv
    return conv


def convert(value: float, src: str, dst: str) -> float:
    """Convert ``value`` from unit ``src`` to unit ``dst``."""
    return get_converter(src, dst).convert(value)
