"""Timestamp handling and read-interval alignment.

DCDB stores every reading with a nanosecond UNIX timestamp and
synchronizes sensor reads *across plugins and Pushers* so that parallel
applications on different nodes are interrupted at the same instant
(paper section 4.1).  The synchronization primitive is simple: every
group's next read time is the next multiple of its sampling interval on
the global (NTP-disciplined) clock.  Two groups with the same interval
therefore always fire together, regardless of when they were started.

We reproduce that arithmetic here.  Timestamps are plain ``int``
nanoseconds — cheap to produce, exact to compare, and trivially
serializable — wrapped in a tiny value class only where a distinct
type helps readability.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

NS_PER_SEC = 1_000_000_000
NS_PER_MS = 1_000_000
NS_PER_US = 1_000


def now_ns() -> int:
    """Current wall-clock time as integer nanoseconds since the epoch."""
    return time.time_ns()


def from_seconds(seconds: float) -> int:
    """Convert floating-point seconds to integer nanoseconds."""
    return int(round(seconds * NS_PER_SEC))


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to floating-point seconds."""
    return ns / NS_PER_SEC


def from_millis(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(ms * NS_PER_MS))


def align_interval(t_ns: int, interval_ns: int) -> int:
    """Return the first multiple of ``interval_ns`` at or after ``t_ns``.

    This is the synchronized-read rule: a group with a 1 s interval
    started at 12:00:00.3 first fires at 12:00:01.0 and then at every
    whole second, so it is phase-aligned with every other 1 s group in
    the facility.

    Raises :class:`ValueError` for non-positive intervals.
    """
    if interval_ns <= 0:
        raise ValueError(f"interval must be positive, got {interval_ns}")
    remainder = t_ns % interval_ns
    if remainder == 0:
        return t_ns
    return t_ns + (interval_ns - remainder)


def next_read_time(t_ns: int, interval_ns: int) -> int:
    """Return the first multiple of ``interval_ns`` strictly after ``t_ns``."""
    aligned = align_interval(t_ns, interval_ns)
    if aligned == t_ns:
        return t_ns + interval_ns
    return aligned


@dataclass(frozen=True, slots=True, order=True)
class Timestamp:
    """A nanosecond timestamp with convenience constructors.

    Most hot paths pass bare ``int`` nanoseconds; :class:`Timestamp` is
    the user-facing representation in query results and CLI output.
    """

    ns: int

    @classmethod
    def now(cls) -> "Timestamp":
        return cls(now_ns())

    @classmethod
    def from_seconds(cls, seconds: float) -> "Timestamp":
        return cls(from_seconds(seconds))

    def to_seconds(self) -> float:
        return to_seconds(self.ns)

    def isoformat(self) -> str:
        """Render as an ISO-8601 UTC string with nanosecond suffix."""
        secs, frac = divmod(self.ns, NS_PER_SEC)
        base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(secs))
        return f"{base}.{frac:09d}Z"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.isoformat()


class SimClock:
    """A manually-advanced clock for deterministic simulation and tests.

    Components take a ``clock`` callable returning nanoseconds; in
    production that is :func:`now_ns`, in simulation it is an instance
    of this class, letting tests drive sampling loops without sleeping.
    """

    __slots__ = ("_now",)

    def __init__(self, start_ns: int = 0) -> None:
        self._now = start_ns

    def __call__(self) -> int:
        return self._now

    def advance(self, delta_ns: int) -> int:
        """Move the clock forward by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError("cannot move a SimClock backwards")
        self._now += delta_ns
        return self._now

    def set(self, t_ns: int) -> None:
        """Jump directly to ``t_ns`` (must not move backwards)."""
        if t_ns < self._now:
            raise ValueError("cannot move a SimClock backwards")
        self._now = t_ns
