"""Minimal JSON-over-HTTP server and client helpers.

DCDB's Pushers and Collect Agents expose RESTful APIs (paper
section 5.3) for configuration tasks and sensor-cache access.  This
module is the shared plumbing: a threaded HTTP server with a simple
route table returning JSON, and a blocking client for tools and tests.
Kept deliberately tiny — routing and (de)serialization only, no
framework semantics.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.observability import MetricsRegistry

#: A route handler: (path_params, query_params, body) -> (status, payload).
RouteHandler = Callable[[dict, dict, bytes], tuple[int, object]]

#: Request-duration buckets tuned for a local management API.
_DURATION_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class RawResponse:
    """A non-JSON handler payload: raw bytes with an explicit media type.

    Handlers normally return JSON-serializable objects; returning a
    ``RawResponse`` instead sends the body verbatim — used by the
    ``/metrics`` routes to speak the Prometheus text format.
    """

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes | str, content_type: str = "text/plain; charset=utf-8") -> None:
        self.body = body.encode("utf-8") if isinstance(body, str) else body
        self.content_type = content_type


class JsonHttpServer:
    """A route-table HTTP server speaking JSON.

    Routes are registered as ``(method, pattern)`` where pattern
    segments beginning with ``:`` capture path parameters::

        server.route("GET", "/plugins", list_plugins)
        server.route("POST", "/plugins/:name/start", start_plugin)

    Handlers return ``(status_code, json_serializable)``.  Exceptions
    become 500s with the error message in the body; this API is for
    trusted management networks, matching DCDB's deployment model.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._routes: list[tuple[str, list[str], str, RouteHandler]] = []
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests = self.metrics.counter(
            "dcdb_http_requests_total",
            "REST API requests served",
            ("method", "route", "status"),
        )
        self._durations = self.metrics.histogram(
            "dcdb_http_request_duration_seconds",
            "REST API request handling time",
            ("route",),
            buckets=_DURATION_BUCKETS,
        )

    def route(self, method: str, pattern: str, handler: RouteHandler) -> None:
        segments = [s for s in pattern.split("/") if s]
        normalized = "/" + "/".join(segments)
        self._routes.append((method.upper(), segments, normalized, handler))

    def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, object]:
        parsed = urllib.parse.urlparse(path)
        segments = [s for s in parsed.path.split("/") if s]
        query = {k: v[0] for k, v in urllib.parse.parse_qs(parsed.query).items()}
        started = time.perf_counter()
        for route_method, pattern, route_label, handler in self._routes:
            if route_method != method or len(pattern) != len(segments):
                continue
            params: dict[str, str] = {}
            matched = True
            for pat, seg in zip(pattern, segments):
                if pat.startswith(":"):
                    params[pat[1:]] = urllib.parse.unquote(seg)
                elif pat != seg:
                    matched = False
                    break
            if matched:
                try:
                    status, payload = handler(params, query, body)
                except Exception as exc:  # noqa: BLE001 - surfaced as HTTP 500
                    status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
                self._durations.labels(route=route_label).observe(
                    time.perf_counter() - started
                )
                self._requests.labels(
                    method=method, route=route_label, status=status
                ).inc()
                return status, payload
        self._requests.labels(method=method, route="<unmatched>", status=404).inc()
        return 404, {"error": f"no route for {method} {parsed.path}"}

    def start(self) -> None:
        if self._httpd is not None:
            return
        dispatch = self._dispatch

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _respond(self, method: str) -> None:
                length = int(self.headers.get("Content-Length", "0") or "0")
                body = self.rfile.read(length) if length else b""
                status, payload = dispatch(method, self.path, body)
                if isinstance(payload, RawResponse):
                    data = payload.body
                    content_type = payload.content_type
                else:
                    data = json.dumps(payload).encode("utf-8")
                    content_type = "application/json"
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                self._respond("GET")

            def do_POST(self) -> None:  # noqa: N802
                self._respond("POST")

            def do_PUT(self) -> None:  # noqa: N802
                self._respond("PUT")

            def do_DELETE(self) -> None:  # noqa: N802
                self._respond("DELETE")

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # management API; request logging handled upstream

        self._httpd = ThreadingHTTPServer((self.host, self._requested_port), Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="rest-api", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "JsonHttpServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def http_text(method: str, url: str, timeout: float = 5.0) -> tuple[int, str, str]:
    """Perform one HTTP request; returns (status, body text, content type)."""
    request = urllib.request.Request(url, method=method.upper())
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            content_type = response.headers.get("Content-Type", "")
            return response.status, response.read().decode("utf-8"), content_type
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8", "replace"), ""


def http_json(
    method: str, url: str, body: object | None = None, timeout: float = 5.0
) -> tuple[int, object]:
    """Perform one JSON HTTP request; returns (status, decoded body)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method.upper())
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"null")
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read() or b"null")
        except json.JSONDecodeError:
            payload = None
        return exc.code, payload
