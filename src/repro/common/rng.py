"""Deterministic random-stream management for the simulation substrate.

The paper's evaluation repeats every benchmark run 10 times and reports
medians (section 6.1).  To make our simulated reproduction both
repeatable and statistically honest, every stochastic component draws
from its own named substream derived from a single experiment seed.
Two runs with the same seed produce identical traces; changing the
seed yields an independent replicate.

Substreams are derived with ``numpy.random.SeedSequence.spawn``-style
keying on (seed, name), so adding a new component never perturbs the
streams of existing ones — a property worth preserving when comparing
ablations.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngFactory:
    """Derives independent named random generators from one seed."""

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh Generator for substream ``name``.

        The same (seed, name) pair always yields an identical stream.
        """
        key = zlib.crc32(name.encode("utf-8"))
        ss = np.random.SeedSequence([self.seed, key])
        return np.random.default_rng(ss)

    def spawn(self, name: str) -> "RngFactory":
        """Derive a child factory, e.g. one per simulated node."""
        key = zlib.crc32(name.encode("utf-8"))
        return RngFactory((self.seed * 0x9E3779B1 + key) & 0xFFFFFFFF)
