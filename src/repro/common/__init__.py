"""Shared infrastructure for the DCDB reproduction.

This package hosts the building blocks every other subsystem relies on:

* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.timeutil` -- nanosecond timestamps and interval
  alignment helpers (DCDB synchronizes sensor reads across Pushers via
  NTP; we reproduce the alignment arithmetic).
* :mod:`repro.common.units` -- the unit/scaling system used by sensors
  and virtual sensors for automatic conversion.
* :mod:`repro.common.proptree` -- a parser for the boost-property-tree
  style ``INFO`` configuration format that DCDB's Pushers use.
* :mod:`repro.common.rng` -- deterministic random-stream management for
  the simulation substrate.
"""

from repro.common.errors import (
    DCDBError,
    ConfigError,
    TransportError,
    StorageError,
    QueryError,
    PluginError,
    UnitError,
)
from repro.common.timeutil import (
    NS_PER_SEC,
    NS_PER_MS,
    NS_PER_US,
    Timestamp,
    align_interval,
    from_seconds,
    to_seconds,
)
from repro.common.units import Unit, UnitConverter, get_converter
from repro.common.proptree import PropertyTree, parse_info, dump_info

__all__ = [
    "DCDBError",
    "ConfigError",
    "TransportError",
    "StorageError",
    "QueryError",
    "PluginError",
    "UnitError",
    "NS_PER_SEC",
    "NS_PER_MS",
    "NS_PER_US",
    "Timestamp",
    "align_interval",
    "from_seconds",
    "to_seconds",
    "Unit",
    "UnitConverter",
    "get_converter",
    "PropertyTree",
    "parse_info",
    "dump_info",
]
