"""The analytics manager: operator hosting and daemon integration.

Runs a set of :class:`~repro.analytics.operator.StreamOperator`
instances against live readings, "at the Collect Agent or Pusher
level" (paper section 9):

* :meth:`AnalyticsManager.attach_to_agent` hooks the Collect Agent's
  broker, seeing every reading the moment it is ingested.  Operator
  outputs are stored in the same backend under
  ``/analytics/<operator>/<suffix>`` topics (resolvable via libDCDB
  like any sensor).
* :meth:`AnalyticsManager.attach_to_pusher` hooks the Pusher's collect
  path, seeing readings before they are sent; outputs are published as
  additional sensors through the Pusher's own MQTT client — the
  in-situ preprocessing mode.

Alarm-flagged outputs are additionally recorded in a bounded alarm
log, queryable by management tooling.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass

from repro.core import payload as payload_mod
from repro.core.sensor import SensorReading
from repro.analytics.operator import OutputReading, StreamOperator

logger = logging.getLogger(__name__)

ANALYTICS_PREFIX = "/analytics"


@dataclass(frozen=True, slots=True)
class AlarmEvent:
    """One recorded alarm transition/anomaly."""

    timestamp: int
    operator: str
    topic: str
    value: int
    message: str


class AnalyticsManager:
    """Hosts operators and routes live readings through them."""

    def __init__(self, max_alarms: int = 1000) -> None:
        self._operators: list[StreamOperator] = []
        self._lock = threading.Lock()
        self.alarms: deque[AlarmEvent] = deque(maxlen=max_alarms)
        self.readings_processed = 0
        self.outputs_emitted = 0
        # Set by the attach_* methods.
        self._sink = None

    # -- operator management ----------------------------------------------

    def add_operator(self, operator: StreamOperator) -> StreamOperator:
        with self._lock:
            if any(op.name == operator.name for op in self._operators):
                raise ValueError(f"operator {operator.name!r} already registered")
            self._operators.append(operator)
        return operator

    def remove_operator(self, name: str) -> bool:
        with self._lock:
            before = len(self._operators)
            self._operators = [op for op in self._operators if op.name != name]
            return len(self._operators) != before

    def operators(self) -> list[StreamOperator]:
        with self._lock:
            return list(self._operators)

    def reset(self) -> None:
        with self._lock:
            for operator in self._operators:
                operator.reset()
        self.alarms.clear()

    # -- event routing ------------------------------------------------------

    def feed(self, topic: str, reading: SensorReading) -> list[tuple[str, OutputReading]]:
        """Route one live reading; returns (full output topic, output).

        Operator outputs never re-enter the operators (topics under
        the analytics prefix are skipped), so chains of operators must
        be composed explicitly rather than via accidental feedback.
        """
        if topic.startswith(ANALYTICS_PREFIX):
            return []
        self.readings_processed += 1
        emitted: list[tuple[str, OutputReading]] = []
        with self._lock:
            operators = list(self._operators)
        for operator in operators:
            if not operator.matches(topic):
                continue
            try:
                outputs = operator.process(topic, reading)
            except Exception as exc:  # noqa: BLE001 - analytics must not kill ingest
                logger.warning("operator %s failed on %s: %s", operator.name, topic, exc)
                continue
            for output in outputs:
                full_topic = f"{ANALYTICS_PREFIX}/{operator.name}/{output.suffix}"
                emitted.append((full_topic, output))
                if output.alarm:
                    self.alarms.append(
                        AlarmEvent(
                            timestamp=output.reading.timestamp,
                            operator=operator.name,
                            topic=topic,
                            value=output.reading.value,
                            message=output.message,
                        )
                    )
        self.outputs_emitted += len(emitted)
        if self._sink is not None:
            for full_topic, output in emitted:
                self._sink(full_topic, output.reading)
        return emitted

    # -- daemon integration ----------------------------------------------------

    def attach_to_agent(self, agent) -> None:
        """Run at the Collect Agent: see every ingested reading, store
        derived readings in the agent's backend."""

        def sink(topic: str, reading: SensorReading) -> None:
            sid = agent.sid_mapper.sid_for_topic(topic)
            known = agent.backend.get_metadata(f"sidmap{topic}")
            if known is None:
                agent.backend.put_metadata(f"sidmap{topic}", sid.hex())
            agent.backend.insert(sid, reading.timestamp, reading.value)

        self._sink = sink

        def hook(client_id: str, packet) -> None:
            if packet.topic.startswith("$"):
                return  # system topics (metadata announcements etc.)
            try:
                readings = payload_mod.decode_readings(packet.payload)
            except Exception:  # noqa: BLE001 - agent logs the decode error itself
                return
            for reading in readings:
                self.feed(packet.topic, reading)

        agent.broker.add_publish_hook(hook)

    def attach_to_pusher(self, pusher) -> None:
        """Run at the Pusher: preprocess readings in-situ, publish
        derived sensors through the Pusher's MQTT client."""

        def sink(topic: str, reading: SensorReading) -> None:
            try:
                pusher.client.publish(
                    topic, payload_mod.encode_readings([reading]), qos=pusher.config.qos
                )
            except Exception as exc:  # noqa: BLE001
                logger.warning("analytics publish of %s failed: %s", topic, exc)

        self._sink = sink
        original_collect = pusher._collect

        def wrapped_collect(group, timestamp):
            original_collect(group, timestamp)
            for sensor in group.sensors:
                latest = sensor.cache.latest()
                if latest is not None and latest.timestamp == timestamp:
                    self.feed(pusher.topic_of(sensor), latest)

        pusher._collect = wrapped_collect

    # -- introspection -------------------------------------------------------------

    def status(self) -> dict:
        return {
            "operators": [
                {
                    "name": op.name,
                    "type": type(op).__name__,
                    "inputs": op.inputs,
                    "eventsIn": op.events_in,
                    "eventsOut": op.events_out,
                }
                for op in self.operators()
            ],
            "readingsProcessed": self.readings_processed,
            "outputsEmitted": self.outputs_emitted,
            "alarms": len(self.alarms),
        }
