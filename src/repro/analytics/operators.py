"""Built-in streaming operators.

Each implements one of the online-analytics building blocks the paper
names (aggregation, smoothing, anomaly detection, alarms) as a
:class:`~repro.analytics.operator.StreamOperator`.  All state is
bounded (fixed windows / scalars per sensor), as required of code
running inline in the monitoring daemons.
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.sensor import SensorReading
from repro.analytics.operator import OutputReading, StreamOperator, sanitize_suffix


class MovingAverage(StreamOperator):
    """Sliding-window mean per input sensor.

    Emits ``<input>_avg`` with the mean of the last ``window`` values,
    once the window is full — a plug-in smoother for noisy sensors.
    """

    def __init__(self, name: str, inputs: list[str], window: int = 10) -> None:
        super().__init__(name, inputs)
        if window < 1:
            raise ConfigError("window must be >= 1")
        self.window = window
        self._values: dict[str, deque[int]] = {}

    def process(self, topic: str, reading: SensorReading) -> list[OutputReading]:
        self.events_in += 1
        values = self._values.setdefault(topic, deque(maxlen=self.window))
        values.append(reading.value)
        if len(values) < self.window:
            return []
        self.events_out += 1
        mean = int(round(sum(values) / len(values)))
        return [
            OutputReading(
                f"{sanitize_suffix(topic)}_avg", SensorReading(reading.timestamp, mean)
            )
        ]

    def reset(self) -> None:
        self._values.clear()


class EmaSmoother(StreamOperator):
    """Exponential moving average per input sensor.

    ``alpha`` is the new-sample weight; smaller = smoother.  Emits
    from the second sample on.
    """

    def __init__(self, name: str, inputs: list[str], alpha: float = 0.2) -> None:
        super().__init__(name, inputs)
        if not 0.0 < alpha <= 1.0:
            raise ConfigError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._state: dict[str, float] = {}

    def process(self, topic: str, reading: SensorReading) -> list[OutputReading]:
        self.events_in += 1
        previous = self._state.get(topic)
        if previous is None:
            self._state[topic] = float(reading.value)
            return []
        smoothed = self.alpha * reading.value + (1.0 - self.alpha) * previous
        self._state[topic] = smoothed
        self.events_out += 1
        return [
            OutputReading(
                f"{sanitize_suffix(topic)}_ema",
                SensorReading(reading.timestamp, int(round(smoothed))),
            )
        ]

    def reset(self) -> None:
        self._state.clear()


class RateOfChange(StreamOperator):
    """Finite-difference rate per input sensor, in value-units/second.

    Turns monotonic meters into rates online (energy -> power) without
    waiting for a query-time derivative.  ``scale`` multiplies the
    rate before integer rounding (e.g. 1000 for milli-resolution).
    """

    def __init__(self, name: str, inputs: list[str], scale: float = 1.0) -> None:
        super().__init__(name, inputs)
        self.scale = scale
        self._last: dict[str, SensorReading] = {}

    def process(self, topic: str, reading: SensorReading) -> list[OutputReading]:
        self.events_in += 1
        last = self._last.get(topic)
        self._last[topic] = reading
        if last is None or reading.timestamp <= last.timestamp:
            return []
        rate = (
            (reading.value - last.value)
            / ((reading.timestamp - last.timestamp) / NS_PER_SEC)
        )
        self.events_out += 1
        return [
            OutputReading(
                f"{sanitize_suffix(topic)}_rate",
                SensorReading(reading.timestamp, int(round(rate * self.scale))),
            )
        ]

    def reset(self) -> None:
        self._last.clear()


class Aggregator(StreamOperator):
    """Cross-sensor aggregation per time bucket.

    Collects one value per matching sensor within each
    ``bucket_ns``-aligned window and emits the aggregate under
    ``output`` when the *next* bucket opens (sensors are synchronized
    in DCDB, so a bucket is complete once a later timestamp arrives).
    This is the online form of the virtual-sensor sum — e.g. live
    total power of a rack for a power-capping control loop.
    """

    FUNCS = ("sum", "avg", "min", "max")

    def __init__(
        self,
        name: str,
        inputs: list[str],
        output: str = "aggregate",
        func: str = "sum",
        bucket_ns: int = NS_PER_SEC,
        emit_partial: bool = True,
    ) -> None:
        super().__init__(name, inputs)
        if func not in self.FUNCS:
            raise ConfigError(f"unknown aggregation {func!r}")
        if bucket_ns <= 0:
            raise ConfigError("bucket must be positive")
        self.output = output
        self.func = func
        self.bucket_ns = bucket_ns
        self.emit_partial = emit_partial
        self._bucket: int | None = None
        self._values: dict[str, int] = {}

    def _emit(self, sealed: bool = True) -> list[OutputReading]:
        if self._bucket is None or not self._values:
            return []
        values = list(self._values.values())
        if self.func == "sum":
            out = sum(values)
        elif self.func == "avg":
            out = sum(values) / len(values)
        elif self.func == "min":
            out = min(values)
        else:
            out = max(values)
        timestamp = (self._bucket + 1) * self.bucket_ns
        self.events_out += 1
        self._values.clear()
        return [
            OutputReading(
                self.output,
                SensorReading(timestamp, int(round(out))),
                sealed=sealed,
            )
        ]

    def process(self, topic: str, reading: SensorReading) -> list[OutputReading]:
        self.events_in += 1
        bucket = reading.timestamp // self.bucket_ns
        emitted: list[OutputReading] = []
        if self._bucket is not None and bucket > self._bucket:
            emitted = self._emit()
        if self._bucket is None or bucket > self._bucket:
            self._bucket = bucket
        if bucket == self._bucket:
            self._values[topic] = reading.value  # last value per sensor wins
        return emitted

    def flush(self) -> list[OutputReading]:
        """Emit the current bucket even though no later reading sealed it.

        The result is marked ``sealed=False`` — the bucket may still be
        missing sensors.  With ``emit_partial=False`` the open bucket is
        discarded instead, for consumers that must only ever see final
        aggregates.
        """
        if not self.emit_partial:
            self._bucket = None
            self._values.clear()
            return []
        out = self._emit(sealed=False)
        self._bucket = None
        return out

    def reset(self) -> None:
        self._bucket = None
        self._values.clear()


class ZScoreDetector(StreamOperator):
    """Online anomaly detection via rolling mean and deviation.

    Keeps a per-sensor window; a reading further than ``threshold``
    standard deviations from the window mean emits an anomaly flag
    reading (value 1) marked as an alarm.  Anomalous samples are not
    folded into the statistics, so a fault does not normalize itself.
    """

    def __init__(
        self,
        name: str,
        inputs: list[str],
        window: int = 30,
        threshold: float = 4.0,
        min_sigma: float = 1e-9,
    ) -> None:
        super().__init__(name, inputs)
        if window < 3:
            raise ConfigError("window must be >= 3")
        self.window = window
        self.threshold = threshold
        self.min_sigma = min_sigma
        self._values: dict[str, deque[float]] = {}
        self.anomalies = 0

    def process(self, topic: str, reading: SensorReading) -> list[OutputReading]:
        self.events_in += 1
        values = self._values.setdefault(topic, deque(maxlen=self.window))
        if len(values) >= max(3, self.window // 2):
            n = len(values)
            mean = sum(values) / n
            variance = sum((v - mean) ** 2 for v in values) / n
            sigma = max(variance**0.5, self.min_sigma, abs(mean) * 1e-6)
            z = abs(reading.value - mean) / sigma
            if z > self.threshold:
                self.anomalies += 1
                self.events_out += 1
                return [
                    OutputReading(
                        f"{sanitize_suffix(topic)}_anomaly",
                        SensorReading(reading.timestamp, 1),
                        alarm=True,
                        message=(
                            f"{topic}: value {reading.value} deviates "
                            f"{z:.1f} sigma from rolling mean {mean:.1f}"
                        ),
                    )
                ]
        values.append(float(reading.value))
        return []

    def reset(self) -> None:
        self._values.clear()


class ThresholdAlarm(StreamOperator):
    """Hysteresis alarm on a sensor's value.

    Raises when the value crosses ``high`` and clears only when it
    falls below ``low`` (hysteresis prevents flapping on a noisy
    signal).  Emits state *transitions* as alarm readings (1 = raised,
    0 = cleared) — the paper's power-band use case: "as soon as power
    exceeds a given bound, corrective actions must be taken".
    """

    def __init__(
        self, name: str, inputs: list[str], high: float, low: float | None = None
    ) -> None:
        super().__init__(name, inputs)
        self.high = high
        self.low = low if low is not None else high * 0.95
        if self.low > self.high:
            raise ConfigError("low threshold must not exceed high threshold")
        self._raised: dict[str, bool] = {}
        self.transitions = 0

    def process(self, topic: str, reading: SensorReading) -> list[OutputReading]:
        self.events_in += 1
        raised = self._raised.get(topic, False)
        if not raised and reading.value > self.high:
            self._raised[topic] = True
            self.transitions += 1
            self.events_out += 1
            return [
                OutputReading(
                    f"{sanitize_suffix(topic)}_alarm",
                    SensorReading(reading.timestamp, 1),
                    alarm=True,
                    message=f"{topic}: {reading.value} exceeded {self.high}",
                )
            ]
        if raised and reading.value < self.low:
            self._raised[topic] = False
            self.transitions += 1
            self.events_out += 1
            return [
                OutputReading(
                    f"{sanitize_suffix(topic)}_alarm",
                    SensorReading(reading.timestamp, 0),
                    alarm=True,
                    message=f"{topic}: recovered below {self.low}",
                )
            ]
        return []

    def reset(self) -> None:
        self._raised.clear()
