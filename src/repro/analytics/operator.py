"""The streaming-operator abstraction.

A :class:`StreamOperator` is the unit of online analytics: it declares
MQTT-style input patterns, receives every live reading whose topic
matches, and returns derived readings.  Operators are deliberately
synchronous and per-event — the Collect Agent's ingest path calls them
inline, mirroring how DCDB's analytics framework runs operators inside
the monitoring daemons rather than as external consumers.

Derived readings carry relative output topics (joined under the
operator's namespace by the manager), so the same operator class can
be instantiated several times without topic collisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sensor import SensorReading
from repro.mqtt.topics import topic_matches, validate_filter


@dataclass(frozen=True, slots=True)
class OutputReading:
    """One derived data point emitted by an operator.

    ``suffix`` is the output topic relative to the operator's
    namespace (``/analytics/<operator-name>``); ``alarm`` marks
    readings that should additionally be recorded as alarm events.
    ``sealed`` is False for values computed from an incomplete input
    window — e.g. an :class:`~repro.analytics.operators.Aggregator`
    bucket force-emitted by ``flush()`` before a later reading closed
    it — so downstream consumers can distinguish final aggregates from
    best-effort partials.
    """

    suffix: str
    reading: SensorReading
    alarm: bool = False
    message: str = ""
    sealed: bool = True


class StreamOperator:
    """Base class of online analytics operators.

    Subclasses implement :meth:`process`; the framework guarantees it
    is called once per matching input reading, in arrival order per
    sensor.  State is per-operator-instance; operators needing
    per-sensor state key it by topic.
    """

    def __init__(self, name: str, inputs: list[str]) -> None:
        if not name or "/" in name:
            raise ValueError(f"operator name {name!r} must be a single level")
        for pattern in inputs:
            validate_filter(pattern)
        self.name = name
        self.inputs = list(inputs)
        self.events_in = 0
        self.events_out = 0

    def matches(self, topic: str) -> bool:
        """True if this operator consumes ``topic``."""
        return any(topic_matches(pattern, topic) for pattern in self.inputs)

    # -- to be provided by concrete operators ----------------------------

    def process(self, topic: str, reading: SensorReading) -> list[OutputReading]:
        """Consume one live reading; return derived readings."""
        raise NotImplementedError

    # -- optional lifecycle ------------------------------------------------

    def reset(self) -> None:
        """Drop accumulated state (manager restart)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, inputs={self.inputs})"


def sanitize_suffix(topic: str) -> str:
    """Derive a safe output suffix from an input topic.

    ``/hpc/rack0/node1/power`` becomes ``hpc_rack0_node1_power`` — one
    hierarchy level, so operator outputs stay flat under their
    namespace regardless of input depth (the 8-level SID budget is
    tight and operator outputs live two levels deep already).
    """
    return topic.strip("/").replace("/", "_")
