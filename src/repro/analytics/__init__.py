"""Streaming data-analytics layer (the paper's future work, section 9).

Paper: *"we plan to implement a streaming data analytics layer
highly-integrated in our framework, which will offer novel
abstractions to aid in the implementation of algorithms for many data
analytics applications in HPC, such as energy efficiency optimization
or anomaly detection.  This framework will be able to fetch live
sensor data and perform online data analytics at the Collect Agent or
Pusher level."*  (In the DCDB lineage this became the Wintermute
framework; we implement the architecture the paper sketches.)

Abstractions:

* :class:`~repro.analytics.operator.StreamOperator` — consumes live
  ``(topic, reading)`` events matched by MQTT-style input patterns and
  emits derived readings under its own output topics.
* :class:`~repro.analytics.manager.AnalyticsManager` — hosts a set of
  operators, attaches to a Pusher (via its collect hook) or a Collect
  Agent (via the broker's publish hook), routes events, stores and/or
  re-publishes operator outputs, and keeps the alarm log.

Built-in operators (:mod:`repro.analytics.operators`):

==================  =================================================
``MovingAverage``   sliding-window mean per input sensor
``EmaSmoother``     exponential smoothing per input sensor
``RateOfChange``    per-reading finite-difference rate (units/s)
``Aggregator``      sum/avg/min/max across sensors per time bucket
``ZScoreDetector``  online anomaly detection (rolling mean ± k·sigma)
``ThresholdAlarm``  hysteresis alarm raising/clearing alarm events
==================  =================================================
"""

from repro.analytics.operator import StreamOperator, OutputReading
from repro.analytics.manager import AnalyticsManager, AlarmEvent
from repro.analytics.config import manager_from_config, build_operator
from repro.analytics.operators import (
    MovingAverage,
    EmaSmoother,
    RateOfChange,
    Aggregator,
    ZScoreDetector,
    ThresholdAlarm,
)

__all__ = [
    "StreamOperator",
    "OutputReading",
    "manager_from_config",
    "build_operator",
    "AnalyticsManager",
    "AlarmEvent",
    "MovingAverage",
    "EmaSmoother",
    "RateOfChange",
    "Aggregator",
    "ZScoreDetector",
    "ThresholdAlarm",
]
