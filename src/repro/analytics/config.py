"""Configuration-file-driven analytics.

Operators configure like Pusher plugins, in the same property-tree
INFO format (keeping the "intuitive property tree format" promise of
paper section 4.1 for the analytics layer too)::

    operator rack_power {
        type    aggregator
        input   /hpc/rack0/+/power
        input   /hpc/rack1/+/power
        output  total
        func    sum
        bucket  1000            ; ms
    }
    operator smooth_temps {
        type    ema
        input   /hpc/+/+/temp
        alpha   0.1
    }
    operator overheat {
        type    threshold
        input   /hpc/+/+/temp
        high    90000
        low     85000
    }
    operator weird_power {
        type    zscore
        input   /hpc/#
        window  60
        threshold 5.0
    }
    operator power_rate {
        type    rate
        input   /hpc/+/+/energy
        scale   1000
    }
    operator avg_power {
        type    movingavg
        input   /hpc/+/+/power
        window  10
    }

:func:`manager_from_config` builds a fully-populated
:class:`~repro.analytics.manager.AnalyticsManager` from such text.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.proptree import PropertyTree, parse_info
from repro.common.timeutil import NS_PER_MS
from repro.analytics.manager import AnalyticsManager
from repro.analytics.operator import StreamOperator
from repro.analytics.operators import (
    Aggregator,
    EmaSmoother,
    MovingAverage,
    RateOfChange,
    ThresholdAlarm,
    ZScoreDetector,
)


def _inputs_of(node: PropertyTree, name: str) -> list[str]:
    inputs = [child.value for key, child in node.children("input")]
    if not inputs:
        raise ConfigError(f"operator {name!r} declares no inputs")
    return inputs


def build_operator(name: str, node: PropertyTree) -> StreamOperator:
    """Construct one operator from its config block."""
    op_type = node.get("type")
    if op_type is None:
        raise ConfigError(f"operator {name!r} has no type")
    inputs = _inputs_of(node, name)
    if op_type == "movingavg":
        return MovingAverage(name, inputs, window=node.get_int("window", 10))
    if op_type == "ema":
        return EmaSmoother(name, inputs, alpha=node.get_float("alpha", 0.2))
    if op_type == "rate":
        return RateOfChange(name, inputs, scale=node.get_float("scale", 1.0))
    if op_type == "aggregator":
        return Aggregator(
            name,
            inputs,
            output=node.get("output", "aggregate"),
            func=node.get("func", "sum"),
            bucket_ns=node.get_int("bucket", 1000) * NS_PER_MS,
        )
    if op_type == "zscore":
        return ZScoreDetector(
            name,
            inputs,
            window=node.get_int("window", 30),
            threshold=node.get_float("threshold", 4.0),
        )
    if op_type == "threshold":
        high = node.get_float("high")
        if high is None:
            raise ConfigError(f"threshold operator {name!r} needs a high value")
        return ThresholdAlarm(name, inputs, high=high, low=node.get_float("low"))
    raise ConfigError(f"operator {name!r}: unknown type {op_type!r}")


def manager_from_config(source: str | PropertyTree) -> AnalyticsManager:
    """Build an :class:`AnalyticsManager` from INFO text or a tree."""
    tree = parse_info(source) if isinstance(source, str) else source
    global_cfg = tree.child("global")
    max_alarms = (
        global_cfg.get_int("maxAlarms", 1000) if global_cfg is not None else 1000
    )
    manager = AnalyticsManager(max_alarms=max_alarms)
    for _key, node in tree.children("operator"):
        name = node.value
        if not name:
            raise ConfigError("operator block without a name")
        manager.add_operator(build_operator(name, node))
    return manager
