"""Kernel density estimation for application characterization.

Figure 10 of the paper shows "the fitted probability density function"
of each application's instructions-per-Watt time series.  These
helpers compute the same curves (Gaussian KDE via scipy) and extract
modality — the property distinguishing LAMMPS/AMG ("multiple trends")
from Kripke/Quicksilver (single dominant mode).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.common.errors import QueryError


def kde_pdf(
    samples: np.ndarray, grid: np.ndarray | None = None, points: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian KDE of ``samples``; returns (grid, density).

    When ``grid`` is omitted, one spanning the sample range with 10 %
    margins is built.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size < 3:
        raise QueryError("KDE needs at least three samples")
    if samples.std() == 0:
        raise QueryError("KDE of a constant series is degenerate")
    kde = stats.gaussian_kde(samples)
    if grid is None:
        lo, hi = samples.min(), samples.max()
        margin = 0.1 * (hi - lo)
        grid = np.linspace(lo - margin, hi + margin, points)
    return grid, kde(grid)


def distribution_modes(
    samples: np.ndarray, points: int = 512, min_prominence: float = 0.08
) -> list[float]:
    """Locations of the KDE's local maxima (distribution modes).

    A mode must rise ``min_prominence`` of the global peak above its
    surrounding minima to count, filtering noise wiggles.  Used to
    assert Figure 10's modality: multimodal LAMMPS/AMG vs unimodal
    Kripke/Quicksilver.
    """
    grid, density = kde_pdf(samples, points=points)
    peak = density.max()
    modes: list[float] = []
    for i in range(1, len(density) - 1):
        if density[i] >= density[i - 1] and density[i] > density[i + 1]:
            # Prominence: height above the higher of the two flanking
            # minima reachable without climbing over a higher peak.
            left_min = density[:i].min() if i > 0 else density[i]
            right_min = density[i + 1 :].min() if i + 1 < len(density) else density[i]
            prominence = density[i] - max(left_min, right_min)
            if prominence >= min_prominence * peak:
                modes.append(float(grid[i]))
    return modes
