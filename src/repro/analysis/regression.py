"""Linear regression with goodness-of-fit.

Backs Figure 7's performance-scaling analysis: the paper fits CPU load
against sensor rate per architecture and concludes "Pushers follow a
distinctly linear scaling curve on all architectures", which licenses
Equation 1's interpolation.  The benchmark asserts the same via r².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class LinearFit:
    """Result of a least-squares line fit."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        return self.slope * x + self.intercept


def linear_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Ordinary least squares y = slope*x + intercept, with r²."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length samples of at least 2 points")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(float(slope), float(intercept), r2)
