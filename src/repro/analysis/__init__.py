"""Statistical helpers used by the experiment harnesses.

* :mod:`repro.analysis.density` — Gaussian kernel density estimation
  for the Figure 10 probability-density plots.
* :mod:`repro.analysis.regression` — linear fits with goodness-of-fit
  for the Figure 7 scaling model.
"""

from repro.analysis.density import kde_pdf, distribution_modes
from repro.analysis.regression import linear_fit, LinearFit

__all__ = ["kde_pdf", "distribution_modes", "linear_fit", "LinearFit"]
