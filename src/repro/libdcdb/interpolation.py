"""Resampling sensor series onto common time grids.

Paper section 3.2, on virtual sensors: "we account for different
sampling frequencies by linear interpolation."  A virtual sensor
combining a 1 Hz power meter with a 10 Hz performance counter needs
both series on one grid before the arithmetic applies; these helpers
provide that grid and the interpolation.

All functions take/return int64 nanosecond timestamp arrays and
float64 value arrays (queries decode raw integers to physical values
before any arithmetic).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import QueryError


def union_grid(*timestamp_arrays: np.ndarray) -> np.ndarray:
    """The sorted union of several timestamp arrays.

    The natural evaluation grid for an expression: every instant where
    at least one operand has a true reading.
    """
    non_empty = [ts for ts in timestamp_arrays if ts.size]
    if not non_empty:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(non_empty))


def regular_grid(start: int, end: int, interval_ns: int) -> np.ndarray:
    """Evenly spaced timestamps covering [start, end]."""
    if interval_ns <= 0:
        raise QueryError("grid interval must be positive")
    if end < start:
        raise QueryError("grid end before start")
    return np.arange(start, end + 1, interval_ns, dtype=np.int64)


def resample_linear(
    timestamps: np.ndarray,
    values: np.ndarray,
    grid: np.ndarray,
) -> np.ndarray:
    """Linearly interpolate (timestamps, values) onto ``grid``.

    Grid points outside the series' span are clamped to the first/last
    value (a sensor is assumed to hold its reading until the next one
    arrives; extrapolating trends would fabricate data).  An empty
    series raises :class:`QueryError` — the caller decides whether a
    missing operand voids the whole expression.
    """
    if timestamps.size == 0:
        raise QueryError("cannot resample an empty series")
    if timestamps.size != values.size:
        raise QueryError("timestamps and values length mismatch")
    return np.interp(
        grid.astype(np.float64),
        timestamps.astype(np.float64),
        values.astype(np.float64),
    )


def downsample_mean(
    timestamps: np.ndarray,
    values: np.ndarray,
    bucket_ns: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Average readings into fixed buckets (for plotting long ranges).

    Returns bucket-start timestamps and per-bucket means.  Empty
    buckets are omitted rather than filled, so gaps stay visible.
    """
    if bucket_ns <= 0:
        raise QueryError("bucket size must be positive")
    if timestamps.size == 0:
        return timestamps, values.astype(np.float64)
    buckets = timestamps // bucket_ns
    unique_buckets, inverse = np.unique(buckets, return_inverse=True)
    sums = np.zeros(unique_buckets.size, dtype=np.float64)
    counts = np.zeros(unique_buckets.size, dtype=np.int64)
    np.add.at(sums, inverse, values.astype(np.float64))
    np.add.at(counts, inverse, 1)
    return (unique_buckets * bucket_ns).astype(np.int64), sums / counts
