"""Virtual sensors: derived metrics over stored sensor data.

Paper section 3.2: virtual sensors "are generated according to
user-specified arithmetic expressions of arbitrary length, whose
operands may either be sensors or virtual sensors themselves ...
Virtual sensors can be used like normal sensors and are evaluated
lazily ... results of previous queries are written back to a Storage
Backend so they can be re-used later.  The units of the underlying
physical sensors are converted automatically and we account for
different sampling frequencies by linear interpolation."

Expression language
-------------------
::

    expr  := term (('+'|'-') term)*
    term  := unary (('*'|'/') unary)*
    unary := '-' unary | atom
    atom  := NUMBER | '<' topic '>' | FUNC '(' '<' prefix '>' ')' | '(' expr ')'
    FUNC  := sum | avg | min | max

Sensor operands are written in angle brackets (``<...>``) holding
either a concrete topic or, inside an aggregation function, a
hierarchy prefix expanded to every sensor below it.  Examples::

    (<s1/power> + <s2/power>) / 1000           ; node power sum, kW
    sum(<hpc/rack0>)                           ; whole-rack aggregate
    <heat/out> / sum(<pdu>)                    ; efficiency ratio

Unit discipline: ``+``/``-`` convert the right operand into the left
operand's unit automatically (raising on incompatible dimensions);
``*``/``/`` produce dimensionless-by-default results whose unit is
taken from the :class:`VirtualSensorDef`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.common.errors import QueryError, UnitError
from repro.common.timeutil import NS_PER_SEC
from repro.common.units import get_converter
from repro.libdcdb.interpolation import resample_linear, union_grid

_AGG_FUNCS = ("sum", "avg", "min", "max")


# -- AST -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Num:
    value: float


@dataclass(frozen=True, slots=True)
class SensorRef:
    topic: str


@dataclass(frozen=True, slots=True)
class Agg:
    func: str
    prefix: str


@dataclass(frozen=True, slots=True)
class Neg:
    operand: "Node"


@dataclass(frozen=True, slots=True)
class BinOp:
    op: str
    left: "Node"
    right: "Node"


Node = Num | SensorRef | Agg | Neg | BinOp


# -- parser ------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> Node:
        node = self._expr()
        self._skip_ws()
        if self.pos != len(self.text):
            raise QueryError(
                f"unexpected input at position {self.pos}: {self.text[self.pos:]!r}"
            )
        return node

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _expr(self) -> Node:
        node = self._term()
        while self._peek() and self._peek() in "+-":
            op = self.text[self.pos]
            self.pos += 1
            node = BinOp(op, node, self._term())
        return node

    def _term(self) -> Node:
        node = self._unary()
        while self._peek() and self._peek() in "*/":
            op = self.text[self.pos]
            self.pos += 1
            node = BinOp(op, node, self._unary())
        return node

    def _unary(self) -> Node:
        if self._peek() == "-":
            self.pos += 1
            return Neg(self._unary())
        return self._atom()

    def _atom(self) -> Node:
        ch = self._peek()
        if ch == "(":
            self.pos += 1
            node = self._expr()
            if self._peek() != ")":
                raise QueryError("missing closing ')'")
            self.pos += 1
            return node
        if ch == "<":
            return SensorRef(self._sensor_token())
        if ch.isdigit() or ch == ".":
            return self._number()
        if ch.isalpha():
            return self._func()
        raise QueryError(f"unexpected character {ch!r} at position {self.pos}")

    def _sensor_token(self) -> str:
        end = self.text.find(">", self.pos)
        if end < 0:
            raise QueryError("unterminated sensor reference '<'")
        topic = self.text[self.pos + 1 : end].strip()
        if not topic:
            raise QueryError("empty sensor reference '<>'")
        self.pos = end + 1
        return topic

    def _number(self) -> Num:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isdigit() or self.text[self.pos] in ".eE+-"
        ):
            # Stop a sign from consuming a following operator: only
            # accept +/- directly after an exponent marker.
            if self.text[self.pos] in "+-" and self.text[self.pos - 1] not in "eE":
                break
            self.pos += 1
        try:
            return Num(float(self.text[start : self.pos]))
        except ValueError:
            raise QueryError(f"bad number {self.text[start:self.pos]!r}") from None

    def _func(self) -> Agg:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isalpha():
            self.pos += 1
        name = self.text[start : self.pos]
        if name not in _AGG_FUNCS:
            raise QueryError(f"unknown function {name!r}")
        if self._peek() != "(":
            raise QueryError(f"expected '(' after {name}")
        self.pos += 1
        if self._peek() != "<":
            raise QueryError(f"{name}() takes a <prefix> argument")
        prefix = self._sensor_token()
        if self._peek() != ")":
            raise QueryError(f"missing ')' after {name}(<{prefix}>")
        self.pos += 1
        return Agg(name, prefix)


def parse_expression(text: str) -> Node:
    """Parse a virtual-sensor expression into its AST."""
    return _Parser(text).parse()


def referenced_sensors(node: Node) -> set[str]:
    """All topics/prefixes an expression refers to (cycle detection)."""
    if isinstance(node, SensorRef):
        return {node.topic}
    if isinstance(node, Agg):
        return {node.prefix}
    if isinstance(node, Neg):
        return referenced_sensors(node.operand)
    if isinstance(node, BinOp):
        return referenced_sensors(node.left) | referenced_sensors(node.right)
    return set()


# -- definitions ----------------------------------------------------------------


@dataclass(slots=True)
class VirtualSensorDef:
    """A persisted virtual-sensor definition.

    ``interval_ns`` sets the evaluation grid (the virtual sensor's
    nominal sampling rate); ``unit`` declares the result unit; values
    are written back scaled by ``scale`` into the integer storage
    domain.  The default of 1000 keeps milli-resolution for derived
    ratios (e.g. a 0.9 efficiency stores as 900) — raise it for
    metrics needing finer precision.
    """

    name: str
    expression: str
    unit: str = "count"
    interval_ns: int = NS_PER_SEC
    scale: float = 1000.0
    attributes: dict[str, str] = field(default_factory=dict)

    @property
    def topic(self) -> str:
        """The topic under which evaluations are cached."""
        return f"/virtual/{self.name}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "expression": self.expression,
                "unit": self.unit,
                "interval_ns": self.interval_ns,
                "scale": self.scale,
                "attributes": self.attributes,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "VirtualSensorDef":
        raw = json.loads(text)
        return cls(
            name=raw["name"],
            expression=raw["expression"],
            unit=raw.get("unit", "count"),
            interval_ns=int(raw.get("interval_ns", NS_PER_SEC)),
            scale=float(raw.get("scale", 1.0)),
            attributes=raw.get("attributes", {}),
        )


# -- evaluation -------------------------------------------------------------------


class SeriesResolver(Protocol):
    """What the evaluator needs from libDCDB."""

    def series(self, topic: str, start: int, end: int) -> tuple[np.ndarray, np.ndarray, str]:
        """Physical-valued series of ``topic``: (ts, values, unit)."""
        ...

    def subtree_topics(self, prefix: str) -> list[str]:
        """Concrete sensor topics below a hierarchy prefix."""
        ...


@dataclass(slots=True)
class _Operand:
    """An evaluated sub-expression: series on its own grid + unit."""

    timestamps: np.ndarray
    values: np.ndarray
    unit: str | None  # None for pure numbers (unit-polymorphic)
    scalar: float | None = None  # set when the node was a constant


class Evaluator:
    """Evaluates an expression AST over a time range."""

    def __init__(self, resolver: SeriesResolver) -> None:
        self.resolver = resolver

    def evaluate(
        self, node: Node, start: int, end: int
    ) -> tuple[np.ndarray, np.ndarray, str | None]:
        """Returns (timestamps, values, unit) of the expression."""
        operand = self._eval(node, start, end)
        if operand.scalar is not None:
            raise QueryError("expression is a constant; it references no sensors")
        return operand.timestamps, operand.values, operand.unit

    def _eval(self, node: Node, start: int, end: int) -> _Operand:
        if isinstance(node, Num):
            empty = np.empty(0, dtype=np.int64)
            return _Operand(empty, np.empty(0), None, scalar=node.value)
        if isinstance(node, SensorRef):
            ts, values, unit = self.resolver.series(node.topic, start, end)
            if ts.size == 0:
                raise QueryError(f"no data for sensor {node.topic!r} in range")
            return _Operand(ts, values, unit)
        if isinstance(node, Agg):
            return self._eval_agg(node, start, end)
        if isinstance(node, Neg):
            operand = self._eval(node.operand, start, end)
            if operand.scalar is not None:
                return _Operand(
                    operand.timestamps, operand.values, None, scalar=-operand.scalar
                )
            return _Operand(operand.timestamps, -operand.values, operand.unit)
        if isinstance(node, BinOp):
            return self._eval_binop(node, start, end)
        raise QueryError(f"unknown AST node {node!r}")

    def _eval_agg(self, node: Agg, start: int, end: int) -> _Operand:
        topics = self.resolver.subtree_topics(node.prefix)
        if not topics:
            raise QueryError(f"no sensors under prefix {node.prefix!r}")
        # Fetch the whole subtree in one batched read when the
        # resolver supports it — one storage round-trip instead of one
        # per sensor under the prefix.
        series_many = getattr(self.resolver, "series_many", None)
        if series_many is not None:
            fetched = series_many(topics, start, end)
            triples = [fetched[topic] for topic in topics]
        else:
            triples = [self.resolver.series(topic, start, end) for topic in topics]
        series = []
        unit: str | None = None
        for ts, values, sensor_unit in triples:
            if ts.size == 0:
                continue
            if unit is None:
                unit = sensor_unit
            elif sensor_unit != unit:
                try:
                    converter = get_converter(sensor_unit, unit)
                except UnitError as exc:
                    raise QueryError(
                        f"incompatible units under prefix {node.prefix!r}: {exc}"
                    ) from exc
                values = converter._scale * values + converter._offset
            series.append((ts, values))
        if not series:
            raise QueryError(f"no data under prefix {node.prefix!r} in range")
        grid = union_grid(*(ts for ts, _ in series))
        stacked = np.vstack([resample_linear(ts, values, grid) for ts, values in series])
        if node.func == "sum":
            out = stacked.sum(axis=0)
        elif node.func == "avg":
            out = stacked.mean(axis=0)
        elif node.func == "min":
            out = stacked.min(axis=0)
        else:
            out = stacked.max(axis=0)
        return _Operand(grid, out, unit)

    def _eval_binop(self, node: BinOp, start: int, end: int) -> _Operand:
        left = self._eval(node.left, start, end)
        right = self._eval(node.right, start, end)
        # Scalar arithmetic folds immediately.
        if left.scalar is not None and right.scalar is not None:
            return _Operand(
                left.timestamps,
                left.values,
                None,
                scalar=_apply_scalar(node.op, left.scalar, right.scalar),
            )
        if left.scalar is not None:
            values = _apply(node.op, np.full_like(right.values, left.scalar), right.values)
            unit = right.unit if node.op in "+-" else None
            return _Operand(right.timestamps, values, unit)
        if right.scalar is not None:
            values = _apply(node.op, left.values, np.full_like(left.values, right.scalar))
            unit = left.unit if node.op in "+-" else None
            return _Operand(left.timestamps, values, unit)
        # Two series: align on the union grid with linear interpolation.
        grid = union_grid(left.timestamps, right.timestamps)
        lvals = resample_linear(left.timestamps, left.values, grid)
        rvals = resample_linear(right.timestamps, right.values, grid)
        unit: str | None
        if node.op in "+-":
            # Automatic unit conversion: bring right into left's unit.
            if left.unit and right.unit and left.unit != right.unit:
                try:
                    converter = get_converter(right.unit, left.unit)
                except UnitError as exc:
                    raise QueryError(f"incompatible units in expression: {exc}") from exc
                rvals = converter._scale * rvals + converter._offset
            unit = left.unit or right.unit
        else:
            unit = None  # products/ratios take the definition's unit
        return _Operand(grid, _apply(node.op, lvals, rvals), unit)


def _apply(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    with np.errstate(divide="ignore", invalid="ignore"):
        out = left / right
    if not np.isfinite(out).all():
        raise QueryError("division by zero while evaluating expression")
    return out


def _apply_scalar(op: str, left: float, right: float) -> float:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if right == 0:
        raise QueryError("division by zero in constant expression")
    return left / right
