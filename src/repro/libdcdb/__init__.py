"""libDCDB: the backend-independent data-access library.

Paper section 5.1: "All accesses to Storage Backends are performed via
a well-defined API that is independent from the underlying database
implementation."  This package is the Python rendition of that
library — everything the command-line tools, the Grafana data source
and user scripts need:

* :mod:`repro.libdcdb.api` — :class:`~repro.libdcdb.api.DCDBClient`,
  the entry point: topic resolution, sensor configuration, time-range
  queries with unit/scale decoding.
* :mod:`repro.libdcdb.interpolation` — linear resampling used to
  reconcile sensors with different sampling frequencies (paper
  section 3.2).
* :mod:`repro.libdcdb.virtualsensors` — the virtual-sensor expression
  language: parser, lazy evaluator with automatic unit conversion and
  write-back result caching.
* :mod:`repro.libdcdb.analysis` — the query tool's "basic analysis
  tasks ... such as integrals or derivatives" (paper section 5.2).
"""

from repro.libdcdb.api import DCDBClient, SensorConfig
from repro.libdcdb.virtualsensors import VirtualSensorDef, parse_expression
from repro.libdcdb.analysis import integral, derivative, summary
from repro.libdcdb.interpolation import resample_linear, union_grid

__all__ = [
    "DCDBClient",
    "SensorConfig",
    "VirtualSensorDef",
    "parse_expression",
    "integral",
    "derivative",
    "summary",
    "resample_linear",
    "union_grid",
]
