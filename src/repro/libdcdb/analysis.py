"""Time-series analysis primitives of the query tool.

Paper section 5.2: the query tool can "perform basic analysis tasks on
the data such as integrals or derivatives".  Integrals turn power into
energy (the dominant use at LRZ); derivatives turn monotonic energy
meters back into power.  Both operate on physical-valued series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC


def integral(timestamps: np.ndarray, values: np.ndarray) -> float:
    """Trapezoidal integral of the series over time, in value·seconds.

    A power series in W integrates to energy in J.  Requires at least
    two points; a single reading spans no time.
    """
    if timestamps.size < 2:
        raise QueryError("integral needs at least two readings")
    t_seconds = timestamps.astype(np.float64) / NS_PER_SEC
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy <2 fallback
    return float(trapezoid(values.astype(np.float64), t_seconds))


def derivative(
    timestamps: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Finite-difference rate of change, in value-units per second.

    Returned timestamps are the midpoints of consecutive reading
    pairs.  An energy-meter series in J differentiates to power in W.
    """
    if timestamps.size < 2:
        raise QueryError("derivative needs at least two readings")
    dt = np.diff(timestamps).astype(np.float64) / NS_PER_SEC
    if (dt <= 0).any():
        raise QueryError("derivative requires strictly increasing timestamps")
    rates = np.diff(values.astype(np.float64)) / dt
    midpoints = timestamps[:-1] + np.diff(timestamps) // 2
    return midpoints.astype(np.int64), rates


@dataclass(frozen=True, slots=True)
class SeriesSummary:
    """Descriptive statistics of one queried series."""

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float
    first_ts: int
    last_ts: int

    @property
    def span_seconds(self) -> float:
        return (self.last_ts - self.first_ts) / NS_PER_SEC


def summary(timestamps: np.ndarray, values: np.ndarray) -> SeriesSummary:
    """Summarize a series (the query tool's quick-look output)."""
    if timestamps.size == 0:
        raise QueryError("cannot summarize an empty series")
    vals = values.astype(np.float64)
    return SeriesSummary(
        count=int(timestamps.size),
        minimum=float(vals.min()),
        maximum=float(vals.max()),
        mean=float(vals.mean()),
        std=float(vals.std()),
        first_ts=int(timestamps[0]),
        last_ts=int(timestamps[-1]),
    )
