"""DCDBClient: the user-facing data-access API.

The entry point for everything downstream of storage — command-line
tools, the Grafana data source, analysis scripts.  Responsibilities:

* resolving sensor topics to storage SIDs through the persisted
  mapping the Collect Agent writes (``sidmap<topic>`` metadata keys);
* sensor configuration (unit, scaling factor, integrability — the
  properties the ``config`` tool manages, paper section 5.2);
* raw and physical-valued time-range queries;
* hierarchy navigation (the drill-down the Grafana plugin exposes,
  paper section 5.4);
* virtual sensors: definitions are persisted in storage metadata,
  evaluated lazily on query, and their results written back for reuse
  (paper section 3.2).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from time import monotonic, perf_counter

import numpy as np

from repro.common.errors import QueryError
from repro.common.units import get_converter
from repro.core.sid import SensorId
from repro.libdcdb.interpolation import regular_grid, resample_linear
from repro.libdcdb.virtualsensors import (
    BinOp,
    Evaluator,
    Neg,
    SensorRef,
    VirtualSensorDef,
    parse_expression,
    referenced_sensors,
)
from repro.observability import MetricsRegistry
from repro.storage.backend import StorageBackend
from repro.storage.rollup import (
    FIELDS,
    ROLLUP_TIERS,
    aggregate_buckets,
    coverage_key,
    reduce_rows,
    rollup_sid,
)

_SIDMAP_PREFIX = "sidmap"
_SENSORCFG_PREFIX = "sensorconfig"
_VSENSOR_PREFIX = "virtualsensor/"
_VCACHE_PREFIX = "vcache/"

#: Aggregations the tier-aware planner serves.  All are derived from
#: the four decomposable rollup statistics (avg = sum / count).
AGGREGATIONS = ("avg", "min", "max", "sum", "count")


@dataclass(frozen=True, slots=True)
class AggregatePlan:
    """How one aggregate query will be served.

    ``tier_index`` is None for a raw scan; otherwise the tier serves
    the complete output buckets in ``[head_end, tail_start)`` and raw
    readings fill the window-clipped head (``[start, head_end)``) and
    the unsealed/partial tail (``[tail_start, end]``).  ``bucket_ns``
    is the output bucket width — a multiple of the tier's bucket, so
    tier rows regroup exactly onto the output grid.
    """

    topic: str
    tier_index: int | None
    tier_label: str
    bucket_ns: int
    head_end: int = 0
    tail_start: int = 0


@dataclass(slots=True)
class SensorConfig:
    """Interpretive properties of a stored sensor.

    ``scale`` maps stored integers to physical values
    (physical = stored / scale); ``unit`` names the physical unit.
    """

    topic: str
    unit: str = "count"
    scale: float = 1.0
    integrable: bool = False
    ttl_s: int = 0
    attributes: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "topic": self.topic,
                "unit": self.unit,
                "scale": self.scale,
                "integrable": self.integrable,
                "ttl_s": self.ttl_s,
                "attributes": self.attributes,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "SensorConfig":
        raw = json.loads(text)
        return cls(
            topic=raw["topic"],
            unit=raw.get("unit", "count"),
            scale=float(raw.get("scale", 1.0)),
            integrable=bool(raw.get("integrable", False)),
            ttl_s=int(raw.get("ttl_s", 0)),
            attributes=raw.get("attributes", {}),
        )


class DCDBClient:
    """High-level query interface over a :class:`StorageBackend`.

    Raw series reads go through a small TTL'd LRU cache so dashboards
    repeating the same (topic, range) query — Grafana refreshes,
    virtual sensors sharing operands — skip the storage round-trip.
    Entries expire after ``cache_ttl_s`` seconds (recent data keeps
    arriving, so staleness must be bounded), are evicted LRU beyond
    ``cache_size`` entries, and are invalidated explicitly whenever
    this client writes through (virtual-sensor write-back, topic
    re-registration).  ``cache_size=0`` or ``cache_ttl_s=0`` disables
    caching entirely.  ``cache_clock`` injects a monotonic-seconds
    clock for deterministic expiry tests.
    """

    def __init__(
        self,
        backend: StorageBackend,
        metrics: MetricsRegistry | None = None,
        cache_ttl_s: float = 5.0,
        cache_size: int = 1024,
        cache_clock=None,
    ) -> None:
        self.backend = backend
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sid_cache: dict[str, SensorId] = {}
        self._evaluator = Evaluator(_Resolver(self))
        self._cache_ttl_s = float(cache_ttl_s)
        self._cache_size = int(cache_size)
        self._cache_clock = cache_clock if cache_clock is not None else monotonic
        self._cache: OrderedDict[
            tuple[str, int, int], tuple[float, np.ndarray, np.ndarray]
        ] = OrderedDict()
        self._cache_lock = threading.Lock()
        self._cache_hits = self.metrics.counter(
            "dcdb_query_cache_hits_total", "libDCDB raw-series cache hits"
        )
        self._cache_misses = self.metrics.counter(
            "dcdb_query_cache_misses_total", "libDCDB raw-series cache misses"
        )
        self._query_latency = self.metrics.histogram(
            "dcdb_libdcdb_query_seconds", "libDCDB-layer query latency", ("op",)
        )
        self._tier_selected = self.metrics.counter(
            "dcdb_rollup_tier_selected_total",
            "Aggregate queries by the rollup tier that served them (raw = fallback)",
            ("tier",),
        )

    # -- raw-series cache ----------------------------------------------------

    @property
    def _cache_enabled(self) -> bool:
        return self._cache_size > 0 and self._cache_ttl_s > 0

    def _cache_get(
        self, key: tuple[str, int, int]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is None or entry[0] <= self._cache_clock():
                if entry is not None:
                    del self._cache[key]
                self._cache_misses.inc()
                return None
            self._cache.move_to_end(key)
            self._cache_hits.inc()
            return entry[1], entry[2]

    def _cache_put(
        self, key: tuple[str, int, int], timestamps: np.ndarray, values: np.ndarray
    ) -> None:
        # Cache read-only views: one entry may be handed to many
        # callers, and the arrays can alias storage-internal segments.
        timestamps = timestamps.view()
        timestamps.setflags(write=False)
        values = values.view()
        values.setflags(write=False)
        with self._cache_lock:
            self._cache[key] = (
                self._cache_clock() + self._cache_ttl_s,
                timestamps,
                values,
            )
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def invalidate_cache(self, topic: str | None = None) -> int:
        """Drop cached raw series for ``topic`` (or everything).

        Returns the number of entries dropped.  Called automatically
        after every write this client performs; external writers land
        within ``cache_ttl_s`` via expiry.
        """
        with self._cache_lock:
            if topic is None:
                dropped = len(self._cache)
                self._cache.clear()
                return dropped
            stale = [key for key in self._cache if key[0] == topic]
            for key in stale:
                del self._cache[key]
            return len(stale)

    # -- topic resolution ---------------------------------------------------

    def sid_of(self, topic: str) -> SensorId:
        """Resolve ``topic`` to its SID via the persisted mapping."""
        sid = self._sid_cache.get(topic)
        if sid is None:
            text = self.backend.get_metadata(f"{_SIDMAP_PREFIX}{topic}")
            if text is None:
                raise QueryError(f"unknown sensor topic {topic!r}")
            sid = SensorId.from_hex(text)
            self._sid_cache[topic] = sid
        return sid

    def register_topic(self, topic: str, sid: SensorId) -> None:
        """Persist a topic->SID mapping (importers, virtual sensors)."""
        self.backend.put_metadata(f"{_SIDMAP_PREFIX}{topic}", sid.hex())
        self._sid_cache[topic] = sid
        self.invalidate_cache(topic)

    def topics(self, prefix: str = "") -> list[str]:
        """All known sensor topics, optionally below a prefix."""
        keys = self.backend.metadata_keys(f"{_SIDMAP_PREFIX}{prefix}")
        return [k[len(_SIDMAP_PREFIX) :] for k in keys]

    def hierarchy_children(self, prefix: str = "") -> list[str]:
        """Distinct next-level names under ``prefix`` (Grafana drill-down).

        ``prefix`` of ``"/hpc/rack0"`` returns e.g. ``["chassis0",
        "chassis1"]``; leaf sensors appear as their final component.
        """
        base = prefix.rstrip("/")
        depth = len([p for p in base.split("/") if p])
        children: set[str] = set()
        for topic in self.topics(base + "/" if base else "/"):
            parts = [p for p in topic.split("/") if p]
            if len(parts) > depth:
                children.add(parts[depth])
        return sorted(children)

    # -- sensor configuration --------------------------------------------------

    def set_sensor_config(self, config: SensorConfig) -> None:
        self.backend.put_metadata(f"{_SENSORCFG_PREFIX}{config.topic}", config.to_json())

    def sensor_config(self, topic: str) -> SensorConfig:
        """Stored configuration of ``topic`` (defaults when absent)."""
        text = self.backend.get_metadata(f"{_SENSORCFG_PREFIX}{topic}")
        if text is None:
            return SensorConfig(topic=topic)
        return SensorConfig.from_json(text)

    # -- queries ---------------------------------------------------------------

    def query_raw(self, topic: str, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        """Stored integer readings of a concrete sensor (cached)."""
        started = perf_counter()
        key = (topic, start, end)
        result = self._cache_get(key) if self._cache_enabled else None
        if result is None:
            result = self.backend.query(self.sid_of(topic), start, end)
            if self._cache_enabled:
                self._cache_put(key, *result)
        self._query_latency.labels(op="query_raw").observe(perf_counter() - started)
        return result

    def query_raw_many(
        self, topics, start: int, end: int
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Bulk :meth:`query_raw`: one batched backend read for all misses.

        Semantically identical to calling ``query_raw`` per topic (the
        cache is consulted and primed the same way), but all topics
        absent from the cache travel in a single
        :meth:`~repro.storage.backend.StorageBackend.query_many` call,
        which the cluster backend fans out in parallel.  Raises
        :class:`QueryError` on the first unknown topic, like
        ``query_raw`` would.
        """
        started = perf_counter()
        unique = list(dict.fromkeys(topics))
        out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        missing: list[str] = []
        for topic in unique:
            cached = (
                self._cache_get((topic, start, end)) if self._cache_enabled else None
            )
            if cached is not None:
                out[topic] = cached
            else:
                missing.append(topic)
        if missing:
            sid_by_topic = {topic: self.sid_of(topic) for topic in missing}
            fetched = self.backend.query_many(
                list(sid_by_topic.values()), start, end
            )
            for topic, sid in sid_by_topic.items():
                result = fetched[sid]
                if self._cache_enabled:
                    self._cache_put((topic, start, end), *result)
                out[topic] = result
        self._query_latency.labels(op="query_raw_many").observe(
            perf_counter() - started
        )
        return {topic: out[topic] for topic in unique}

    def prefetch_raw(self, topics, start: int, end: int) -> int:
        """Warm the raw-series cache for many topics with one bulk read.

        Unknown and virtual topics are skipped silently (virtual
        sensors are evaluated, not fetched).  Returns the number of
        topics primed.  A no-op when the cache is disabled — without a
        cache there is nowhere to keep the prefetched series.
        """
        if not self._cache_enabled:
            return 0
        concrete: list[str] = []
        for topic in dict.fromkeys(topics):
            if self._virtual_def_for(topic) is not None:
                continue
            try:
                self.sid_of(topic)
            except QueryError:
                continue
            concrete.append(topic)
        if concrete:
            self.query_raw_many(concrete, start, end)
        return len(concrete)

    def query(
        self,
        topic: str,
        start: int,
        end: int,
        unit: str | None = None,
        aggregation: str | None = None,
        max_points: int = 1000,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Physical-valued series of a sensor or virtual sensor.

        Decodes stored integers via the sensor's scaling factor and
        optionally converts into ``unit``.  Virtual sensors (topics
        under ``/virtual/`` or names with a stored definition) are
        evaluated lazily with result write-back.

        With ``aggregation`` set (one of :data:`AGGREGATIONS`), the
        query is routed through the tier-aware planner instead: it
        returns at most ~``max_points`` bucketed aggregates, served
        from the coarsest rollup tier that satisfies the resolution
        and falling back to raw for uncovered spans (see
        :meth:`query_aggregate`).
        """
        if aggregation is not None:
            return self.query_aggregate(
                topic, start, end, aggregation, max_points, unit
            )
        started = perf_counter()
        vdef = self._virtual_def_for(topic)
        if vdef is not None:
            result = self._query_virtual(vdef, start, end, unit)
            self._query_latency.labels(op="query").observe(perf_counter() - started)
            return result
        config = self.sensor_config(topic)
        timestamps, raw = self.query_raw(topic, start, end)
        values = raw.astype(np.float64)
        if config.scale != 1.0:
            values = values / config.scale
        if unit is not None and unit != config.unit:
            converter = get_converter(config.unit, unit)
            values = converter._scale * values + converter._offset
        self._query_latency.labels(op="query").observe(perf_counter() - started)
        return timestamps, values

    # -- tier-aware aggregate planner -----------------------------------------

    def plan_aggregate(
        self, topic: str, start: int, end: int, max_points: int = 1000
    ) -> AggregatePlan:
        """Decide how an aggregate query over ``[start, end]`` is served.

        Picks the *coarsest* rollup tier whose bucket still satisfies
        the requested resolution (``desired = ceil(window / max_points)``
        with the inclusive window ``end - start + 1``)
        and whose persisted coverage reaches the window; the sealed
        middle is then read from 4 rollup series instead of the raw
        scan.  Falls back to a raw plan when the window needs finer
        buckets than the finest tier, the topic is virtual, or no tier
        has usable coverage (sensor predates the engine, all 8 SID
        levels in use, unsealed span only).
        """
        if max_points < 1:
            raise QueryError("max_points must be >= 1")
        # Query ranges are inclusive of both ends, and the bucket width
        # rounds UP so the output bucket count never exceeds max_points.
        window = end - start + 1
        raw_plan = AggregatePlan(
            topic=topic,
            tier_index=None,
            tier_label="raw",
            bucket_ns=max(1, -(-window // max_points)),
        )
        if window <= 0 or self._virtual_def_for(topic) is not None:
            return raw_plan
        sid = self.sid_of(topic)
        desired = -(-window // max_points)
        qend = end + 1
        for tier_index in range(len(ROLLUP_TIERS) - 1, -1, -1):
            tier = ROLLUP_TIERS[tier_index]
            if tier.bucket_ns > desired:
                continue
            text = self.backend.get_metadata(coverage_key(sid, tier.label))
            if not text:
                continue
            try:
                doc = json.loads(text)
                cov_lo, cov_hi = int(doc["lo"]), int(doc["hi"])
            except (ValueError, KeyError, TypeError):
                continue
            # Output buckets are a multiple of the tier bucket, so tier
            # rows regroup onto the output grid without splitting.
            bucket_ns = (
                (desired + tier.bucket_ns - 1) // tier.bucket_ns
            ) * tier.bucket_ns
            head_end = -(-start // bucket_ns) * bucket_ns
            tail_start = min(
                (qend // bucket_ns) * bucket_ns,
                (cov_hi // bucket_ns) * bucket_ns,
            )
            # Usable iff the tier covers every complete output bucket
            # from head_end on: the window-clipped head and the
            # unsealed (or uncovered) tail stay raw.
            if cov_lo <= head_end and tail_start > head_end:
                return AggregatePlan(
                    topic=topic,
                    tier_index=tier_index,
                    tier_label=tier.label,
                    bucket_ns=bucket_ns,
                    head_end=head_end,
                    tail_start=tail_start,
                )
        return raw_plan

    def query_aggregate(
        self,
        topic: str,
        start: int,
        end: int,
        aggregation: str = "avg",
        max_points: int = 1000,
        unit: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bucketed aggregate series of ``topic`` over ``[start, end]``.

        Returns ``(bucket_start_timestamps, values)`` with at most
        ~``max_points`` buckets on the absolute ``ts // bucket_ns``
        grid (empty buckets omitted).  Served from a rollup tier when
        :meth:`plan_aggregate` finds one — dashboard-scale windows read
        hundreds of pre-aggregated rows instead of millions of raw
        ones — and otherwise from a raw scan.  Either path runs the
        identical aggregation arithmetic on the identical stored
        integers, so results are bit-identical regardless of the tier
        chosen.
        """
        if aggregation not in AGGREGATIONS:
            raise QueryError(
                f"unknown aggregation {aggregation!r}; expected one of {AGGREGATIONS}"
            )
        started = perf_counter()
        plan = self.plan_aggregate(topic, start, end, max_points)
        if plan.tier_index is None:
            result = self._aggregate_raw(plan, start, end, aggregation, unit)
        else:
            result = self._aggregate_tiered(plan, start, end, aggregation, unit)
        self._tier_selected.labels(tier=plan.tier_label).inc()
        self._query_latency.labels(op="query_aggregate").observe(
            perf_counter() - started
        )
        return result

    def query_aggregate_many(
        self,
        topics,
        start: int,
        end: int,
        aggregation: str = "avg",
        max_points: int = 1000,
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Bulk :meth:`query_aggregate` with batched storage reads.

        Topics sharing plan geometry (same tier, bucket and head/tail
        split — the common case for a dashboard of co-sampled sensors)
        have their rollup middles fetched in one ``query_many`` call;
        raw-planned topics share one bulk raw read.  Virtual topics
        fall back to per-topic evaluation.
        """
        if aggregation not in AGGREGATIONS:
            raise QueryError(
                f"unknown aggregation {aggregation!r}; expected one of {AGGREGATIONS}"
            )
        started = perf_counter()
        unique = list(dict.fromkeys(topics))
        out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        plans: dict[str, AggregatePlan] = {}
        raw_topics: list[str] = []
        for topic in unique:
            if self._virtual_def_for(topic) is not None:
                out[topic] = self.query_aggregate(
                    topic, start, end, aggregation, max_points
                )
                continue
            plan = self.plan_aggregate(topic, start, end, max_points)
            plans[topic] = plan
            if plan.tier_index is None:
                raw_topics.append(topic)
        if raw_topics:
            raw = self.query_raw_many(raw_topics, start, end)
            for topic in raw_topics:
                stats = aggregate_buckets(*raw[topic], plans[topic].bucket_ns)
                out[topic] = self._decode_stats(
                    self.sensor_config(topic), aggregation, stats, None
                )
                self._tier_selected.labels(tier="raw").inc()
        groups: dict[tuple[int, int, int, int], list[str]] = {}
        for topic, plan in plans.items():
            if plan.tier_index is not None:
                key = (plan.tier_index, plan.bucket_ns, plan.head_end, plan.tail_start)
                groups.setdefault(key, []).append(topic)
        for (tier_index, _bucket_ns, head_end, tail_start), group in groups.items():
            fsids_by_topic = {
                topic: self._field_sids(topic, tier_index) for topic in group
            }
            flat = [fsid for fsids in fsids_by_topic.values() for fsid in fsids]
            fetched = self.backend.query_many(flat, head_end, tail_start - 1)
            heads = (
                self.query_raw_many(group, start, head_end - 1)
                if start < head_end
                else {}
            )
            tails = (
                self.query_raw_many(group, tail_start, end)
                if tail_start <= end
                else {}
            )
            for topic in group:
                plan = plans[topic]
                field_rows = [fetched[fsid] for fsid in fsids_by_topic[topic]]
                stats = self._assemble_tier_stats(
                    plan, field_rows, heads.get(topic), tails.get(topic)
                )
                out[topic] = self._decode_stats(
                    self.sensor_config(topic), aggregation, stats, None
                )
                self._tier_selected.labels(tier=plan.tier_label).inc()
        self._query_latency.labels(op="query_aggregate_many").observe(
            perf_counter() - started
        )
        return {topic: out[topic] for topic in unique}

    def delete_before(self, topic: str, cutoff: int) -> int:
        """Delete readings of ``topic`` strictly older than ``cutoff``.

        Routes through the backend's vectorized ``delete_before`` and
        drops the topic's cached raw series — a TTL'd cache entry would
        otherwise keep serving the deleted readings until expiry.
        Returns the number of readings removed.
        """
        removed = int(self.backend.delete_before(self.sid_of(topic), cutoff))
        self.invalidate_cache(topic)
        return removed

    def _field_sids(self, topic: str, tier_index: int) -> list[SensorId]:
        sid = self.sid_of(topic)
        fsids = [
            rollup_sid(sid, tier_index, field_index)
            for field_index in range(len(FIELDS))
        ]
        if any(fsid is None for fsid in fsids):
            # Unreachable in practice: a coverage doc only exists when
            # the engine had a spare level to derive rollup SIDs from.
            raise QueryError(f"sensor {topic!r} cannot carry rollup series")
        return fsids  # type: ignore[return-value]

    def _aggregate_raw(
        self,
        plan: AggregatePlan,
        start: int,
        end: int,
        aggregation: str,
        unit: str | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw fallback: scan + bucket with the shared kernel."""
        vdef = self._virtual_def_for(plan.topic)
        if vdef is not None:
            # Virtual series are already physical-valued (and unit
            # converted by query); bucket the floats directly.
            timestamps, values = self.query(plan.topic, start, end, unit)
            stats = aggregate_buckets(timestamps, values, plan.bucket_ns)
            return self._decode_stats(None, aggregation, stats, None)
        timestamps, raw = self.query_raw(plan.topic, start, end)
        stats = aggregate_buckets(timestamps, raw, plan.bucket_ns)
        return self._decode_stats(self.sensor_config(plan.topic), aggregation, stats, unit)

    def _aggregate_tiered(
        self,
        plan: AggregatePlan,
        start: int,
        end: int,
        aggregation: str,
        unit: str | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve the sealed middle from rollup rows, head/tail from raw."""
        field_sids = self._field_sids(plan.topic, plan.tier_index)
        fetched = self.backend.query_many(field_sids, plan.head_end, plan.tail_start - 1)
        field_rows = [fetched[fsid] for fsid in field_sids]
        head = (
            self.query_raw(plan.topic, start, plan.head_end - 1)
            if start < plan.head_end
            else None
        )
        tail = (
            self.query_raw(plan.topic, plan.tail_start, end)
            if plan.tail_start <= end
            else None
        )
        stats = self._assemble_tier_stats(plan, field_rows, head, tail)
        return self._decode_stats(self.sensor_config(plan.topic), aggregation, stats, unit)

    @staticmethod
    def _assemble_tier_stats(plan: AggregatePlan, field_rows, head, tail):
        """Concatenate head (raw), middle (tier rows) and tail (raw) stats.

        The three regions are disjoint and increasing on the output
        bucket grid — the head ends where the first complete bucket
        begins and the tail starts on a bucket boundary — so per-bucket
        statistics concatenate without merging.  ``field_rows`` holds
        the four (timestamps, values) tier series in ``FIELDS`` order;
        all four are written in one batch, so their grids match.
        """
        parts = []
        if head is not None and head[0].size:
            parts.append(aggregate_buckets(head[0], head[1], plan.bucket_ns))
        ufuncs = (np.minimum, np.maximum, np.add, np.add)
        reduced = [
            reduce_rows(timestamps, values, plan.bucket_ns, ufunc)
            for (timestamps, values), ufunc in zip(field_rows, ufuncs)
        ]
        starts = reduced[0][0]
        if starts.size:
            parts.append(
                (starts, reduced[0][1], reduced[1][1], reduced[2][1], reduced[3][1])
            )
        if tail is not None and tail[0].size:
            parts.append(aggregate_buckets(tail[0], tail[1], plan.bucket_ns))
        if not parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, empty, empty
        if len(parts) == 1:
            return parts[0]
        return tuple(np.concatenate(columns) for columns in zip(*parts))

    @staticmethod
    def _decode_stats(
        config: SensorConfig | None,
        aggregation: str,
        stats,
        unit: str | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Derive the requested aggregation and decode to physical values.

        ``count`` is returned unscaled (it counts readings, not a
        physical quantity).  ``config=None`` skips decoding (virtual
        series are already physical).

        Unit conversion is affine (``out = scale * in + offset``) and
        must commute with the aggregation, not be applied to its
        result: a per-bucket ``sum`` picks up the offset once per
        reading (``scale * sum + offset * count``), and an
        order-reversing (negative-scale) conversion swaps which stored
        statistic is the converted minimum/maximum.  ``avg`` is a
        plain per-reading mean, so the bare affine transform is exact
        for it.
        """
        starts, mins, maxs, sums, counts = stats
        if aggregation == "count":
            return starts, counts.astype(np.float64)
        converter = None
        if config is not None and unit is not None and unit != config.unit:
            converter = get_converter(config.unit, unit)
        reversing = converter is not None and converter._scale < 0
        if aggregation == "avg":
            values = sums.astype(np.float64) / counts.astype(np.float64)
        elif aggregation == "min":
            values = (maxs if reversing else mins).astype(np.float64)
        elif aggregation == "max":
            values = (mins if reversing else maxs).astype(np.float64)
        else:  # sum
            values = sums.astype(np.float64)
        if config is None:
            return starts, values
        if config.scale != 1.0:
            values = values / config.scale
        if converter is not None:
            if aggregation == "sum":
                values = converter._scale * values + converter._offset * counts.astype(
                    np.float64
                )
            else:
                values = converter._scale * values + converter._offset
        return starts, values

    # -- virtual sensors -----------------------------------------------------------

    def define_virtual_sensor(self, vdef: VirtualSensorDef) -> None:
        """Validate and persist a virtual-sensor definition."""
        node = parse_expression(vdef.expression)  # syntax check
        if vdef.name in {
            ref.split("/")[-1] for ref in referenced_sensors(node)
        } or f"/virtual/{vdef.name}" in referenced_sensors(node):
            raise QueryError(f"virtual sensor {vdef.name!r} references itself")
        self._check_cycles(vdef.name, vdef.expression)
        self.backend.put_metadata(f"{_VSENSOR_PREFIX}{vdef.name}", vdef.to_json())

    def _check_cycles(self, name: str, expression: str) -> None:
        """Reject definitions whose reference chain loops back."""
        seen = {name}
        frontier = [expression]
        while frontier:
            expr = frontier.pop()
            for ref in referenced_sensors(parse_expression(expr)):
                child = self._virtual_def_for(ref)
                if child is None:
                    continue
                if child.name in seen:
                    raise QueryError(
                        f"virtual sensor cycle involving {child.name!r}"
                    )
                seen.add(child.name)
                frontier.append(child.expression)

    def virtual_sensor(self, name: str) -> VirtualSensorDef | None:
        text = self.backend.get_metadata(f"{_VSENSOR_PREFIX}{name}")
        return VirtualSensorDef.from_json(text) if text else None

    def virtual_sensors(self) -> list[VirtualSensorDef]:
        defs = []
        for key in self.backend.metadata_keys(_VSENSOR_PREFIX):
            text = self.backend.get_metadata(key)
            if text:
                defs.append(VirtualSensorDef.from_json(text))
        return defs

    def delete_virtual_sensor(self, name: str) -> None:
        self.backend.delete_metadata(f"{_VSENSOR_PREFIX}{name}")
        self.backend.delete_metadata(f"{_VCACHE_PREFIX}{name}")
        self.invalidate_cache(f"/virtual/{name}")

    def _virtual_def_for(self, topic: str) -> VirtualSensorDef | None:
        if topic.startswith("/virtual/"):
            return self.virtual_sensor(topic[len("/virtual/") :])
        return self.virtual_sensor(topic)

    def _query_virtual(
        self, vdef: VirtualSensorDef, start: int, end: int, unit: str | None
    ) -> tuple[np.ndarray, np.ndarray]:
        cached = self._cached_intervals(vdef.name)
        if not _covers(cached, start, end):
            self._evaluate_and_store(vdef, start, end)
        sid = self._virtual_sid(vdef)
        timestamps, raw = self.backend.query(sid, start, end)
        values = raw.astype(np.float64)
        if vdef.scale != 1.0:
            values = values / vdef.scale
        if unit is not None and unit != vdef.unit:
            converter = get_converter(vdef.unit, unit)
            values = converter._scale * values + converter._offset
        return timestamps, values

    def evaluate_virtual(
        self, name: str, start: int, end: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Force evaluation of a virtual sensor (bypassing the cache)."""
        vdef = self.virtual_sensor(name)
        if vdef is None:
            raise QueryError(f"unknown virtual sensor {name!r}")
        return self._evaluate(vdef, start, end)

    def _evaluate(
        self, vdef: VirtualSensorDef, start: int, end: int
    ) -> tuple[np.ndarray, np.ndarray]:
        node = parse_expression(vdef.expression)
        # Fetch every concrete operand series in one batched read up
        # front; the evaluator's per-operand series() calls then hit
        # the cache.  Aggregation prefixes batch inside series_many.
        refs = _sensor_refs(node)
        if refs:
            self.prefetch_raw(refs, start, end)
        timestamps, values, _unit = self._evaluator.evaluate(node, start, end)
        # Resample onto the definition's regular grid, clipped to the
        # span where real data exists (no extrapolated tails).
        grid = regular_grid(start, end, vdef.interval_ns)
        grid = grid[(grid >= timestamps[0]) & (grid <= timestamps[-1])]
        if grid.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return grid, resample_linear(timestamps, values, grid)

    def _evaluate_and_store(self, vdef: VirtualSensorDef, start: int, end: int) -> None:
        grid, values = self._evaluate(vdef, start, end)
        sid = self._virtual_sid(vdef)
        if grid.size:
            scaled = np.rint(values * vdef.scale).astype(np.int64)
            self.backend.insert_batch(
                (sid, int(t), int(v), 0) for t, v in zip(grid, scaled)
            )
            self.invalidate_cache(vdef.topic)  # write-through coherence
        intervals = self._cached_intervals(vdef.name)
        intervals = _merge_intervals(intervals + [(start, end)])
        self.backend.put_metadata(
            f"{_VCACHE_PREFIX}{vdef.name}", json.dumps(intervals)
        )

    def _virtual_sid(self, vdef: VirtualSensorDef) -> SensorId:
        topic = vdef.topic
        sid = self._sid_cache.get(topic)
        if sid is not None:
            return sid
        text = self.backend.get_metadata(f"{_SIDMAP_PREFIX}{topic}")
        if text is not None:
            sid = SensorId.from_hex(text)
        else:
            # Allocate a SID in the reserved /virtual subtree: level 0
            # is the fixed virtual-space marker, deeper levels hash the
            # name (collision-checked against existing mappings).
            base = 0xFFFF
            digest = abs(hash(vdef.name))
            codes = [base, (digest & 0x7FFF) + 1, ((digest >> 15) & 0x7FFF) + 1]
            sid = SensorId.from_codes(codes)
            taken = {
                v
                for k in self.backend.metadata_keys(f"{_SIDMAP_PREFIX}/virtual/")
                if (v := self.backend.get_metadata(k)) is not None
            }
            while sid.hex() in taken:
                codes[2] = codes[2] % 0x7FFF + 1
                sid = SensorId.from_codes(codes)
            self.backend.put_metadata(f"{_SIDMAP_PREFIX}{topic}", sid.hex())
        self._sid_cache[topic] = sid
        return sid

    def _cached_intervals(self, name: str) -> list[tuple[int, int]]:
        text = self.backend.get_metadata(f"{_VCACHE_PREFIX}{name}")
        if not text:
            return []
        return [(int(a), int(b)) for a, b in json.loads(text)]

    # -- convenience -------------------------------------------------------------

    def latest(self, topic: str) -> tuple[int, float] | None:
        """Most recent (timestamp, physical value) of a sensor."""
        config = self.sensor_config(topic)
        result = self.backend.latest(self.sid_of(topic))
        if result is None:
            return None
        timestamp, raw = result
        return timestamp, raw / config.scale


class _Resolver:
    """Adapter giving the expression evaluator access to the client."""

    def __init__(self, client: DCDBClient) -> None:
        self.client = client
        self._stack: set[str] = set()

    def series(self, topic: str, start: int, end: int):
        vdef = self.client._virtual_def_for(topic)
        if vdef is not None:
            if vdef.name in self._stack:
                raise QueryError(f"virtual sensor cycle at {vdef.name!r}")
            self._stack.add(vdef.name)
            try:
                timestamps, values = self.client._evaluate(vdef, start, end)
            finally:
                self._stack.discard(vdef.name)
            return timestamps, values, vdef.unit
        config = self.client.sensor_config(topic)
        timestamps, values = self.client.query(topic, start, end)
        return timestamps, values, config.unit

    def series_many(self, topics, start: int, end: int, max_points: int | None = None):
        """Batched :meth:`series`: concrete topics in one bulk read.

        Returns ``{topic: (timestamps, values, unit)}``.  Virtual
        topics fall back to per-topic :meth:`series` (each evaluation
        batches its own operands); concrete topics travel in a single
        ``query_raw_many`` and are decoded exactly like
        :meth:`DCDBClient.query` would, so results are bit-identical
        to the per-topic path.  With ``max_points`` set, concrete
        topics are served as ~``max_points`` per-bucket averages
        through the tier-aware planner instead of at raw resolution.
        """
        out: dict[str, tuple] = {}
        concrete: list[str] = []
        for topic in topics:
            if topic in out or topic in concrete:
                continue
            if self.client._virtual_def_for(topic) is not None:
                out[topic] = self.series(topic, start, end)
            else:
                concrete.append(topic)
        if concrete and max_points is not None:
            bucketed = self.client.query_aggregate_many(
                concrete, start, end, "avg", max_points
            )
            for topic in concrete:
                config = self.client.sensor_config(topic)
                timestamps, values = bucketed[topic]
                out[topic] = (timestamps, values, config.unit)
        elif concrete:
            raw = self.client.query_raw_many(concrete, start, end)
            for topic in concrete:
                config = self.client.sensor_config(topic)
                timestamps, stored = raw[topic]
                values = stored.astype(np.float64)
                if config.scale != 1.0:
                    values = values / config.scale
                out[topic] = (timestamps, values, config.unit)
        return out

    def subtree_topics(self, prefix: str) -> list[str]:
        normalized = prefix if prefix.startswith("/") else "/" + prefix
        return self.client.topics(normalized)


def _sensor_refs(node) -> list[str]:
    """Concrete ``<topic>`` operands of an expression, in eval order.

    Aggregation prefixes are excluded — their expansion happens inside
    the evaluator, which batches them through ``series_many``.
    """
    if isinstance(node, SensorRef):
        return [node.topic]
    if isinstance(node, Neg):
        return _sensor_refs(node.operand)
    if isinstance(node, BinOp):
        return _sensor_refs(node.left) + _sensor_refs(node.right)
    return []


def _merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Coalesce overlapping/adjacent [start, end] intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [list(ordered[0])]
    for start, end in ordered[1:]:
        if start <= merged[-1][1] + 1:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(a, b) for a, b in merged]


def _covers(intervals: list[tuple[int, int]], start: int, end: int) -> bool:
    """True if one cached interval fully contains [start, end]."""
    return any(a <= start and end <= b for a, b in intervals)
