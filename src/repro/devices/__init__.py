"""Simulated out-of-band devices.

The paper's out-of-band plugins (IPMI, SNMP, BACnet, REST — section
3.1) monitor physical equipment over a management network: baseboard
management controllers, PDUs, cooling-loop controllers.  None of that
hardware is available here, so this package provides simulated devices
speaking simplified-but-real wire protocols over TCP, as per the
substitution policy in DESIGN.md: the plugins exercise genuine socket
I/O, request/response framing, connection sharing via entities and
failure handling — the code paths the plugin architecture exists for —
against deterministic device models.

* :mod:`repro.devices.model` — device state: named channels whose
  values are functions of time.
* :mod:`repro.devices.lineserver` — shared threaded line-protocol TCP
  server.
* :mod:`repro.devices.bmc` — an IPMI-style BMC exposing Sensor Data
  Records.
* :mod:`repro.devices.snmp_agent` — an SNMP-style agent with OID
  GET/GETNEXT.
* :mod:`repro.devices.bacnet_device` — a BACnet-style controller with
  analog-input objects.
* :mod:`repro.devices.rest_device` — an HTTP/JSON telemetry endpoint.
"""

from repro.devices.model import DeviceModel, constant, ramp, sinusoid, noisy
from repro.devices.lineserver import LineServer
from repro.devices.bmc import BmcServer
from repro.devices.snmp_agent import SnmpAgentServer
from repro.devices.bacnet_device import BacnetDeviceServer
from repro.devices.rest_device import RestDeviceServer

__all__ = [
    "DeviceModel",
    "constant",
    "ramp",
    "sinusoid",
    "noisy",
    "LineServer",
    "BmcServer",
    "SnmpAgentServer",
    "BacnetDeviceServer",
    "RestDeviceServer",
]
