"""Device state models.

A :class:`DeviceModel` is a set of named channels, each a function of
time returning an integer raw value — the state every simulated device
server serves.  Channel generators below cover the signal shapes the
case studies need (steady sensors, daily temperature ramps, noisy
power draw).  Models are deterministic given their RNG seed, so
experiment traces are reproducible.
"""

from __future__ import annotations

import math
import threading
from typing import Callable

import numpy as np

from repro.common.timeutil import NS_PER_SEC, now_ns

#: A channel: nanosecond time -> integer raw value.
Channel = Callable[[int], int]


def constant(value: int) -> Channel:
    """A channel that always reads ``value``."""
    return lambda t_ns: value


def ramp(start: float, rate_per_s: float, scale: float = 1.0) -> Channel:
    """Linear growth: ``start + rate * t``, scaled into integers."""

    def channel(t_ns: int) -> int:
        return int(round((start + rate_per_s * (t_ns / NS_PER_SEC)) * scale))

    return channel


def sinusoid(
    mean: float, amplitude: float, period_s: float, scale: float = 1.0, phase: float = 0.0
) -> Channel:
    """A sine oscillation — daily temperature cycles, fan ripple."""

    def channel(t_ns: int) -> int:
        angle = 2.0 * math.pi * ((t_ns / NS_PER_SEC) / period_s) + phase
        return int(round((mean + amplitude * math.sin(angle)) * scale))

    return channel


def noisy(base: Channel, sigma: float, seed: int = 0) -> Channel:
    """Wrap a channel with Gaussian measurement noise.

    Noise is keyed on the query timestamp so repeated reads at one
    instant agree (a device reports one value per sample time) while
    the trace across time is stochastic yet reproducible.
    """

    def channel(t_ns: int) -> int:
        rng = np.random.default_rng((seed * 0x9E3779B1 + (t_ns // 1_000_000)) & 0xFFFFFFFF)
        return int(round(base(t_ns) + rng.normal(0.0, sigma)))

    return channel


class DeviceModel:
    """Named channels plus the clock they are sampled against.

    ``clock`` defaults to the wall clock; simulations pass a
    :class:`~repro.common.timeutil.SimClock` so device state follows
    simulated time.
    """

    def __init__(self, clock: Callable[[], int] | None = None) -> None:
        self._channels: dict[str, Channel] = {}
        self._clock = clock if clock is not None else now_ns
        self._lock = threading.Lock()
        self.reads = 0

    def add_channel(self, name: str, channel: Channel) -> None:
        with self._lock:
            self._channels[name] = channel

    def read(self, name: str) -> int | None:
        """Sample channel ``name`` at the current model time."""
        with self._lock:
            channel = self._channels.get(name)
        if channel is None:
            return None
        self.reads += 1
        return channel(self._clock())

    def read_at(self, name: str, t_ns: int) -> int | None:
        """Sample channel ``name`` at an explicit time (trace export)."""
        with self._lock:
            channel = self._channels.get(name)
        return None if channel is None else channel(t_ns)

    def channels(self) -> list[str]:
        with self._lock:
            return sorted(self._channels)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._channels

    def __len__(self) -> int:
        with self._lock:
            return len(self._channels)
