"""A simulated SNMP agent.

Models the subset of SNMP (RFC 1157, paper ref. [12]) the DCDB SNMP
plugin needs: integer-valued OIDs in a MIB tree, point GETs and
subtree WALKs.  Protocol (newline-delimited over TCP)::

    GET <oid>          -> "<oid> = INTEGER: <value>"
    WALK <oid-prefix>  -> one "<oid> = INTEGER: <value>" line per match

OIDs are dotted-decimal strings (e.g. ``1.3.6.1.4.1.42.2.1``); each is
bound to a :class:`~repro.devices.model.DeviceModel` channel.  PDUs
and cooling-loop controllers in the facility simulation expose their
meters this way, matching the paper's case study 1 where infrastructure
data is gathered via the SNMP plugin.
"""

from __future__ import annotations

from repro.devices.lineserver import LineServer
from repro.devices.model import DeviceModel


def _oid_key(oid: str) -> tuple[int, ...]:
    """Numeric sort key for lexicographic-by-arc OID ordering."""
    try:
        return tuple(int(part) for part in oid.split("."))
    except ValueError:
        raise ValueError(f"malformed OID {oid!r}") from None


class SnmpAgentServer(LineServer):
    """The agent endpoint; one per simulated PDU/controller."""

    def __init__(
        self,
        model: DeviceModel,
        host: str = "127.0.0.1",
        port: int = 0,
        community: str = "public",
    ) -> None:
        super().__init__(host, port)
        self.model = model
        self.community = community
        self._mib: dict[str, str] = {}  # oid -> channel name

    def bind_oid(self, oid: str, channel: str) -> None:
        """Expose ``channel`` of the model at ``oid``."""
        _oid_key(oid)  # validate
        if channel not in self.model:
            raise ValueError(f"model has no channel {channel!r}")
        self._mib[oid] = channel

    def handle_line(self, line: str) -> str:
        parts = line.split()
        if len(parts) == 2 and parts[0] == "GET":
            channel = self._mib.get(parts[1])
            if channel is None:
                raise ValueError(f"noSuchObject {parts[1]}")
            return f"{parts[1]} = INTEGER: {self.model.read(channel)}"
        if len(parts) == 2 and parts[0] == "WALK":
            prefix = parts[1]
            prefix_key = _oid_key(prefix)
            matches = sorted(
                (
                    oid
                    for oid in self._mib
                    if _oid_key(oid)[: len(prefix_key)] == prefix_key
                ),
                key=_oid_key,
            )
            if not matches:
                raise ValueError(f"noSuchObject {prefix}")
            return "\n".join(
                f"{oid} = INTEGER: {self.model.read(self._mib[oid])}" for oid in matches
            )
        raise ValueError(f"unknown command {line!r}")
