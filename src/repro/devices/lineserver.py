"""Shared threaded line-protocol TCP server.

The BMC, SNMP-agent and BACnet device simulators all speak simple
newline-delimited request/response protocols; this base class owns the
socket plumbing (accept loop, per-connection reader threads, clean
shutdown) so each device module only implements ``handle_line``.
"""

from __future__ import annotations

import logging
import socket
import threading

logger = logging.getLogger(__name__)


class LineServer:
    """A TCP server dispatching one text line to one text response.

    Subclasses implement :meth:`handle_line`; multi-line responses are
    returned as a single string with embedded newlines, always
    terminated by the ``END`` marker line so clients can frame replies
    without timeouts.
    """

    #: Marker terminating every response.
    END_MARKER = "END"

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._server_sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self.requests_served = 0

    # -- protocol hook ----------------------------------------------------

    def handle_line(self, line: str) -> str:
        """Process one request line; return the response body.

        The framework appends the END marker.  Raise ValueError to
        produce an ``ERROR`` response.
        """
        raise NotImplementedError

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(64)
        self._server_sock = sock
        self.port = sock.getsockname()[1]
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{type(self).__name__}-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._server_sock is not None:
            try:
                self._server_sock.close()
            except OSError:
                pass
        with self._conns_lock:
            for conn in list(self._conns):
                try:
                    conn.close()
                except OSError:
                    pass
            self._conns.clear()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "LineServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- internals ---------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server_sock is not None
        while self._running:
            try:
                conn, _addr = self._server_sock.accept()
            except OSError:
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conns_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._conn_loop, args=(conn,), daemon=True
            ).start()

    def _conn_loop(self, conn: socket.socket) -> None:
        buf = b""
        try:
            while self._running:
                try:
                    data = conn.recv(4096)
                except OSError:
                    break
                if not data:
                    break
                buf += data
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    text = line.decode("utf-8", errors="replace").strip()
                    if not text:
                        continue
                    try:
                        body = self.handle_line(text)
                    except ValueError as exc:
                        body = f"ERROR {exc}"
                    except Exception as exc:  # noqa: BLE001 - device must stay up
                        logger.warning("%s: handler failed: %s", type(self).__name__, exc)
                        body = f"ERROR internal: {type(exc).__name__}"
                    self.requests_served += 1
                    response = f"{body}\n{self.END_MARKER}\n".encode("utf-8")
                    try:
                        conn.sendall(response)
                    except OSError:
                        return
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass


class LineClient:
    """Blocking client for :class:`LineServer` protocols.

    Plugins share one client per entity (the paper's host-entity
    pattern); a lock serializes request/response pairs on the single
    connection.
    """

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    def connect(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def request(self, line: str) -> list[str]:
        """Send one request line; return response lines (END stripped).

        Raises ``ConnectionError`` on transport failure and
        ``ValueError`` when the device answered with ERROR.
        """
        with self._lock:
            if self._sock is None:
                raise ConnectionError("not connected")
            self._sock.sendall((line + "\n").encode("utf-8"))
            buf = b""
            while True:
                data = self._sock.recv(4096)
                if not data:
                    raise ConnectionError("device closed connection")
                buf += data
                if buf.endswith(b"\nEND\n") or buf == b"END\n":
                    break
        lines = buf.decode("utf-8").splitlines()
        assert lines[-1] == "END"
        body = lines[:-1]
        if body and body[0].startswith("ERROR"):
            raise ValueError(body[0][6:])
        return body
