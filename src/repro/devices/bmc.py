"""A simulated baseboard management controller (IPMI-style).

Models the subset of IPMI (paper ref. [1]) the DCDB IPMI plugin needs:
a Sensor Data Record (SDR) repository addressed by record ID, each
record naming a sensor with a type and unit, and a "get sensor
reading" command.  Protocol (newline-delimited over TCP)::

    LIST SDR                  -> "SDR <id> <name> <type> <unit>" per record
    GET SENSOR <id>           -> "READING <id> <raw-value>"
    GET SEL INFO              -> "SEL <entry-count>"

Raw values come from a :class:`~repro.devices.model.DeviceModel`
channel per record, like a real BMC polling its ADCs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.lineserver import LineServer
from repro.devices.model import DeviceModel


@dataclass(frozen=True, slots=True)
class SdrRecord:
    """One Sensor Data Record in the BMC's repository."""

    record_id: int
    name: str
    sensor_type: str  # e.g. "temperature", "power", "fan"
    unit: str


class BmcServer(LineServer):
    """The BMC endpoint; one per simulated node or chassis."""

    def __init__(
        self,
        model: DeviceModel,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(host, port)
        self.model = model
        self._records: dict[int, SdrRecord] = {}
        self._sel_entries = 0

    def add_record(self, record: SdrRecord) -> None:
        """Register an SDR; its name must match a model channel."""
        if record.name not in self.model:
            raise ValueError(f"model has no channel {record.name!r}")
        self._records[record.record_id] = record

    def log_event(self) -> None:
        """Append one System Event Log entry (used in failure tests)."""
        self._sel_entries += 1

    def handle_line(self, line: str) -> str:
        parts = line.split()
        if parts[:2] == ["LIST", "SDR"]:
            if not self._records:
                return "EMPTY"
            return "\n".join(
                f"SDR {r.record_id} {r.name} {r.sensor_type} {r.unit}"
                for r in sorted(self._records.values(), key=lambda r: r.record_id)
            )
        if parts[:2] == ["GET", "SENSOR"] and len(parts) == 3:
            try:
                record_id = int(parts[2])
            except ValueError:
                raise ValueError(f"bad record id {parts[2]!r}") from None
            record = self._records.get(record_id)
            if record is None:
                raise ValueError(f"no SDR with id {record_id}")
            value = self.model.read(record.name)
            return f"READING {record_id} {value}"
        if parts[:3] == ["GET", "SEL", "INFO"]:
            return f"SEL {self._sel_entries}"
        raise ValueError(f"unknown command {line!r}")
