"""A simulated BACnet building-automation controller.

Models the subset of BACnet (ASHRAE 135, paper ref. [5]) that the DCDB
BACnet plugin consumes: analog-input objects addressed by instance
number, each with Present_Value and a few descriptive properties —
the shape of the air-handler/chiller/flow-meter points a building
management system exposes.  Protocol (newline-delimited over TCP)::

    READPROP AI <instance> PRESENT_VALUE -> "AI <instance> PRESENT_VALUE <value>"
    READPROP AI <instance> UNITS         -> "AI <instance> UNITS <unit>"
    READPROP AI <instance> OBJECT_NAME   -> "AI <instance> OBJECT_NAME <name>"
    LIST AI                              -> "AI <instance> <name>" per object
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.lineserver import LineServer
from repro.devices.model import DeviceModel


@dataclass(frozen=True, slots=True)
class AnalogInput:
    """One BACnet analog-input object."""

    instance: int
    name: str
    unit: str


class BacnetDeviceServer(LineServer):
    """The controller endpoint; one per simulated plant subsystem."""

    def __init__(
        self,
        model: DeviceModel,
        host: str = "127.0.0.1",
        port: int = 0,
        device_id: int = 1,
    ) -> None:
        super().__init__(host, port)
        self.model = model
        self.device_id = device_id
        self._objects: dict[int, AnalogInput] = {}

    def add_object(self, obj: AnalogInput) -> None:
        """Register an analog input; its name must match a channel."""
        if obj.name not in self.model:
            raise ValueError(f"model has no channel {obj.name!r}")
        self._objects[obj.instance] = obj

    def handle_line(self, line: str) -> str:
        parts = line.split()
        if parts[:2] == ["LIST", "AI"]:
            if not self._objects:
                return "EMPTY"
            return "\n".join(
                f"AI {o.instance} {o.name}"
                for o in sorted(self._objects.values(), key=lambda o: o.instance)
            )
        if parts[:2] == ["READPROP", "AI"] and len(parts) == 4:
            try:
                instance = int(parts[2])
            except ValueError:
                raise ValueError(f"bad instance {parts[2]!r}") from None
            obj = self._objects.get(instance)
            if obj is None:
                raise ValueError(f"unknown object AI:{instance}")
            prop = parts[3]
            if prop == "PRESENT_VALUE":
                return f"AI {instance} PRESENT_VALUE {self.model.read(obj.name)}"
            if prop == "UNITS":
                return f"AI {instance} UNITS {obj.unit}"
            if prop == "OBJECT_NAME":
                return f"AI {instance} OBJECT_NAME {obj.name}"
            raise ValueError(f"unknown property {prop!r}")
        raise ValueError(f"unknown command {line!r}")
