"""A simulated RESTful telemetry endpoint.

The paper's REST plugin polls HTTP APIs (e.g. rack-level cooling-unit
controllers at LRZ expose their meters this way, as used in case
study 1).  This device serves a real HTTP/JSON API:

``GET /sensors``            -> ``{"name": value, ...}`` for all channels
``GET /sensors/{name}``     -> ``{"name": ..., "value": ...}``

backed by a :class:`~repro.devices.model.DeviceModel`.
"""

from __future__ import annotations

from repro.common.httpjson import JsonHttpServer
from repro.devices.model import DeviceModel


class RestDeviceServer:
    """HTTP telemetry endpoint over a device model."""

    def __init__(
        self, model: DeviceModel, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.model = model
        self.server = JsonHttpServer(host, port)
        self.server.route("GET", "/sensors", self._all)
        self.server.route("GET", "/sensors/:name", self._one)

    @property
    def port(self) -> int | None:
        return self.server.port

    def start(self) -> None:
        self.server.start()

    def stop(self) -> None:
        self.server.stop()

    def __enter__(self) -> "RestDeviceServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- handlers ---------------------------------------------------------

    def _all(self, params: dict, query: dict, body: bytes):
        return 200, {name: self.model.read(name) for name in self.model.channels()}

    def _one(self, params: dict, query: dict, body: bytes):
        name = params["name"]
        value = self.model.read(name)
        if value is None:
            return 404, {"error": f"unknown sensor {name!r}"}
        return 200, {"name": name, "value": value}
