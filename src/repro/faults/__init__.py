"""Deterministic fault injection for chaos testing.

The paper's availability story leans on Cassandra semantics — "any
node may be used to insert or query data" (section 4.3) — and DCDB's
production deployments assume the pipeline keeps flowing through
component churn.  This package is the *test substrate* for those
claims: a seedable :class:`FaultPlan` (scheduled kill/restart events +
named probabilistic substreams) and wrappers that inject its decisions
at each layer of the stack:

* :class:`FaultyBackend` — any :class:`~repro.storage.backend.StorageBackend`,
  failing whole operations;
* :class:`FlakyNode` — one :class:`~repro.storage.node.StorageNode`
  with kill/restart state, driving the cluster's hinted handoff and
  read failover;
* :class:`BrokerFaultInjector` — socket-level drop/disconnect inside
  the MQTT brokers;
* :class:`DiskFaultInjector` — the durable engine's disk seam (torn
  writes, fsync failures, short reads at exact operation counts);
* :class:`RebalanceFaultInjector` — scripted kills/errors at exact
  chunk boundaries of a live rebalance stream.

Everything is deterministic per seed: the chaos suite commits five
seeds (``make chaos``, ``CHAOS_SEEDS`` to override) and the same seed
always reproduces the same fault schedule.  See ``docs/resilience.md``.
"""

from repro.faults.backend import FaultyBackend
from repro.faults.disk import DiskFaultInjector
from repro.faults.network import BrokerFaultInjector
from repro.faults.node import FlakyNode
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.rebalance import RebalanceFaultInjector

__all__ = [
    "BrokerFaultInjector",
    "DiskFaultInjector",
    "FaultEvent",
    "FaultPlan",
    "FaultyBackend",
    "FlakyNode",
    "RebalanceFaultInjector",
]
