"""An up/down proxy in front of one :class:`StorageNode`.

``FlakyNode`` models a crashed-then-restarted storage server: while
killed, every data/metadata/maintenance operation raises
:class:`~repro.common.errors.NodeDownError`; after ``restart()`` the
node serves again with all the data it held before the kill (a process
restart over durable storage, the paper's Cassandra deployment model).
Writes that arrived while it was down are *not* here — they live in
the cluster's hinted-handoff queue and land on replay
(:meth:`repro.storage.cluster.StorageCluster.replay_hints`).

An optional ``fault_rate`` adds probabilistic failures while up (a
flaky disk/NIC), drawn deterministically from the plan's substream.

The proxy duck-types the :class:`StorageNode` surface the cluster
uses, so ``StorageCluster([FlakyNode(StorageNode(...))])`` just works;
introspection (``row_count``, ``metrics``…) is never guarded so tests
can inspect a "down" node.  A ``dcdb_storage_node_up`` gauge labelled
by node is registered on the wrapped node's registry and therefore
shows up on ``/metrics`` next to the node's other instruments.
"""

from __future__ import annotations

import threading

from repro.common.errors import FaultInjectedError, NodeDownError
from repro.faults.plan import FaultPlan
from repro.storage.node import StorageNode

__all__ = ["FlakyNode"]


class FlakyNode:
    """Wrap a storage node with kill/restart state and optional flakiness."""

    def __init__(
        self,
        node: StorageNode,
        plan: FaultPlan | None = None,
        fault_rate: float = 0.0,
        stream: str | None = None,
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        self.node = node
        self.plan = plan
        self.fault_rate = fault_rate
        self.stream = stream if stream is not None else f"flaky-node-{node.name}"
        self._up = True
        self._lock = threading.Lock()
        self.kills = 0
        # Membership-epoch awareness: the cluster binds its epoch
        # source here so chaos tests can assert *when* (in membership
        # time) a node died — e.g. "killed during the transfer epoch".
        self._epoch_source = None
        self.killed_at_epoch: int | None = None
        node.metrics.gauge(
            "dcdb_storage_node_up", "1 while the node serves requests", ("node",)
        ).labels(node=node.name).set_function(lambda: 1 if self._up else 0)

    # -- fault control -------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self._up

    def bind_epoch(self, epoch_source) -> None:
        """Record the cluster's epoch callable for kill stamping."""
        self._epoch_source = epoch_source

    def kill(self) -> None:
        """Take the node down; in-flight state on the node is kept."""
        with self._lock:
            if self._up:
                self._up = False
                self.kills += 1
                if self._epoch_source is not None:
                    self.killed_at_epoch = self._epoch_source()

    def restart(self) -> None:
        """Bring the node back with the data it held before the kill."""
        self._up = True

    def _guard(self, op: str) -> None:
        if not self._up:
            raise NodeDownError(f"node {self.name} is down during {op}")
        if (
            self.fault_rate > 0.0
            and self.plan is not None
            and self.plan.chance(self.stream, self.fault_rate)
        ):
            raise FaultInjectedError(f"injected fault on node {self.name}: {op}")

    # -- guarded StorageNode surface ----------------------------------------

    def insert(self, sid, timestamp, value, ttl_s=0) -> None:
        self._guard("insert")
        self.node.insert(sid, timestamp, value, ttl_s)

    def insert_batch(self, items) -> int:
        self._guard("insert_batch")
        return self.node.insert_batch(items)

    def query(self, sid, start, end):
        self._guard("query")
        return self.node.query(sid, start, end)

    def query_many(self, sids, start, end):
        self._guard("query_many")
        return self.node.query_many(sids, start, end)

    def sids(self):
        self._guard("sids")
        return self.node.sids()

    def stream_rows(self, sid, chunk_rows=4096):
        """Guarded rebalance stream: a kill mid-iteration aborts the
        stream with :class:`NodeDownError`, exactly like a streaming
        source crashing between chunks."""
        self._guard("stream_rows")
        for chunk in self.node.stream_rows(sid, chunk_rows):
            self._guard("stream_rows")
            yield chunk

    def delete_before(self, sid, cutoff) -> int:
        self._guard("delete_before")
        return self.node.delete_before(sid, cutoff)

    def put_metadata(self, key, value) -> None:
        self._guard("put_metadata")
        self.node.put_metadata(key, value)

    def get_metadata(self, key):
        self._guard("get_metadata")
        return self.node.get_metadata(key)

    def metadata_keys(self, prefix=""):
        self._guard("metadata_keys")
        return self.node.metadata_keys(prefix)

    def compact(self) -> None:
        self._guard("compact")
        self.node.compact()

    def flush(self) -> None:
        self._guard("flush")
        self.node.flush()

    def commit_durable(self) -> bool:
        """WAL group-commit barrier; no-op over an in-memory node."""
        self._guard("commit_durable")
        commit = getattr(self.node, "commit_durable", None)
        return commit() if commit is not None else False

    def close(self) -> None:
        # Unguarded: shutdown must release files even on a "down" node.
        close = getattr(self.node, "close", None)
        if close is not None:
            close()

    # -- unguarded introspection --------------------------------------------

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def metrics(self):
        return self.node.metrics

    @property
    def row_count(self) -> int:
        return self.node.row_count

    @property
    def segment_count(self) -> int:
        return self.node.segment_count

    @property
    def inserts(self) -> int:
        return self.node.inserts

    @property
    def flushes(self) -> int:
        return self.node.flushes

    @property
    def compactions(self) -> int:
        return self.node.compactions
