"""Socket-level fault injection for the MQTT brokers.

:class:`BrokerFaultInjector` plugs into
:class:`~repro.mqtt.broker.MQTTBroker` (``fault_injector=`` or
``set_fault_injector``) through the event loop's stable injection
seam: the broker wires it as each connection's ``data_filter``
(:class:`~repro.mqtt.eventloop.Connection`), so it is consulted once
per recv chunk on the loop thread — no reader-thread internals
involved.  It can

* ``drop`` the chunk — the bytes vanish as if the network ate them
  (the client's QoS-1 PUBLISH then times out waiting for its PUBACK,
  which is exactly the signal a real Pusher uses to re-publish);
* ``disconnect`` the client — the socket is closed mid-stream, firing
  the session's last-will path, as a crashed Pusher or a network
  partition would;
* ``stall`` the connection — reading from it pauses for a configured
  interval while the socket stays open, modelling a congested path or
  a wedged peer (the broker's keepalive enforcement still sees the
  session as silent).

Decisions come from plan substreams (deterministic per seed) plus
explicit one-shot triggers for scripted scenarios ("cut pusher-3 after
its 10th packet").
"""

from __future__ import annotations

import threading

from repro.faults.plan import FaultPlan

__all__ = ["BrokerFaultInjector", "DROP", "DISCONNECT", "STALL"]

DROP = "drop"
DISCONNECT = "disconnect"
STALL = "stall"


class BrokerFaultInjector:
    """Per-recv-chunk fault decisions for the broker's event loop."""

    def __init__(
        self,
        plan: FaultPlan | None = None,
        drop_rate: float = 0.0,
        disconnect_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_seconds: float = 0.05,
        stream: str = "broker-network",
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("disconnect_rate", disconnect_rate),
            ("stall_rate", stall_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.plan = plan if plan is not None else FaultPlan()
        self.drop_rate = drop_rate
        self.disconnect_rate = disconnect_rate
        self.stall_rate = stall_rate
        self.stall_seconds = stall_seconds
        self.stream = stream
        self._lock = threading.Lock()
        # client_id -> remaining recv chunks before a forced action;
        # None key applies to every client.
        self._disconnect_after: dict[str | None, int] = {}
        self._stall_after: dict[str | None, int] = {}
        self.drops = 0
        self.disconnects = 0
        self.stalls = 0

    def disconnect_client_after(self, client_id: str | None, chunks: int = 0) -> None:
        """Arm a one-shot disconnect after ``chunks`` further recvs."""
        with self._lock:
            self._disconnect_after[client_id] = chunks

    def stall_client_after(self, client_id: str | None, chunks: int = 0) -> None:
        """Arm a one-shot read stall after ``chunks`` further recvs."""
        with self._lock:
            self._stall_after[client_id] = chunks

    def on_data(self, client_id: str | None, data: bytes):
        """Per-recv-chunk decision: None, "drop", "disconnect", or
        ("stall", seconds).  Called on the broker's event-loop thread
        (the ``data_filter`` seam of each connection)."""
        with self._lock:
            for key in (client_id, None):
                remaining = self._disconnect_after.get(key)
                if remaining is not None:
                    if remaining <= 0:
                        del self._disconnect_after[key]
                        self.disconnects += 1
                        return DISCONNECT
                    self._disconnect_after[key] = remaining - 1
            for key in (client_id, None):
                remaining = self._stall_after.get(key)
                if remaining is not None:
                    if remaining <= 0:
                        del self._stall_after[key]
                        self.stalls += 1
                        return (STALL, self.stall_seconds)
                    self._stall_after[key] = remaining - 1
        # Probabilistic faults: disconnect checked first (rarer, more
        # violent), then drop, then stall.  Each consults its own
        # decision so the draw sequence per stream is one-per-question,
        # deterministic.
        if self.disconnect_rate > 0.0 and self.plan.chance(
            f"{self.stream}-disconnect", self.disconnect_rate
        ):
            with self._lock:
                self.disconnects += 1
            return DISCONNECT
        if self.drop_rate > 0.0 and self.plan.chance(f"{self.stream}-drop", self.drop_rate):
            with self._lock:
                self.drops += 1
            return DROP
        if self.stall_rate > 0.0 and self.plan.chance(
            f"{self.stream}-stall", self.stall_rate
        ):
            with self._lock:
                self.stalls += 1
            return (STALL, self.stall_seconds)
        return None
