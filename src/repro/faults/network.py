"""Socket-level fault injection for the MQTT brokers.

:class:`BrokerFaultInjector` plugs into
:class:`~repro.mqtt.broker.MQTTBroker` (``fault_injector=`` or
``set_fault_injector``) and is consulted once per ``recv`` chunk on
each client reader thread.  It can

* ``drop`` the chunk — the bytes vanish as if the network ate them
  (the client's QoS-1 PUBLISH then times out waiting for its PUBACK,
  which is exactly the signal a real Pusher uses to re-publish);
* ``disconnect`` the client — the socket is closed mid-stream, firing
  the session's last-will path, as a crashed Pusher or a network
  partition would.

Decisions come from plan substreams (deterministic per seed) plus
explicit one-shot triggers for scripted scenarios ("cut pusher-3 after
its 10th packet").
"""

from __future__ import annotations

import threading

from repro.faults.plan import FaultPlan

__all__ = ["BrokerFaultInjector", "DROP", "DISCONNECT"]

DROP = "drop"
DISCONNECT = "disconnect"


class BrokerFaultInjector:
    """Per-recv fault decisions for broker reader threads."""

    def __init__(
        self,
        plan: FaultPlan | None = None,
        drop_rate: float = 0.0,
        disconnect_rate: float = 0.0,
        stream: str = "broker-network",
    ) -> None:
        for name, rate in (("drop_rate", drop_rate), ("disconnect_rate", disconnect_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.plan = plan if plan is not None else FaultPlan()
        self.drop_rate = drop_rate
        self.disconnect_rate = disconnect_rate
        self.stream = stream
        self._lock = threading.Lock()
        # client_id -> remaining recv chunks before a forced disconnect;
        # None key applies to every client.
        self._disconnect_after: dict[str | None, int] = {}
        self.drops = 0
        self.disconnects = 0

    def disconnect_client_after(self, client_id: str | None, chunks: int = 0) -> None:
        """Arm a one-shot disconnect after ``chunks`` further recvs."""
        with self._lock:
            self._disconnect_after[client_id] = chunks

    def on_data(self, client_id: str | None, data: bytes) -> str | None:
        """Called by the broker per recv chunk; returns an action or None."""
        with self._lock:
            for key in (client_id, None):
                remaining = self._disconnect_after.get(key)
                if remaining is not None:
                    if remaining <= 0:
                        del self._disconnect_after[key]
                        self.disconnects += 1
                        return DISCONNECT
                    self._disconnect_after[key] = remaining - 1
        # Probabilistic faults: disconnect checked first (rarer, more
        # violent), then drop.  Each consults its own decision so the
        # draw sequence per stream is one-per-question, deterministic.
        if self.disconnect_rate > 0.0 and self.plan.chance(
            f"{self.stream}-disconnect", self.disconnect_rate
        ):
            with self._lock:
                self.disconnects += 1
            return DISCONNECT
        if self.drop_rate > 0.0 and self.plan.chance(f"{self.stream}-drop", self.drop_rate):
            with self._lock:
                self.drops += 1
            return DROP
        return None
