"""Deterministic fault injection for live rebalances.

The rebalance streamer (:meth:`StorageCluster._stream_sid`) exposes a
hook called before every chunk it ships.  ``RebalanceFaultInjector``
plugs into that hook and fires scripted faults at exact points in the
stream — kill the source after N chunks, kill the target, or raise an
injected error — so chaos tests can reproduce "a node died mid-
transfer" byte-for-byte from a seed instead of hoping a random kill
lands inside the streaming window.

Usage::

    injector = RebalanceFaultInjector(cluster)
    injector.kill_source_after(chunks=2, proxies=flaky_nodes)
    cluster.add_node(new_node, wait=False)
    ...

The injector disarms itself after firing (one-shot) so the retried
stream from the next replica proceeds cleanly.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import FaultInjectedError

__all__ = ["RebalanceFaultInjector"]


class RebalanceFaultInjector:
    """Scripted one-shot faults at chunk boundaries of a rebalance."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self._armed: Callable[[int, int, int, int], None] | None = None
        self.fired: list[dict[str, int | str]] = []
        cluster.rebalance_fault_hook = self._on_chunk

    def _on_chunk(self, partition: int, source: int, target: int, chunk_no: int) -> None:
        armed = self._armed
        if armed is not None:
            armed(partition, source, target, chunk_no)

    def _record(self, kind: str, partition: int, source: int, target: int, chunk_no: int) -> None:
        self.fired.append(
            {
                "kind": kind,
                "partition": partition,
                "source": source,
                "target": target,
                "chunk": chunk_no,
            }
        )

    def disarm(self) -> None:
        self._armed = None

    def kill_source_after(self, chunks: int, proxies) -> None:
        """Kill the streaming *source* once it has shipped ``chunks``.

        ``proxies`` maps node index -> kill()-able proxy (the sim's
        FlakyNode list).  The stream then aborts with NodeDownError and
        the cluster re-streams from the next live old replica.
        """

        def fire(partition: int, source: int, target: int, chunk_no: int) -> None:
            if chunk_no < chunks:
                return
            self._armed = None
            self._record("kill-source", partition, source, target, chunk_no)
            proxies[source].kill()

        self._armed = fire

    def kill_target_after(self, chunks: int, proxies) -> None:
        """Kill the *gaining* node mid-stream; chunks become hints."""

        def fire(partition: int, source: int, target: int, chunk_no: int) -> None:
            if chunk_no < chunks:
                return
            self._armed = None
            self._record("kill-target", partition, source, target, chunk_no)
            proxies[target].kill()

        self._armed = fire

    def fail_chunk(self, chunk_no: int) -> None:
        """Raise an injected error on one exact chunk (stream retries)."""

        def fire(partition: int, source: int, target: int, no: int) -> None:
            if no != chunk_no:
                return
            self._armed = None
            self._record("fail-chunk", partition, source, target, no)
            raise FaultInjectedError(
                f"injected rebalance fault at chunk {no} of partition {partition:#x}"
            )

        self._armed = fire
