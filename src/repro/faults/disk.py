"""Deterministic disk-fault seam for the durable storage engine.

The WAL and segment writers accept an optional ``disk`` object and
route every physical write, fsync and bulk read through it.  The
default (``disk=None``) costs nothing; tests pass a
:class:`DiskFaultInjector` to stage the three classic storage
failures at exact operation counts:

* **torn write** — only a prefix of the frame reaches the file before
  the "power fails" (an ``OSError``): the canonical WAL torn tail.
* **fsync failure** — the commit path's fsync raises, modelling a
  dying device or a thin-provisioned volume running out of space.
* **short read** — a recovery-time read returns fewer bytes than the
  file holds, modelling a truncated copy or a mid-recovery crash.

Counters are cumulative per injector, so one injector can arm a fault
"on the Nth write since construction" and the chaos seeds reproduce
the same byte-exact crash state on every run.
"""

from __future__ import annotations

import os

from repro.common.errors import FaultInjectedError

__all__ = ["DiskFaultInjector"]


class DiskFaultInjector:
    """Pass-through disk I/O with exact-count scheduled failures.

    Parameters
    ----------
    torn_write_at:
        1-based index of the write call that tears: half the buffer is
        written, then :class:`FaultInjectedError` is raised.
    fsync_fail_at:
        1-based index of the fsync call that raises ``OSError``.
    short_read_at:
        1-based index of the bulk read that loses its tail half.
    """

    def __init__(
        self,
        torn_write_at: int | None = None,
        fsync_fail_at: int | None = None,
        short_read_at: int | None = None,
    ) -> None:
        self.torn_write_at = torn_write_at
        self.fsync_fail_at = fsync_fail_at
        self.short_read_at = short_read_at
        self.writes = 0
        self.fsyncs = 0
        self.reads = 0
        self.faults_injected = 0

    def write(self, handle, data: bytes) -> None:
        self.writes += 1
        if self.torn_write_at is not None and self.writes == self.torn_write_at:
            handle.write(data[: max(1, len(data) // 2)])
            self.faults_injected += 1
            raise FaultInjectedError(
                f"injected fault: torn write on write #{self.writes}"
            )
        handle.write(data)

    def fsync(self, handle) -> None:
        self.fsyncs += 1
        if self.fsync_fail_at is not None and self.fsyncs == self.fsync_fail_at:
            self.faults_injected += 1
            raise OSError(f"injected fault: fsync failure on fsync #{self.fsyncs}")
        os.fsync(handle.fileno())

    def read(self, data: bytes, name: str = "") -> bytes:
        self.reads += 1
        if self.short_read_at is not None and self.reads == self.short_read_at:
            self.faults_injected += 1
            return data[: len(data) // 2]
        return data
