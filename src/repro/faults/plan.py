"""Deterministic, seedable fault schedules.

A :class:`FaultPlan` is the single source of randomness and timing for
every fault a test or simulation injects.  It combines:

* **scheduled faults** — :class:`FaultEvent` entries pinned to an
  injected-clock timestamp ("kill node1 at t=3s, restart it at t=5s"),
  popped by whoever drives the clock (usually
  :meth:`repro.simulation.simcluster.SimulatedCluster.apply_due_faults`);
* **probabilistic faults** — named substreams derived from one seed via
  :class:`repro.common.rng.RngFactory`, drawn by the wrapper classes
  (:class:`~repro.faults.backend.FaultyBackend`,
  :class:`~repro.faults.node.FlakyNode`,
  :class:`~repro.faults.network.BrokerFaultInjector`).

Determinism contract: the same ``(seed, stream name)`` pair always
yields an identical decision sequence, and adding a new stream never
perturbs existing ones (the :mod:`repro.common.rng` property).  Two
runs that perform the same operations against the same plan therefore
observe the same faults — the foundation of the seeded chaos suite
(``make chaos``).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import RngFactory

__all__ = ["FaultEvent", "FaultPlan"]

#: Actions understood by the simulation driver.  Wrappers are free to
#: define their own; these are the ones ``apply_due_faults`` executes.
KILL = "kill"
RESTART = "restart"


@dataclass(frozen=True, slots=True, order=True)
class FaultEvent:
    """One scheduled fault: do ``action`` to ``target`` at ``at_ns``.

    Ordering is (time, sequence number), so two events scheduled for
    the same instant fire in the order they were added — important for
    kill-then-restart pairs at equal timestamps.
    """

    at_ns: int
    seq: int = field(compare=True)
    action: str = field(compare=False, default=KILL)
    target: str = field(compare=False, default="")


class FaultPlan:
    """Seeded fault schedule + named random substreams.

    Thread-safe: writer threads, broker reader threads and the test
    driver may consult the plan concurrently.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng_factory = RngFactory(self.seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._events: list[FaultEvent] = []  # heap by (at_ns, seq)
        self._seq = itertools.count()
        self._lock = threading.Lock()

    # -- probabilistic faults ------------------------------------------------

    def stream(self, name: str) -> np.random.Generator:
        """The named substream; one generator per name, created lazily."""
        with self._lock:
            gen = self._streams.get(name)
            if gen is None:
                gen = self._rng_factory.stream(name)
                self._streams[name] = gen
            return gen

    def chance(self, name: str, probability: float) -> bool:
        """One deterministic Bernoulli draw from substream ``name``.

        Always consumes exactly one draw (even for probability 0 or 1)
        so the decision sequence of a stream depends only on how many
        times it was consulted, not on the rates asked for.
        """
        gen = self.stream(name)
        with self._lock:
            draw = gen.random()
        return draw < probability

    # -- scheduled faults ----------------------------------------------------

    def schedule(self, at_ns: int, action: str, target: str) -> FaultEvent:
        """Add one timed fault; returns the event for introspection."""
        with self._lock:
            event = FaultEvent(int(at_ns), next(self._seq), action, target)
            heapq.heappush(self._events, event)
            return event

    def kill_at(self, at_ns: int, target: str) -> FaultEvent:
        return self.schedule(at_ns, KILL, target)

    def restart_at(self, at_ns: int, target: str) -> FaultEvent:
        return self.schedule(at_ns, RESTART, target)

    def due(self, now_ns: int) -> list[FaultEvent]:
        """Pop every event scheduled at or before ``now_ns``, in order."""
        fired: list[FaultEvent] = []
        with self._lock:
            while self._events and self._events[0].at_ns <= now_ns:
                fired.append(heapq.heappop(self._events))
        return fired

    def pending(self) -> list[FaultEvent]:
        """Events not yet fired, soonest first (non-destructive)."""
        with self._lock:
            return sorted(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
