"""A fault-injecting wrapper around any :class:`StorageBackend`.

``FaultyBackend`` sits between a producer (the batching writer, the
Collect Agent, a test) and a real backend and fails operations on
purpose: probabilistically from a :class:`~repro.faults.plan.FaultPlan`
substream, for an exact armed count (``fail_next``), or wholesale
while ``set_down(True)``.  With ``fault_rate=0`` and nothing armed it
is transparent — the backend contract suite runs against the wrapper
to prove that (``tests/storage/test_backends_contract.py``).
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import FaultInjectedError
from repro.core.sid import SensorId
from repro.faults.plan import FaultPlan
from repro.storage.backend import InsertItem, StorageBackend

__all__ = ["FaultyBackend"]

#: Operations subject to probabilistic faults by default.  Metadata and
#: maintenance ops stay clean unless explicitly listed, so chaos tests
#: target the data plane without breaking topic->SID bookkeeping.
DEFAULT_FAIL_OPS = ("insert", "insert_batch", "query", "query_many", "query_prefix")


class FaultyBackend(StorageBackend):
    """Delegate everything; sometimes raise :class:`FaultInjectedError`.

    Parameters
    ----------
    backend:
        The wrapped store.
    plan:
        Source of deterministic randomness; a fresh seed-0 plan when
        omitted.
    fault_rate:
        Per-operation failure probability in [0, 1] for ops listed in
        ``fail_ops``.
    stream:
        Substream name inside the plan, so several wrappers on one plan
        draw independently.
    fail_ops:
        Which operations the probabilistic faults apply to.
    """

    def __init__(
        self,
        backend: StorageBackend,
        plan: FaultPlan | None = None,
        fault_rate: float = 0.0,
        stream: str = "faulty-backend",
        fail_ops: Iterable[str] = DEFAULT_FAIL_OPS,
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        self.backend = backend
        self.plan = plan if plan is not None else FaultPlan()
        self.fault_rate = fault_rate
        self.stream = stream
        self.fail_ops = frozenset(fail_ops)
        self._down = False
        self._armed = 0  # fail exactly this many guarded ops, then recover
        self._lock = threading.Lock()
        self.faults_injected = 0

    # -- fault control -------------------------------------------------------

    def set_down(self, down: bool) -> None:
        """Hard-fail every guarded operation while down."""
        self._down = down

    def fail_next(self, count: int = 1) -> None:
        """Arm exactly ``count`` deterministic failures (FIFO with ops)."""
        with self._lock:
            self._armed += count

    def _guard(self, op: str) -> None:
        with self._lock:
            if self._down:
                self.faults_injected += 1
                raise FaultInjectedError(f"injected fault: backend down during {op}")
            if self._armed > 0:
                self._armed -= 1
                self.faults_injected += 1
                raise FaultInjectedError(f"injected fault: armed failure during {op}")
        if (
            self.fault_rate > 0.0
            and op in self.fail_ops
            and self.plan.chance(self.stream, self.fault_rate)
        ):
            with self._lock:
                self.faults_injected += 1
            raise FaultInjectedError(f"injected fault: {op} (rate {self.fault_rate})")

    # -- data plane ----------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        self._guard("insert")
        self.backend.insert(sid, timestamp, value, ttl_s)

    def insert_batch(self, items: Iterable[InsertItem]) -> int:
        self._guard("insert_batch")
        return self.backend.insert_batch(items)

    def query(self, sid: SensorId, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        self._guard("query")
        return self.backend.query(sid, start, end)

    def query_many(
        self, sids, start: int, end: int
    ) -> dict[SensorId, tuple[np.ndarray, np.ndarray]]:
        self._guard("query_many")
        return self.backend.query_many(sids, start, end)

    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        self._guard("query_prefix")
        return self.backend.query_prefix(prefix, levels, start, end)

    def sids(self) -> list[SensorId]:
        self._guard("sids")
        return self.backend.sids()

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        self._guard("delete_before")
        return self.backend.delete_before(sid, cutoff)

    # -- metadata plane ------------------------------------------------------

    def put_metadata(self, key: str, value: str) -> None:
        self._guard("put_metadata")
        self.backend.put_metadata(key, value)

    def get_metadata(self, key: str) -> str | None:
        self._guard("get_metadata")
        return self.backend.get_metadata(key)

    def metadata_keys(self, prefix: str = "") -> list[str]:
        self._guard("metadata_keys")
        return self.backend.metadata_keys(prefix)

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> None:
        self._guard("compact")
        self.backend.compact()

    def flush(self) -> None:
        self._guard("flush")
        self.backend.flush()

    def commit_durable(self) -> bool:
        """Durable group-commit barrier; transparent over memory backends."""
        self._guard("commit_durable")
        commit = getattr(self.backend, "commit_durable", None)
        return commit() if commit is not None else False

    def close(self) -> None:
        self.backend.close()

    # -- observability passthrough ------------------------------------------

    @property
    def metrics(self):
        return getattr(self.backend, "metrics", None)

    def metrics_registries(self):
        inner = getattr(self.backend, "metrics_registries", None)
        if inner is not None:
            return inner()
        registry = getattr(self.backend, "metrics", None)
        return [registry] if registry is not None else []
