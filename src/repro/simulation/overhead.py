"""The Pusher interference model (Table 1, Figures 4 and 5).

The paper measures *overhead* as ``O = (Tp - Tr) / Tr`` — the runtime
inflation of a reference application when a Pusher runs alongside it
(section 6.1), reporting medians of 10 repetitions.  This module
models the three contributors the paper's experiments isolate and
reproduces the measurement protocol:

1. **Communication cost** (the Pusher "core", tester-plugin configs):
   CPU and network time spent packaging and sending readings; linear
   in the reading rate with an architecture-specific coefficient
   (Figure 5's gradients).

2. **Acquisition cost** (production configs): syscalls and file parses
   of the real plugins, again per reading (the difference between
   Figure 4's *total* and *core* bars, and why Table 1's production
   overheads exceed the tester-only heatmap values).

3. **Network interference** on communication-sensitive MPI
   applications: Pusher traffic shares the interconnect with MPI, and
   applications with fine-grained synchronization amplify every delay.
   The paper's AMG result — overhead growing linearly with node count
   to ~9 % at 1024 nodes, already present with the tester plugin —
   fixes the model: interference ∝ nodes × app sensitivity, and burst
   sending halves it for sensitive apps by concentrating traffic.

The measurement protocol wraps the deterministic model with run-to-run
performance fluctuation and the median-of-10 estimator, which is what
produces the paper's scattered zeros (a median with the Pusher can
come out *below* the reference median; the paper clamps to 0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import RngFactory
from repro.simulation.architectures import ArchitectureProfile
from repro.simulation.workloads import ApplicationModel


@dataclass(frozen=True, slots=True)
class PusherSetup:
    """One monitored configuration of the overhead experiments."""

    sensors: int
    interval_ms: int
    #: "production" includes plugin acquisition cost; "tester" is the
    #: communication-only core configuration.
    mode: str = "tester"
    #: "continuous" or "burst" sending (section 6.2.1's AMG finding).
    send_mode: str = "continuous"

    @property
    def rate(self) -> float:
        """Sensor readings per second."""
        return self.sensors * 1000.0 / self.interval_ms


class OverheadModel:
    """Deterministic expected overhead, percent."""

    #: Network-interference slope: percent overhead per node for a
    #: fully-sensitive application (sensitivity 1.0).  Fixed by AMG's
    #: ~9 % at 1024 nodes under continuous sending.
    NET_INTERFERENCE_PER_NODE = 9.0 / 1024.0

    #: Burst sending concentrates Pusher traffic into short windows,
    #: reducing the collision cross-section with fine-grained MPI
    #: traffic (paper: AMG performed best with bursts twice a minute).
    BURST_RELIEF = 0.5

    def __init__(self, arch: ArchitectureProfile) -> None:
        self.arch = arch

    def compute_overhead_pct(self, setup: PusherSetup) -> float:
        """Compute-side overhead against a single-node application.

        This is the Figure 5 / Table 1 quantity: no MPI network term,
        because HPL (shared-memory, single node) only feels the CPU
        the Pusher steals.
        """
        coeff = self.arch.comm_overhead_coeff
        if setup.mode == "production":
            coeff += self.arch.acq_overhead_coeff
        return coeff * setup.rate

    def mpi_overhead_pct(
        self, setup: PusherSetup, app: ApplicationModel, nodes: int
    ) -> float:
        """Overhead against an MPI application on ``nodes`` nodes.

        The Figure 4 quantity: per-node compute overhead plus the
        network-interference term scaled by the application's
        communication sensitivity.
        """
        compute = self.compute_overhead_pct(setup)
        interference = self.NET_INTERFERENCE_PER_NODE * nodes * app.comm_sensitivity
        if setup.send_mode == "burst":
            interference *= self.BURST_RELIEF
        return compute * app.compute_fraction + interference


class MeasurementProtocol:
    """The paper's estimator: median of repeated noisy runs, clamped.

    ``noise_pct`` is the run-to-run runtime fluctuation (std-dev,
    percent of runtime) of the underlying system; HPC nodes show a few
    tenths of a percent, which is exactly why Figure 5 contains zeros
    at low sensor rates.
    """

    def __init__(
        self,
        repetitions: int = 10,
        noise_pct: float = 0.35,
        seed: int = 2019,
    ) -> None:
        self.repetitions = repetitions
        self.noise_pct = noise_pct
        self.rngs = RngFactory(seed)

    def measure(self, true_overhead_pct: float, label: str) -> float:
        """Simulate the measured (median, clamped) overhead.

        ``label`` keys the random substream so every experiment cell
        is independent yet reproducible.
        """
        rng = self.rngs.stream(label)
        reference = 100.0 + rng.normal(0.0, self.noise_pct, size=self.repetitions)
        with_pusher = (
            100.0 * (1.0 + true_overhead_pct / 100.0)
            + rng.normal(0.0, self.noise_pct, size=self.repetitions)
        )
        t_ref = float(np.median(reference))
        t_pusher = float(np.median(with_pusher))
        return max(0.0, (t_pusher - t_ref) / t_ref * 100.0)
