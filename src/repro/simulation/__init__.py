"""Evaluation substrate: simulated systems, workloads and cost models.

The paper's evaluation (section 6) ran on three production LRZ systems
against CORAL-2 and HPL benchmarks.  None of that hardware exists
here, so this package provides the calibrated substitute described in
DESIGN.md section 2:

* :mod:`repro.simulation.architectures` — Table 1's node profiles
  (SuperMUC-NG/Skylake, CooLMUC-2/Haswell, CooLMUC-3/Knights Landing)
  with the performance factors the cost models depend on.
* :mod:`repro.simulation.overhead` — the Pusher interference model
  behind Table 1, Figure 4 and Figure 5: per-reading acquisition cost,
  communication cost, network interference on MPI applications, and
  the median-of-10-runs measurement protocol.
* :mod:`repro.simulation.resources` — CPU-load and memory-footprint
  models behind Figures 6 and 7 (with Eq. 1's interpolation).
* :mod:`repro.simulation.agentload` — the Collect Agent load model
  behind Figure 8.
* :mod:`repro.simulation.workloads` — phase models of HPL and the four
  CORAL-2 applications (LAMMPS, AMG, Kripke, Quicksilver), providing
  the instruction/power traces behind Figure 10.
* :mod:`repro.simulation.facility` — the CooLMUC-3 warm-water cooling
  circuit behind case study 1 (Figure 9).
* :mod:`repro.simulation.simcluster` — helper wiring N simulated
  Pushers to a Collect Agent in-process for scalability runs.

Calibration anchors come from the paper's reported numbers; the
regenerating benchmarks assert the *shapes* (linearity, ordering,
saturation points), not the absolute values — see EXPERIMENTS.md.
"""

from repro.simulation.architectures import (
    ArchitectureProfile,
    SKYLAKE,
    HASWELL,
    KNL,
    ARCHITECTURES,
)
from repro.simulation.overhead import OverheadModel, MeasurementProtocol
from repro.simulation.resources import ResourceModel, eq1_interpolate
from repro.simulation.agentload import AgentLoadModel
from repro.simulation.workloads import (
    ApplicationModel,
    HPL,
    LAMMPS,
    AMG,
    KRIPKE,
    QUICKSILVER,
    CORAL2_APPS,
)
from repro.simulation.facility import CoolingCircuitModel

__all__ = [
    "ArchitectureProfile",
    "SKYLAKE",
    "HASWELL",
    "KNL",
    "ARCHITECTURES",
    "OverheadModel",
    "MeasurementProtocol",
    "ResourceModel",
    "eq1_interpolate",
    "AgentLoadModel",
    "ApplicationModel",
    "HPL",
    "LAMMPS",
    "AMG",
    "KRIPKE",
    "QUICKSILVER",
    "CORAL2_APPS",
    "CoolingCircuitModel",
]
