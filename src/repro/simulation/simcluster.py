"""Helper wiring a simulated monitoring deployment in one process.

Builds the paper's Figure 8 topology — N tester Pushers feeding one
Collect Agent backed by a storage cluster — entirely in-process over
the :class:`~repro.mqtt.inproc.InProcHub` transport, with a shared
:class:`~repro.common.timeutil.SimClock`.  Used by integration tests
and by the throughput microbenchmarks that quantify this Python
reproduction itself.

Fault injection: give the config a
:class:`~repro.faults.FaultPlan` (or a nonzero ``node_fault_rate``)
and every storage node is wrapped in a
:class:`~repro.faults.FlakyNode`; scheduled kill/restart events fire
on the simulated clock as :meth:`SimulatedCluster.run` advances it,
and the cluster's retry backoff becomes a no-op sleep so chaos runs
are instant and fully deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent, RollupConfig, WriterConfig
from repro.core.pusher import Pusher, PusherConfig
from repro.faults import FaultPlan, FlakyNode
from repro.faults.plan import KILL, RESTART
from repro.mqtt.transport import get_transport
from repro.observability import SpanRecorder
from repro.storage import FailureDetector, MemoryBackend, StorageCluster, StorageNode
from repro.storage.backend import StorageBackend


@dataclass
class SimClusterConfig:
    """Topology of a simulated deployment."""

    hosts: int = 4
    sensors_per_host: int = 100
    interval_ms: int = 1000
    storage_nodes: int = 1
    replication: int = 1
    topic_prefix: str = "/sim/cluster"
    use_memory_backend: bool = field(default=False)
    #: When set, the agent ingests through an asynchronous
    #: :class:`~repro.core.collectagent.writer.BatchingWriter` instead
    #: of writing synchronously per MQTT message.
    writer_config: WriterConfig | None = None
    #: When set, the agent maintains continuous-aggregation rollup
    #: tiers (stored as ordinary series, so replication and hinted
    #: handoff cover them like any reading).
    rollup_config: RollupConfig | None = None
    #: Seeded fault schedule; enables FlakyNode wrapping and lets
    #: run() fire scheduled kill/restart events on the sim clock.
    fault_plan: FaultPlan | None = None
    #: Probabilistic per-operation node failure rate (needs fault_plan
    #: for determinism; a fresh seed-0 plan is created if omitted).
    node_fault_rate: float = 0.0
    #: Transport between Pushers and the agent: "inproc" (default —
    #: function calls, zero sockets) or "tcp" (real event-loop broker
    #: and clients on loopback, for end-to-end transport studies).
    transport: str = "inproc"
    #: Pipeline-trace sampling stride (1 = trace every reading,
    #: N = one in N, 0 = tracing off).  Applied to every component so
    #: a traced reading carries its id end to end.
    trace_sample_every: int = 1
    #: When set, storage nodes are durable
    #: (:class:`~repro.storage.durable.DurableNode`): each gets
    #: ``<data_dir>/node<i>`` for its WAL and segment files, and a
    #: fresh simulation over the same directory recovers prior state.
    #: Ignored with ``use_memory_backend``.
    data_dir: str | None = None
    #: WAL fsync policy for durable nodes (always | interval | off).
    fsync: str = "interval"


class SimulatedCluster:
    """N Pushers -> one Collect Agent -> storage, stepped in sim time."""

    def __init__(self, config: SimClusterConfig | None = None) -> None:
        self.config = config if config is not None else SimClusterConfig()
        self.clock = SimClock(0)
        #: One recorder shared by every component of this simulation,
        #: so a trace's spans land in a single place and concurrent
        #: simulations in one test process stay isolated.
        self.spans = SpanRecorder()
        self.transport = get_transport(self.config.transport)
        broker = self.transport.make_broker(
            publish_only=True,
            port=0,
            trace_sample_every=self.config.trace_sample_every,
            spans=self.spans,
        )
        broker.start()
        #: The agent-side endpoint; named ``hub`` for backward
        #: compatibility (it is an InProcHub on the default transport).
        self.hub = broker
        self.fault_plan = self.config.fault_plan
        if self.fault_plan is None and self.config.node_fault_rate > 0.0:
            self.fault_plan = FaultPlan()
        faulty = self.fault_plan is not None
        #: FlakyNode proxies by index when fault injection is on.
        self.flaky_nodes: list[FlakyNode] = []
        self.backend: StorageBackend
        if self.config.use_memory_backend:
            self.backend = MemoryBackend(clock=self.clock)
        else:
            if self.config.data_dir is not None:
                from pathlib import Path

                from repro.storage.durable import DurableNode

                root = Path(self.config.data_dir)
                nodes = [
                    DurableNode(
                        f"node{i}",
                        data_dir=root / f"node{i}",
                        fsync=self.config.fsync,
                        clock=self.clock,
                    )
                    for i in range(max(1, self.config.storage_nodes))
                ]
            else:
                nodes = [
                    StorageNode(f"node{i}", clock=self.clock)
                    for i in range(max(1, self.config.storage_nodes))
                ]
            if faulty:
                self.flaky_nodes = [
                    FlakyNode(
                        node,
                        plan=self.fault_plan,
                        fault_rate=self.config.node_fault_rate,
                    )
                    for node in nodes
                ]
                nodes = self.flaky_nodes
            self.backend = StorageCluster(
                # A copy: add_storage_node appends to flaky_nodes AND
                # to the cluster (via add_node) — sharing one list
                # object would register the new member twice.
                list(nodes),
                replication=self.config.replication if len(nodes) > 1 else 1,
                # Simulated chaos must not wall-clock-sleep between
                # write retries; determinism comes from the plan.
                sleep=(lambda _s: None) if faulty else None,
                spans=self.spans,
                # Heartbeats run on the sim clock, driven from the
                # stepping loop (no background thread) so failure
                # detection is deterministic per seed.
                failure_detector=FailureDetector(clock=self.clock),
            )
        self.agent = CollectAgent(
            self.backend,
            broker=self.hub,
            writer_config=self.config.writer_config,
            rollup_config=self.config.rollup_config,
            trace_sample_every=self.config.trace_sample_every,
            spans=self.spans,
        )
        self.pushers: list[Pusher] = []
        for host in range(self.config.hosts):
            pusher = Pusher(
                PusherConfig(
                    mqtt_prefix=f"{self.config.topic_prefix}/host{host}",
                    trace_sample_every=self.config.trace_sample_every,
                ),
                client=self.transport.make_client(f"pusher-host{host}"),
                clock=self.clock,
                spans=self.spans,
            )
            pusher.load_plugin(
                "tester",
                f"group g0 {{ interval {self.config.interval_ms}\n"
                f" numSensors {self.config.sensors_per_host} }}",
            )
            pusher.client.connect()
            pusher.start_plugin("tester")
            self.pushers.append(pusher)

    @property
    def total_sensors(self) -> int:
        return self.config.hosts * self.config.sensors_per_host

    def stop(self) -> None:
        """Disconnect the pushers and stop the agent (and its broker).

        Required for the TCP transport (it owns sockets and an event
        loop); a no-op beyond the agent flush on the in-proc default.
        """
        for pusher in self.pushers:
            try:
                pusher.client.disconnect()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        self.agent.stop()

    # -- fault control -------------------------------------------------------

    def _flaky(self, idx: int) -> FlakyNode:
        if not self.flaky_nodes:
            raise RuntimeError(
                "fault injection is off; construct with SimClusterConfig("
                "fault_plan=FaultPlan(seed)) to enable kill/restart"
            )
        return self.flaky_nodes[idx]

    def probe_liveness(self) -> None:
        """One deterministic heartbeat round on the sim clock."""
        detector = getattr(self.backend, "detector", None)
        if detector is not None:
            detector.probe(self.clock())

    def kill_node(self, idx: int) -> None:
        self._flaky(idx).kill()
        # Gossip notices the crash on the next heartbeat; probing here
        # keeps detection latency at zero sim-time steps, determinism
        # intact (the probe consumes no plan randomness).
        self.probe_liveness()

    def restart_node(self, idx: int) -> None:
        self._flaky(idx).restart()
        self.probe_liveness()
        # Repair immediately: replay whatever the replica missed, as a
        # recovered Cassandra node receives its hints on rejoin.
        replay = getattr(self.backend, "replay_hints", None)
        if replay is not None:
            replay(idx)

    def apply_due_faults(self) -> list:
        """Fire scheduled fault events at or before the current sim time.

        Targets are node names (``node0``…); unknown targets/actions
        are ignored so plans can carry events for other components.
        Returns the fired events, in order.
        """
        if self.fault_plan is None:
            return []
        fired = self.fault_plan.due(self.clock())
        by_name = {proxy.name: i for i, proxy in enumerate(self.flaky_nodes)}
        for event in fired:
            idx = by_name.get(event.target)
            if idx is None:
                continue
            if event.action == KILL:
                self.kill_node(idx)
            elif event.action == RESTART:
                self.restart_node(idx)
        return fired

    # -- elastic membership --------------------------------------------------

    def add_storage_node(self, *, wait: bool = True) -> int:
        """Join a new storage node to the running cluster, live.

        The node matches the cluster's flavor (durable when the sim has
        a ``data_dir``, FlakyNode-wrapped when fault injection is on)
        and partition history streams to it per
        :meth:`StorageCluster.add_node`; with ``wait=False`` ingest can
        continue while streaming runs in the background.  Returns the
        new node's index.
        """
        if not isinstance(self.backend, StorageCluster):
            raise RuntimeError("elastic membership needs a StorageCluster backend")
        idx = len(self.backend.nodes)
        if self.config.data_dir is not None:
            from pathlib import Path

            from repro.storage.durable import DurableNode

            node = DurableNode(
                f"node{idx}",
                data_dir=Path(self.config.data_dir) / f"node{idx}",
                fsync=self.config.fsync,
                clock=self.clock,
            )
        else:
            node = StorageNode(f"node{idx}", clock=self.clock)
        if self.fault_plan is not None:
            node = FlakyNode(
                node,
                plan=self.fault_plan,
                fault_rate=self.config.node_fault_rate,
            )
            self.flaky_nodes.append(node)
        result = self.backend.add_node(node, wait=wait)
        self.probe_liveness()
        return result

    def remove_storage_node(self, idx: int, *, wait: bool = True) -> None:
        """Drain a storage node out of the running cluster, live."""
        if not isinstance(self.backend, StorageCluster):
            raise RuntimeError("elastic membership needs a StorageCluster backend")
        self.backend.remove_node(idx, wait=wait)
        self.probe_liveness()

    # -- stepping ------------------------------------------------------------

    def run(self, seconds: float) -> int:
        """Advance simulated time; returns readings stored in the step.

        With batching enabled the staging queue is drained before
        returning, so backend queries after ``run()`` observe every
        reading published during the step.  Scheduled faults fire both
        at the start and at the end of the step; for mid-step precision
        call ``run()`` with finer steps — the fault schedule itself is
        on the clock, so the same stepping always reproduces the same
        interleaving.
        """
        before = self.agent.readings_stored
        self.apply_due_faults()
        self.probe_liveness()
        target = self.clock() + int(seconds * NS_PER_SEC)
        for pusher in self.pushers:
            pusher.advance_to(target)
        self.clock.set(target)
        self.apply_due_faults()
        self.probe_liveness()
        self.drain()
        return self.agent.readings_stored - before

    def drain(self, timeout: float = 10.0) -> bool:
        """Force-flush the agent's staging queue (no-op when synchronous)."""
        if self.agent.writer is None:
            return True
        return self.agent.writer.drain(timeout)

    def expected_readings(self, seconds: float) -> int:
        cycles = int(seconds * 1000 / self.config.interval_ms)
        return cycles * self.total_sensors
