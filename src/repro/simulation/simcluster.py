"""Helper wiring a simulated monitoring deployment in one process.

Builds the paper's Figure 8 topology — N tester Pushers feeding one
Collect Agent backed by a storage cluster — entirely in-process over
the :class:`~repro.mqtt.inproc.InProcHub` transport, with a shared
:class:`~repro.common.timeutil.SimClock`.  Used by integration tests
and by the throughput microbenchmarks that quantify this Python
reproduction itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.timeutil import NS_PER_SEC, SimClock
from repro.core.collectagent import CollectAgent, WriterConfig
from repro.core.pusher import Pusher, PusherConfig
from repro.mqtt.inproc import InProcClient, InProcHub
from repro.storage import MemoryBackend, StorageCluster, StorageNode
from repro.storage.backend import StorageBackend


@dataclass
class SimClusterConfig:
    """Topology of a simulated deployment."""

    hosts: int = 4
    sensors_per_host: int = 100
    interval_ms: int = 1000
    storage_nodes: int = 1
    replication: int = 1
    topic_prefix: str = "/sim/cluster"
    use_memory_backend: bool = field(default=False)
    #: When set, the agent ingests through an asynchronous
    #: :class:`~repro.core.collectagent.writer.BatchingWriter` instead
    #: of writing synchronously per MQTT message.
    writer_config: WriterConfig | None = None


class SimulatedCluster:
    """N Pushers -> one Collect Agent -> storage, stepped in sim time."""

    def __init__(self, config: SimClusterConfig | None = None) -> None:
        self.config = config if config is not None else SimClusterConfig()
        self.clock = SimClock(0)
        self.hub = InProcHub(allow_subscribe=False)
        self.backend: StorageBackend
        if self.config.use_memory_backend or self.config.storage_nodes <= 1:
            self.backend = (
                MemoryBackend(clock=self.clock)
                if self.config.use_memory_backend
                else StorageCluster(
                    [StorageNode("node0", clock=self.clock)], replication=1
                )
            )
        else:
            nodes = [
                StorageNode(f"node{i}", clock=self.clock)
                for i in range(self.config.storage_nodes)
            ]
            self.backend = StorageCluster(nodes, replication=self.config.replication)
        self.agent = CollectAgent(
            self.backend, broker=self.hub, writer_config=self.config.writer_config
        )
        self.pushers: list[Pusher] = []
        for host in range(self.config.hosts):
            pusher = Pusher(
                PusherConfig(
                    mqtt_prefix=f"{self.config.topic_prefix}/host{host}",
                ),
                client=InProcClient(f"pusher-host{host}", self.hub),
                clock=self.clock,
            )
            pusher.load_plugin(
                "tester",
                f"group g0 {{ interval {self.config.interval_ms}\n"
                f" numSensors {self.config.sensors_per_host} }}",
            )
            pusher.client.connect()
            pusher.start_plugin("tester")
            self.pushers.append(pusher)

    @property
    def total_sensors(self) -> int:
        return self.config.hosts * self.config.sensors_per_host

    def run(self, seconds: float) -> int:
        """Advance simulated time; returns readings stored in the step.

        With batching enabled the staging queue is drained before
        returning, so backend queries after ``run()`` observe every
        reading published during the step.
        """
        before = self.agent.readings_stored
        target = self.clock() + int(seconds * NS_PER_SEC)
        for pusher in self.pushers:
            pusher.advance_to(target)
        self.clock.set(target)
        self.drain()
        return self.agent.readings_stored - before

    def drain(self, timeout: float = 10.0) -> bool:
        """Force-flush the agent's staging queue (no-op when synchronous)."""
        if self.agent.writer is None:
            return True
        return self.agent.writer.drain(timeout)

    def expected_readings(self, seconds: float) -> int:
        cycles = int(seconds * 1000 / self.config.interval_ms)
        return cycles * self.total_sensors
