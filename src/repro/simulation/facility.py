"""The warm-water cooling circuit of CooLMUC-3 (case study 1).

Paper section 7.1: CooLMUC-3 is 100 % direct warm-water cooled with
thermally insulated racks; DCDB monitors the circuit's power sensors
and flow meters out-of-band and computes, via virtual sensors, the
ratio of heat removed by the water to electrical power consumed —
measured at ≈ 90 % and *independent of inlet water temperature*
(Figure 9 sweeps the inlet temperature upward over ~24 h while power
fluctuates with the job mix between ~10 and ~35 kW).

The model provides physically-consistent channels:

* per-rack electrical power (3 racks, job-mix driven);
* circuit volumetric flow (pump-controlled, mildly variable);
* inlet water temperature (the experiment's upward sweep);
* outlet water temperature *derived from heat balance*:
  ``T_out = T_in + H / (rho · cp · V̇)``, so a consumer computing heat
  as ``flow × rho × cp × ΔT`` (what the paper's virtual sensors do)
  recovers the modelled heat-removal ratio.

Channels install into a :class:`~repro.devices.model.DeviceModel` with
the integer scalings a real instrument would use (centidegrees,
watts, litres/hour), so the SNMP/REST plugin pipeline carries them
exactly as in the paper's out-of-band deployment.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.rng import RngFactory
from repro.common.timeutil import NS_PER_SEC
from repro.devices.model import DeviceModel

#: Water properties at warm-water cooling temperatures (~45 C).
WATER_DENSITY = 990.0  # kg/m3
WATER_CP = 4180.0  # J/(kg K)


class CoolingCircuitModel:
    """Deterministic 24-hour model of the cooling circuit."""

    RACKS = 3

    def __init__(
        self,
        efficiency: float = 0.90,
        duration_h: float = 25.0,
        inlet_start_c: float = 30.0,
        inlet_end_c: float = 62.0,
        seed: int = 7,
    ) -> None:
        self.efficiency = efficiency
        self.duration_h = duration_h
        self.inlet_start_c = inlet_start_c
        self.inlet_end_c = inlet_end_c
        rngs = RngFactory(seed)
        # Pre-draw a smooth job-mix curve: hourly power levels per rack
        # interpolated in between (the paper's power trace wanders
        # between ~10 and ~35 kW total).
        rng = rngs.stream("jobmix")
        hours = int(math.ceil(duration_h)) + 2
        self._rack_levels = rng.uniform(3_500.0, 11_000.0, size=(self.RACKS, hours))
        self._noise_rng_seed = seed

    # -- physical quantities -------------------------------------------------

    def rack_power_w(self, rack: int, t_ns: int) -> float:
        """Electrical power of one rack, W (job-mix driven)."""
        hours = t_ns / NS_PER_SEC / 3600.0
        idx = int(hours)
        frac = hours - idx
        levels = self._rack_levels[rack]
        idx = min(idx, len(levels) - 2)
        return float(levels[idx] * (1.0 - frac) + levels[idx + 1] * frac)

    def total_power_w(self, t_ns: int) -> float:
        return sum(self.rack_power_w(r, t_ns) for r in range(self.RACKS))

    def inlet_temp_c(self, t_ns: int) -> float:
        """The experiment's inlet-temperature sweep."""
        frac = min(1.0, (t_ns / NS_PER_SEC / 3600.0) / self.duration_h)
        return self.inlet_start_c + frac * (self.inlet_end_c - self.inlet_start_c)

    def flow_m3h(self, t_ns: int) -> float:
        """Pump-controlled circuit flow with mild modulation."""
        hours = t_ns / NS_PER_SEC / 3600.0
        return 3.0 + 0.2 * math.sin(2.0 * math.pi * hours / 6.0)

    def heat_removed_w(self, t_ns: int) -> float:
        """Heat carried away by the water.

        The efficiency is constant by design (the insulated racks lose
        almost nothing to air), with small measurement-scale ripple —
        this is the flat-ratio claim the virtual-sensor analysis must
        recover, *independent of the inlet sweep*.
        """
        ripple = 0.012 * math.sin(2.0 * math.pi * (t_ns / NS_PER_SEC) / 3000.0)
        return (self.efficiency + ripple) * self.total_power_w(t_ns)

    def outlet_temp_c(self, t_ns: int) -> float:
        """Heat-balance-consistent return temperature."""
        flow_m3s = self.flow_m3h(t_ns) / 3600.0
        mass_flow = flow_m3s * WATER_DENSITY  # kg/s
        delta_t = self.heat_removed_w(t_ns) / (mass_flow * WATER_CP)
        return self.inlet_temp_c(t_ns) + delta_t

    # -- instrument integration -----------------------------------------------

    def install(self, model: DeviceModel) -> None:
        """Register instrument channels with device-style scalings.

        Channels (all integers, as real instruments report):

        * ``rack<k>_power`` — W
        * ``flow`` — litres/hour
        * ``inlet_temp`` / ``outlet_temp`` — centidegrees C
        """
        for rack in range(self.RACKS):
            model.add_channel(
                f"rack{rack}_power",
                lambda t, r=rack: int(round(self.rack_power_w(r, t))),
            )
        model.add_channel("flow", lambda t: int(round(self.flow_m3h(t) * 1000.0)))
        model.add_channel("inlet_temp", lambda t: int(round(self.inlet_temp_c(t) * 100.0)))
        model.add_channel("outlet_temp", lambda t: int(round(self.outlet_temp_c(t) * 100.0)))

    # -- direct trace (for quick analyses) ----------------------------------------

    def trace(self, interval_s: float = 60.0) -> dict[str, np.ndarray]:
        """Arrays over the full experiment at ``interval_s`` sampling."""
        n = int(self.duration_h * 3600.0 / interval_s)
        t_ns = (np.arange(1, n + 1) * interval_s * NS_PER_SEC).astype(np.int64)
        return {
            "t_ns": t_ns,
            "power_w": np.asarray([self.total_power_w(int(t)) for t in t_ns]),
            "heat_w": np.asarray([self.heat_removed_w(int(t)) for t in t_ns]),
            "inlet_c": np.asarray([self.inlet_temp_c(int(t)) for t in t_ns]),
            "outlet_c": np.asarray([self.outlet_temp_c(int(t)) for t in t_ns]),
            "flow_m3h": np.asarray([self.flow_m3h(int(t)) for t in t_ns]),
        }
