"""Application workload models: HPL and the CORAL-2 suite.

Paper section 6.1 uses four CORAL-2 MPI benchmarks "cover[ing] a large
portion of the behavior spectrum of HPC applications" plus
shared-memory HPL as the compute-bound worst case.  Two properties of
these applications drive the evaluation:

* **Communication sensitivity** (Figure 4): AMG "is notorious for
  using many small MPI messages and fine-granular synchronization"
  and is "extremely sensitive to network interference"; LAMMPS,
  Quicksilver and Kripke are affected "to a very limited extent".

* **Instructions-per-Watt distributions** (Figure 10, case study 2):
  "Kripke and Quicksilver exhibit very high mean values, translating
  to a high computational density, while applications such as LAMMPS
  or AMG show lower values.  Moreover, the distributions of the two
  latter applications show multiple trends, indicating a dynamic
  behavior that changes over time."

Each :class:`ApplicationModel` encodes those properties: a
communication sensitivity for the interference model, and a set of
execution *phases*, each with its own per-core instruction rate and
node power draw, from which deterministic per-interval traces are
generated.  Phase parameters are calibrated so the Figure 10
reproduction lands in the paper's 0–4.5·10⁵ instructions/W range with
the reported ordering and modality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import RngFactory
from repro.common.timeutil import NS_PER_SEC


@dataclass(frozen=True, slots=True)
class Phase:
    """One execution phase of an application.

    ``instr_rate`` is retired instructions per second per core;
    ``power_w`` the node power draw in that phase; ``weight`` the
    fraction of runtime spent in it; the ``*_cv`` fields are
    coefficients of variation for within-phase fluctuation.
    """

    name: str
    weight: float
    instr_rate: float
    power_w: float
    instr_cv: float = 0.05
    power_cv: float = 0.03


@dataclass(frozen=True, slots=True)
class ApplicationModel:
    """A benchmark application as the monitoring substrate sees it."""

    name: str
    phases: tuple[Phase, ...]
    #: 0..1: how strongly network interference inflates runtime
    #: (Figure 4's discriminator; AMG = 1).
    comm_sensitivity: float
    #: Fraction of the Pusher's compute overhead the app actually
    #: feels (MPI codes overlap some of it with communication).
    compute_fraction: float = 1.0
    #: Typical phase dwell time before switching, seconds.
    phase_dwell_s: float = 20.0

    def phase_sequence(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        """Per-second phase index over a run, honouring phase weights.

        Phases alternate in dwell-time blocks; block order is drawn by
        weight so long traces converge to the weight distribution
        while still showing the temporal structure (the "multiple
        trends ... over time") that makes LAMMPS/AMG multimodal.
        """
        seconds = int(np.ceil(duration_s))
        weights = np.asarray([p.weight for p in self.phases])
        weights = weights / weights.sum()
        out = np.empty(seconds, dtype=np.int64)
        t = 0
        while t < seconds:
            phase_idx = int(rng.choice(len(self.phases), p=weights))
            dwell = max(1, int(rng.normal(self.phase_dwell_s, self.phase_dwell_s / 4)))
            out[t : t + dwell] = phase_idx
            t += dwell
        return out

    def trace(
        self,
        duration_s: float,
        interval_ms: int,
        seed: int = 0,
        cores: int = 64,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate a monitoring trace of this application.

        Returns ``(timestamps_ns, instr_per_core_per_s, node_power_w)``
        sampled every ``interval_ms``, e.g. the 100 ms sampling of case
        study 2.  Deterministic per (app, seed).
        """
        rngs = RngFactory(seed)
        rng = rngs.stream(f"trace/{self.name}")
        phase_by_second = self.phase_sequence(duration_s, rng)
        samples = int(duration_s * 1000 / interval_ms)
        timestamps = (np.arange(1, samples + 1) * interval_ms * 1_000_000).astype(np.int64)
        seconds_idx = np.minimum(
            (timestamps // NS_PER_SEC).astype(np.int64), len(phase_by_second) - 1
        )
        phase_idx = phase_by_second[seconds_idx]
        instr_rates = np.asarray([p.instr_rate for p in self.phases])[phase_idx]
        powers = np.asarray([p.power_w for p in self.phases])[phase_idx]
        instr_cv = np.asarray([p.instr_cv for p in self.phases])[phase_idx]
        power_cv = np.asarray([p.power_cv for p in self.phases])[phase_idx]
        instr = instr_rates * (1.0 + rng.normal(0.0, 1.0, samples) * instr_cv)
        power = powers * (1.0 + rng.normal(0.0, 1.0, samples) * power_cv)
        return timestamps, np.maximum(instr, 0.0), np.maximum(power, 1.0)

    def ipw_series(
        self, duration_s: float = 600.0, interval_ms: int = 100, seed: int = 0
    ) -> np.ndarray:
        """Instructions-per-Watt samples (the Figure 10 quantity)."""
        _ts, instr, power = self.trace(duration_s, interval_ms, seed)
        return instr / power

    def perf_rate_fn(self, seed: int = 0):
        """A perfevents rate function bound to this application.

        Returns ``f(cpu, event, t_ns) -> rate`` usable as the
        ``rate_fn`` of
        :class:`repro.plugins.perfevents.SyntheticPerfSource`, so the
        real plugin pipeline samples this application's behaviour.
        """
        rngs = RngFactory(seed)
        rng = rngs.stream(f"perf/{self.name}")
        phase_by_second = self.phase_sequence(3600.0, rng)

        def rate(cpu: int, event: str, t_ns: int) -> float:
            second = min(int(t_ns // NS_PER_SEC), len(phase_by_second) - 1)
            phase = self.phases[phase_by_second[second]]
            if event == "instructions":
                return phase.instr_rate
            if event == "cycles":
                return phase.instr_rate * 1.1
            # Other events scale off the instruction stream.
            return phase.instr_rate * 2e-3

        return rate


# Knights Landing (CooLMUC-3) calibration for case study 2: 64 cores,
# node power 200-300 W.  Instructions-per-Watt = per-core rate / node
# power; targets from Figure 10's axis (0 .. 4.5e5, Kripke/Quicksilver
# high, LAMMPS/AMG low and multimodal).

KRIPKE = ApplicationModel(
    name="kripke",
    comm_sensitivity=0.06,
    compute_fraction=0.9,
    phases=(
        # Sweep-dominated transport: steady, compute-dense.
        Phase("sweep", 1.0, instr_rate=9.0e7, power_w=260.0, instr_cv=0.06),
    ),
)

QUICKSILVER = ApplicationModel(
    name="quicksilver",
    comm_sensitivity=0.08,
    compute_fraction=0.9,
    phases=(
        # Monte-Carlo tracking: one dominant mode, mildly wider.
        Phase("tracking", 1.0, instr_rate=7.0e7, power_w=255.0, instr_cv=0.10),
    ),
)

LAMMPS = ApplicationModel(
    name="lammps",
    comm_sensitivity=0.05,
    compute_fraction=0.9,
    phase_dwell_s=15.0,
    phases=(
        # Force computation vs neighbour-list rebuild: two trends.
        Phase("force", 0.65, instr_rate=3.6e7, power_w=245.0, instr_cv=0.08),
        Phase("neighbor", 0.35, instr_rate=2.0e7, power_w=230.0, instr_cv=0.10),
    ),
)

AMG = ApplicationModel(
    name="amg",
    comm_sensitivity=1.0,
    compute_fraction=0.8,
    phase_dwell_s=12.0,
    phases=(
        # Multigrid cycling: smoother / coarse-grid / communication-
        # bound phases with distinct intensity -> multimodal IPW.
        Phase("smooth", 0.45, instr_rate=2.6e7, power_w=240.0, instr_cv=0.09),
        Phase("coarse", 0.30, instr_rate=1.5e7, power_w=225.0, instr_cv=0.12),
        Phase("comm", 0.25, instr_rate=0.7e7, power_w=210.0, instr_cv=0.15),
    ),
)

HPL = ApplicationModel(
    name="hpl",
    comm_sensitivity=0.0,  # shared-memory, single node
    compute_fraction=1.0,
    phases=(
        Phase("dgemm", 1.0, instr_rate=1.1e8, power_w=280.0, instr_cv=0.03),
    ),
)

CORAL2_APPS: dict[str, ApplicationModel] = {
    "kripke": KRIPKE,
    "quicksilver": QUICKSILVER,
    "lammps": LAMMPS,
    "amg": AMG,
}
