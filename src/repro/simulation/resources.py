"""Pusher resource-footprint models (Figures 6 and 7, Equation 1).

Figure 6 reports the Pusher's average per-core CPU load and memory
usage across the 25 tester configurations on Skylake; Figure 7 shows
the CPU load is linear in the *sensor rate* (readings per second) on
all three architectures, which is what justifies the paper's
Equation 1: administrators can predict the load of any configuration
by linear interpolation between two measured rates.

Model structure:

* **CPU load** (percent of one core) = ``cpu_load_coeff × rate``, with
  the architecture coefficients calibrated in
  :mod:`repro.simulation.architectures`.

* **Memory** = base footprint + sensor-cache contents.  The cache
  holds ``cache_window / interval`` readings per sensor (paper:
  two-minute window), so
  ``MB = base + sensors × (cache_ms / interval_ms) × bytes_per_reading``.
  ``BYTES_PER_READING`` = 28 reproduces the paper's anchors: ~350 MB
  at 10 000 sensors/100 ms and "well below 50 MB" for ≤1 000-sensor
  production configurations.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngFactory
from repro.simulation.architectures import ArchitectureProfile

#: Measured in-memory footprint of one cached reading (timestamp,
#: value, container overhead) in DCDB's C++ sensor cache.
BYTES_PER_READING = 28.0

#: The evaluation's cache window (section 6.1: "two minutes").
CACHE_WINDOW_MS = 120_000.0


class ResourceModel:
    """CPU-load and memory models for one architecture."""

    def __init__(self, arch: ArchitectureProfile, seed: int = 2019) -> None:
        self.arch = arch
        self._rngs = RngFactory(seed)

    # -- CPU load (Figures 6a and 7) ------------------------------------

    def cpu_load_pct(self, sensors: int, interval_ms: int) -> float:
        """Expected average per-core CPU load, percent."""
        rate = sensors * 1000.0 / interval_ms
        return self.arch.cpu_load_coeff * rate

    def cpu_load_measured(self, sensors: int, interval_ms: int) -> float:
        """CPU load with ``ps``-style sampling noise (for the plots)."""
        expected = self.cpu_load_pct(sensors, interval_ms)
        rng = self._rngs.stream(f"cpu/{self.arch.name}/{sensors}/{interval_ms}")
        return max(0.0, expected * (1.0 + rng.normal(0.0, 0.05)) + rng.normal(0.0, 0.01))

    # -- memory (Figure 6b) ------------------------------------------------

    def memory_mb(self, sensors: int, interval_ms: int, cache_ms: float = CACHE_WINDOW_MS) -> float:
        """Expected resident memory, MB."""
        cached_readings = sensors * (cache_ms / interval_ms)
        return self.arch.base_memory_mb + cached_readings * BYTES_PER_READING / 1e6

    def memory_measured(self, sensors: int, interval_ms: int) -> float:
        expected = self.memory_mb(sensors, interval_ms)
        rng = self._rngs.stream(f"mem/{self.arch.name}/{sensors}/{interval_ms}")
        return max(0.0, expected * (1.0 + rng.normal(0.0, 0.02)))


def eq1_interpolate(
    rate_a: float, load_a: float, rate_b: float, load_b: float, target_rate: float
) -> float:
    """Equation 1 of the paper: linear interpolation of CPU load.

    ``Lp(s) = Lp(a) + (s - a) * (Lp(b) - Lp(a)) / (b - a)`` — predicts
    the Pusher's load at sensor rate ``s`` from two measured anchor
    rates.  Valid exactly because the scaling is linear (Figure 7).
    """
    if rate_a == rate_b:
        raise ValueError("anchor rates must differ")
    return load_a + (target_rate - rate_a) * (load_b - load_a) / (rate_b - rate_a)


def fit_load_curve(rates: np.ndarray, loads: np.ndarray) -> tuple[float, float, float]:
    """Least-squares linear fit of load vs rate: (slope, intercept, r2).

    The Figure 7 regression; the benchmark asserts r² close to 1,
    which is the paper's evidence that Equation 1 is safe to use.
    """
    rates = np.asarray(rates, dtype=np.float64)
    loads = np.asarray(loads, dtype=np.float64)
    slope, intercept = np.polyfit(rates, loads, 1)
    predicted = slope * rates + intercept
    ss_res = float(((loads - predicted) ** 2).sum())
    ss_tot = float(((loads - loads.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(slope), float(intercept), r2
