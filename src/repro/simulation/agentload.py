"""The Collect Agent load model (Figure 8).

Figure 8 reports the Collect Agent's average per-core CPU load under
1–50 concurrent tester Pushers each sampling 10–10 000 sensors at 1 s.
Two facts calibrate the model:

* "in the configurations that use 1,000 sensors or less, we reach
  saturation of a single CPU core only with 50 concurrent hosts" —
  load ≈ 100 % at 50 000 inserts/s;
* "in the worst-case scenario we observe an average CPU load of 900 %
  ... a Cassandra insert rate of 500,000 sensor readings per second"
  (50 hosts × 10 000 sensors).

A linear per-reading cost plus a small per-connection cost satisfies
both anchors: ``load % ≈ 1.75e-3 × inserts/s + 0.6 × hosts``
(50 k → ~117 % ≈ saturated core; 500 k → ~905 %).
"""

from __future__ import annotations

from repro.common.rng import RngFactory


class AgentLoadModel:
    """CPU load of one Collect Agent under concurrent Pushers."""

    #: Percent CPU per (reading/s): message parse, SID translation,
    #: storage insert.
    PER_READING_COEFF = 1.75e-3
    #: Percent CPU per connected Pusher: socket polling, keepalives.
    PER_HOST_COEFF = 0.6

    def __init__(self, seed: int = 2019) -> None:
        self._rngs = RngFactory(seed)

    def insert_rate(self, hosts: int, sensors: int, interval_ms: int = 1000) -> float:
        """Aggregate readings per second reaching the agent."""
        return hosts * sensors * 1000.0 / interval_ms

    def cpu_load_pct(self, hosts: int, sensors: int, interval_ms: int = 1000) -> float:
        """Expected CPU load (percent of one core; >100 = multi-core)."""
        rate = self.insert_rate(hosts, sensors, interval_ms)
        return self.PER_READING_COEFF * rate + self.PER_HOST_COEFF * hosts

    def cpu_load_measured(self, hosts: int, sensors: int, interval_ms: int = 1000) -> float:
        """Load with sampling noise, for plot reproduction."""
        expected = self.cpu_load_pct(hosts, sensors, interval_ms)
        rng = self._rngs.stream(f"agent/{hosts}/{sensors}/{interval_ms}")
        return max(0.0, expected * (1.0 + rng.normal(0.0, 0.04)))

    def saturated_cores(self, hosts: int, sensors: int, interval_ms: int = 1000) -> float:
        """Fully-loaded core equivalents (the paper's '9 cores')."""
        return self.cpu_load_pct(hosts, sensors, interval_ms) / 100.0
