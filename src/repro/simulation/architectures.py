"""Node architecture profiles (paper Table 1).

Each profile carries the identity data of Table 1 plus the calibrated
cost coefficients the models in this package consume.  Calibration
anchors (all from the paper):

* Figure 5 heatmaps: tester-only overhead at 100 000 readings/s —
  Skylake ≈ 0.65 %, Haswell ≈ 1.8 %, Knights Landing ≈ 3.5 %.
* Table 1 production overheads: 1.77 % (Skylake, 2 477 sensors),
  0.69 % (Haswell, 750), 4.14 % (KNL, 3 176) at 1 s sampling.
* Figure 7 CPU-load slopes: ≈ 3 % (Skylake) to ≈ 8 % (KNL) per-core
  load at 100 000 sensors/s, linear in rate.
* Section 6.2.1 memory/CPU ranges: 25 MB (Haswell) – 72 MB (KNL)
  average memory, 1 % – 9 % average per-core CPU load in production.

The per-reading coefficients below solve those anchor equations; the
derivations are spelled out next to each constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ArchitectureProfile:
    """One node architecture and its calibrated cost coefficients."""

    name: str
    system: str
    nodes: int
    cpu_model: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    memory_gb: int
    interconnect: str
    #: Plugins of the production Pusher configuration (Table 1).
    production_plugins: tuple[str, ...]
    #: Sensors of the production configuration (Table 1).
    production_sensors: int
    #: Paper-reported production overhead vs HPL (Table 1), percent.
    reported_overhead_pct: float
    #: Single-thread performance relative to Skylake (drives ordering).
    single_thread_perf: float
    #: Communication (Pusher core) overhead, percent per reading/s.
    comm_overhead_coeff: float
    #: Acquisition overhead of production plugins, percent per reading/s.
    acq_overhead_coeff: float
    #: Per-core CPU load of the Pusher, percent per reading/s (Fig. 7).
    cpu_load_coeff: float
    #: Resident base memory of an idle Pusher on this node, MB.
    base_memory_mb: float
    #: Derived conveniences.
    extra: dict = field(default_factory=dict)

    @property
    def logical_cpus(self) -> int:
        return self.sockets * self.cores_per_socket * self.threads_per_core

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket


# Skylake / SuperMUC-NG.
# comm coefficient: 0.65 % at 1e5 readings/s -> 6.5e-6 %/(r/s).
# acquisition: 1.77 % = (6.5e-6 + a) * 2477 -> a ~ 7.08e-4.
# cpu-load slope: 3 % at 1e5 r/s -> 3.0e-5 %/(r/s).
SKYLAKE = ArchitectureProfile(
    name="skylake",
    system="SuperMUC-NG",
    nodes=6480,
    cpu_model="Intel Xeon Platinum 8174",
    sockets=2,
    cores_per_socket=24,
    threads_per_core=2,
    memory_gb=96,
    interconnect="Intel OmniPath",
    production_plugins=("perfevents", "procfs", "sysfs", "opa"),
    production_sensors=2477,
    reported_overhead_pct=1.77,
    single_thread_perf=1.00,
    comm_overhead_coeff=6.5e-6,
    acq_overhead_coeff=7.08e-4,
    cpu_load_coeff=3.0e-5,
    base_memory_mb=20.0,
)

# Haswell / CooLMUC-2.
# comm coefficient: 1.8 % at 1e5 r/s -> 1.8e-5.
# acquisition: 0.69 % = (1.8e-5 + a) * 750 -> a ~ 9.02e-4.
# cpu-load slope: between Skylake and KNL -> 5.0e-5.
HASWELL = ArchitectureProfile(
    name="haswell",
    system="CooLMUC-2",
    nodes=384,
    cpu_model="Intel Xeon E5-2697 v3",
    sockets=2,
    cores_per_socket=14,
    threads_per_core=1,
    memory_gb=64,
    interconnect="Mellanox Infiniband",
    production_plugins=("perfevents", "procfs", "sysfs"),
    production_sensors=750,
    reported_overhead_pct=0.69,
    single_thread_perf=0.85,
    comm_overhead_coeff=1.8e-5,
    acq_overhead_coeff=9.02e-4,
    cpu_load_coeff=5.0e-5,
    base_memory_mb=22.0,
)

# Knights Landing / CooLMUC-3.
# comm coefficient: 3.5 % at 1e5 r/s -> 3.5e-5.
# acquisition: 4.14 % = (3.5e-5 + a) * 3176 -> a ~ 1.268e-3.
# cpu-load slope: 8 % at 1e5 r/s -> 8.0e-5.
# base memory: paper reports 72 MB average with 3 176 sensors at 1 s;
# the cache of that configuration holds ~11 MB, so the KNL Pusher
# baseline (many SMT threads, wide vector state) is ~61 MB.
KNL = ArchitectureProfile(
    name="knl",
    system="CooLMUC-3",
    nodes=148,
    cpu_model="Intel Xeon Phi 7210-F",
    sockets=1,
    cores_per_socket=64,
    threads_per_core=4,
    memory_gb=96,
    interconnect="Intel OmniPath",
    production_plugins=("perfevents", "procfs", "sysfs", "opa"),
    production_sensors=3176,
    reported_overhead_pct=4.14,
    single_thread_perf=0.35,
    comm_overhead_coeff=3.5e-5,
    acq_overhead_coeff=1.268e-3,
    cpu_load_coeff=8.0e-5,
    base_memory_mb=61.0,
)

ARCHITECTURES: dict[str, ArchitectureProfile] = {
    "skylake": SKYLAKE,
    "haswell": HASWELL,
    "knl": KNL,
}


def by_name(name: str) -> ArchitectureProfile:
    """Look up a profile by name, with a helpful error."""
    profile = ARCHITECTURES.get(name.lower())
    if profile is None:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        )
    return profile
