"""DCDB reproduction: modular, continuous, holistic HPC monitoring.

A pure-Python reproduction of *"From Facility to Application Sensor
Data: Modular, Continuous and Holistic Monitoring with DCDB"* (Netti
et al., SC 2019), including every substrate the system depends on:
an MQTT 3.1.1 stack, a distributed wide-column store, ten acquisition
plugins with simulated out-of-band devices, the libDCDB query layer
with virtual sensors, command-line tools, a Grafana data source, and
the calibrated simulation substrate regenerating the paper's
evaluation.

Quickstart::

    from repro import (
        CollectAgent, Pusher, PusherConfig, DCDBClient,
        InProcHub, InProcClient, MemoryBackend, SimClock, NS_PER_SEC,
    )

    hub = InProcHub(allow_subscribe=False)
    backend = MemoryBackend()
    agent = CollectAgent(backend, broker=hub)
    pusher = Pusher(PusherConfig(mqtt_prefix="/hpc/rack0/node0"),
                    client=InProcClient("p0", hub), clock=SimClock(0))
    pusher.load_plugin("tester", "group g0 { interval 1000\\n numSensors 8 }")
    pusher.client.connect()
    pusher.start_plugin("tester")
    pusher.advance_to(60 * NS_PER_SEC)

    client = DCDBClient(backend)
    ts, values = client.query("/hpc/rack0/node0/g0/s0", 0, 120 * NS_PER_SEC)

See README.md for the architecture overview and examples/ for
runnable scenarios.
"""

from repro.common.errors import (
    ConfigError,
    DCDBError,
    PluginError,
    QueryError,
    StorageError,
    TransportError,
    UnitError,
)
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC, SimClock, Timestamp
from repro.core.collectagent import CollectAgent
from repro.core.pusher import Pusher, PusherConfig
from repro.core.sensor import SensorCache, SensorMetadata, SensorReading
from repro.core.sid import SensorId, SidMapper
from repro.libdcdb import DCDBClient, SensorConfig, VirtualSensorDef
from repro.mqtt import InProcClient, InProcHub, MQTTBroker, MQTTClient, PublishOnlyBroker
from repro.storage import (
    HashPartitioner,
    HierarchicalPartitioner,
    MemoryBackend,
    SqliteBackend,
    StorageCluster,
    StorageNode,
)

__version__ = "1.0.0"

__all__ = [
    "DCDBError",
    "ConfigError",
    "TransportError",
    "StorageError",
    "QueryError",
    "PluginError",
    "UnitError",
    "NS_PER_SEC",
    "NS_PER_MS",
    "SimClock",
    "Timestamp",
    "SensorReading",
    "SensorMetadata",
    "SensorCache",
    "SensorId",
    "SidMapper",
    "Pusher",
    "PusherConfig",
    "CollectAgent",
    "DCDBClient",
    "SensorConfig",
    "VirtualSensorDef",
    "MQTTBroker",
    "PublishOnlyBroker",
    "MQTTClient",
    "InProcHub",
    "InProcClient",
    "StorageNode",
    "StorageCluster",
    "MemoryBackend",
    "SqliteBackend",
    "HierarchicalPartitioner",
    "HashPartitioner",
    "__version__",
]
