"""The backend-independent storage API.

Paper section 5.1: *"All accesses to Storage Backends are performed
via a well-defined API that is independent from the underlying
database implementation ... this abstraction allows for easily
swapping it against a different database solution without any changes
in the upstream components."*

:class:`StorageBackend` is that API.  Three implementations ship with
this reproduction:

* :class:`~repro.storage.cluster.StorageCluster` — the distributed
  wide-column store modelling Cassandra (the paper's choice);
* :class:`~repro.storage.memory.MemoryBackend` — a minimal in-process
  store for unit tests and short-lived analyses;
* :class:`~repro.storage.sqlite.SqliteBackend` — a file-backed store
  demonstrating that the swap really requires no upstream changes.

:class:`~repro.faults.FaultyBackend` wraps any implementation with
deterministic fault injection and honours the same contract when no
faults fire — the contract suite runs against the wrapper to prove it.

Error contract: data/metadata operations raise
:class:`~repro.common.errors.StorageError` (or a subclass) on failure;
callers like the batching writer treat any such failure as retryable,
relying on the backend's last-write-wins timestamp dedup to make
re-application safe.

All timestamps are integer nanoseconds; values are integers (see
:mod:`repro.core.sensor` for the scaling convention).  Query results
are returned as two parallel ``numpy`` arrays — the natural shape for
the analysis layer, and the cheap shape for bulk retrieval ("data is
typically acquired and consumed in bulk", paper section 3.1).
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator

import numpy as np

from repro.core.sid import SensorId

#: A bulk-insert item: (sid, timestamp_ns, value, ttl_s).
InsertItem = tuple[SensorId, int, int, int]


class StorageBackend(abc.ABC):
    """Abstract persistent store for sensor time series and metadata."""

    # -- data plane -----------------------------------------------------

    @abc.abstractmethod
    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        """Store one reading.  Last write wins on duplicate timestamps."""

    def insert_batch(self, items: Iterable[InsertItem]) -> int:
        """Store many readings; returns the number inserted.

        Backends override this when they have a faster bulk path; the
        default loops over :meth:`insert`.
        """
        count = 0
        for sid, timestamp, value, ttl in items:
            self.insert(sid, timestamp, value, ttl)
            count += 1
        return count

    @abc.abstractmethod
    def query(
        self, sid: SensorId, start: int, end: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Readings of ``sid`` with start <= t <= end, time-ordered.

        Returns ``(timestamps, values)`` as int64 arrays (possibly
        empty).  Expired (TTL) entries are excluded.
        """

    def query_many(
        self, sids: Iterable[SensorId], start: int, end: int
    ) -> dict[SensorId, tuple[np.ndarray, np.ndarray]]:
        """Bulk read: the series of every SID in ``sids`` over one range.

        Semantically identical to calling :meth:`query` once per SID —
        same ordering, TTL filtering and last-write-wins dedup — but
        backends override it with a batched path (one lock/transaction,
        parallel replica fan-out).  Returns an entry for *every*
        requested SID; sensors without data in range map to empty
        arrays.  This default loops over :meth:`query` so third-party
        backends keep working unchanged.
        """
        return {sid: self.query(sid, start, end) for sid in sids}

    @abc.abstractmethod
    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        """Scan every sensor under a SID prefix (hierarchy subtree).

        Yields ``(sid, timestamps, values)`` per sensor.  This is the
        operation behind Grafana's hierarchy drill-down and virtual
        sensors aggregating a subtree.
        """

    @abc.abstractmethod
    def sids(self) -> list[SensorId]:
        """All sensor IDs with stored data."""

    @abc.abstractmethod
    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        """Drop readings older than ``cutoff``; returns count removed.

        This backs the config tool's "deleting old data" admin task.
        """

    # -- metadata plane ---------------------------------------------------

    @abc.abstractmethod
    def put_metadata(self, key: str, value: str) -> None:
        """Store one metadata entry (sensor properties, virtual-sensor
        definitions, publication lists)."""

    @abc.abstractmethod
    def get_metadata(self, key: str) -> str | None:
        """Fetch one metadata entry, or None."""

    @abc.abstractmethod
    def metadata_keys(self, prefix: str = "") -> list[str]:
        """All metadata keys starting with ``prefix``."""

    def delete_metadata(self, key: str) -> None:
        """Remove one metadata entry (default: overwrite with empty)."""
        self.put_metadata(key, "")

    # -- maintenance ------------------------------------------------------

    def compact(self) -> None:
        """Merge internal structures; a no-op where meaningless."""

    def flush(self) -> None:
        """Make all accepted writes durable/visible; default no-op."""

    def close(self) -> None:
        """Release resources; default no-op."""

    # -- conveniences -----------------------------------------------------

    def count(self, sid: SensorId, start: int, end: int) -> int:
        """Number of stored readings in the range."""
        timestamps, _ = self.query(sid, start, end)
        return int(timestamps.size)

    def latest(self, sid: SensorId) -> tuple[int, int] | None:
        """Most recent (timestamp, value) of ``sid``, or None."""
        timestamps, values = self.query(sid, 0, (1 << 63) - 1)
        if timestamps.size == 0:
            return None
        return int(timestamps[-1]), int(values[-1])

    def oldest(self, sid: SensorId) -> tuple[int, int] | None:
        """Oldest stored (timestamp, value) of ``sid``, or None."""
        timestamps, values = self.query(sid, 0, (1 << 63) - 1)
        if timestamps.size == 0:
            return None
        return int(timestamps[0]), int(values[0])
