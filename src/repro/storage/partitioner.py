"""Partition-key policies for the distributed store.

Paper section 4.3: *"We exploit this feature by leveraging the
hierarchical SIDs as partition keys for Cassandra: using a
partitioning algorithm that maps a sub-tree in the sensor hierarchy to
a particular database server allows for storing a sensor's reading on
the nearest server and thus to avoid network traffic."*

:class:`HierarchicalPartitioner` reproduces that policy — the top
``levels`` fields of the SID choose the node, so an entire subtree
(e.g. one cluster's racks) is co-located and hierarchy-scoped queries
touch a single server.

:class:`HashPartitioner` is the conventional alternative (Cassandra's
default Murmur3-style token ring, here FNV-1a): uniform balance, but a
subtree's sensors scatter across all nodes.  It exists as the ablation
baseline for ``benchmarks/test_ablation_partitioning.py``, which
quantifies exactly the cross-node traffic the paper's design avoids.
"""

from __future__ import annotations

import abc

from repro.core.sid import SensorId


class Partitioner(abc.ABC):
    """Maps a SID to the index of its owning storage node."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one storage node")
        self.num_nodes = num_nodes

    @abc.abstractmethod
    def node_for(self, sid: SensorId) -> int:
        """Primary owner node index in [0, num_nodes)."""

    def replicas_for(self, sid: SensorId, replication: int) -> list[int]:
        """Owner plus the next ``replication - 1`` nodes (ring walk)."""
        first = self.node_for(sid)
        n = min(replication, self.num_nodes)
        return [(first + i) % self.num_nodes for i in range(n)]

    def partition_key(self, sid: SensorId) -> int | None:
        """Stable partition identity of ``sid``, or None.

        Elastic membership (:mod:`repro.storage.membership`) moves
        whole partitions between nodes, so it needs every SID to
        resolve to an enumerable partition.  Policies that place each
        sensor independently (hash placement) return None and opt out
        of elasticity.
        """
        return None

    def known_assignments(self) -> dict[int, int]:
        """Snapshot of partition-key -> primary-owner assignments.

        Empty for policies without enumerable partitions.  Used by the
        ownership table to materialize the static placement before the
        first membership change.
        """
        return {}


class HierarchicalPartitioner(Partitioner):
    """Subtree-to-node placement on SID prefixes (the paper's policy).

    The top ``levels`` SID fields form the partition key.  Distinct
    prefixes are assigned to nodes round-robin in first-seen order,
    which matches how an administrator statically pins subtrees (one
    cluster's Collect Agent writes to its nearest Storage Backend) and
    keeps the mapping stable as new subtrees appear.
    """

    def __init__(self, num_nodes: int, levels: int = 2) -> None:
        super().__init__(num_nodes)
        if levels < 1:
            raise ValueError("prefix must keep at least one level")
        self.levels = levels
        self._assignment: dict[int, int] = {}

    def node_for(self, sid: SensorId) -> int:
        prefix = sid.prefix(self.levels)
        node = self._assignment.get(prefix)
        if node is None:
            node = len(self._assignment) % self.num_nodes
            self._assignment[prefix] = node
        return node

    def node_for_prefix(self, prefix_value: int, prefix_levels: int) -> int | None:
        """Owner of a query prefix, if it resolves to a single node.

        Returns None when ``prefix_levels`` is shallower than the
        partition depth (the query may span several nodes) or the
        prefix is unknown.  This is the query-routing optimization of
        paper section 4.3 ("the same logic is applied for queries").
        """
        if prefix_levels < self.levels:
            return None
        # Reduce the query prefix to the partition depth.
        sid = SensorId(prefix_value)
        return self._assignment.get(sid.prefix(self.levels))

    def partition_key(self, sid: SensorId) -> int | None:
        """The top ``levels`` SID fields — one subtree, one partition."""
        return sid.prefix(self.levels)

    def known_assignments(self) -> dict[int, int]:
        return dict(self._assignment)

    @property
    def known_partitions(self) -> int:
        return len(self._assignment)


def _fnv1a_64(value: int) -> int:
    """FNV-1a over the 16 big-endian bytes of a 128-bit value."""
    h = 0xCBF29CE484222325
    for byte in value.to_bytes(16, "big"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class HashPartitioner(Partitioner):
    """Uniform hash placement (the ablation baseline).

    Every sensor hashes independently, so reads of a subtree fan out
    to all nodes — balanced, but with none of the locality the
    hierarchical policy provides.
    """

    def node_for(self, sid: SensorId) -> int:
        return _fnv1a_64(sid.value) % self.num_nodes

    def node_for_prefix(self, prefix_value: int, prefix_levels: int) -> int | None:
        """Hash placement never co-locates a subtree."""
        return None
