"""Rollup tiers: continuous aggregation of raw series at ingest.

The paper's storage design (section 4.3) assumes query cost bounded by
the *requested* resolution, not the ingest rate — a dashboard plotting
a month of data must not re-scan a month of raw readings on every
refresh.  This module maintains pre-aggregated **rollup tiers** per
sensor (10 s / 1 m / 1 h buckets by default), each carrying the four
decomposable statistics min / max / sum / count, from which every
aggregation libDCDB serves (including avg = sum/count) is exactly
reconstructible.

Rollup series are *ordinary* series: each (tier, field) pair is stored
under a SID derived from the raw sensor's SID by setting the deepest
(8th) hierarchy level to a reserved code.  Because the rollup SID
shares the raw SID's prefix, the hierarchical partitioner co-locates a
sensor's rollups with its raw data, and replication, hinted handoff,
segment pruning and ``delete_before`` all apply unchanged — the engine
needs no storage-layer support beyond ``insert_batch``.

Sealing follows the same rule as the streaming
:class:`~repro.analytics.operators.Aggregator`: a bucket is complete
once a reading with a *later* timestamp arrives (sensors are
synchronized in DCDB).  Sealed buckets are recomputed **from the raw
series just written** — the engine observes batches only after the
backend accepted them — so rollup values inherit storage's
last-write-wins timestamp dedup and are bit-identical to aggregating
the raw rows at query time.  Late readings that land below a sealed
watermark trigger a recompute of the affected buckets (LWW overwrite
on re-insert).  Per-sensor/per-tier coverage windows are persisted as
backend metadata, so the query planner knows exactly which span a tier
can serve and falls back to raw outside it, and the engine resumes
after a restart without double-counting.

Retention (:class:`RetentionPolicy`) demotes raw data to its rollups
via the vectorized ``delete_before`` path: the effective cutoff is
clamped to the sealed watermark of the coarsest surviving tier, and
raw history *below* the coverage windows — data ingested before the
engine first saw the sensor, which is normally served from raw — is
backfilled into every tier first, so demotion can never drop readings
that have not yet been folded into every series that outlives them.
"""

from __future__ import annotations

import json
import logging
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.common.timeutil import NS_PER_SEC, now_ns
from repro.core.sid import (
    SID_BITS_PER_LEVEL,
    SID_LEVELS,
    SID_RESERVED_DEEPEST_BASE,
    SensorId,
)
from repro.observability import MetricsRegistry
from repro.storage.backend import InsertItem, StorageBackend

logger = logging.getLogger(__name__)

__all__ = [
    "FIELDS",
    "ROLLUP_TIERS",
    "RetentionPolicy",
    "RollupConfig",
    "RollupEngine",
    "RollupTier",
    "aggregate_buckets",
    "coverage_key",
    "is_rollup_sid",
    "reduce_rows",
    "rollup_sid",
]


@dataclass(frozen=True, slots=True)
class RollupTier:
    """One rollup resolution: a label and its bucket width."""

    label: str
    bucket_ns: int


#: The built-in tier ladder.  Coarser buckets are exact multiples of
#: finer ones, so every tier boundary is aligned with every finer tier
#: and with the absolute ``timestamp // bucket_ns`` grid.
ROLLUP_TIERS: tuple[RollupTier, ...] = (
    RollupTier("10s", 10 * NS_PER_SEC),
    RollupTier("1m", 60 * NS_PER_SEC),
    RollupTier("1h", 3600 * NS_PER_SEC),
)

#: Statistics maintained per bucket.  All four are decomposable
#: (min of mins, sum of sums, ...), which is what lets the planner
#: merge tier rows into arbitrary coarser output buckets exactly.
FIELDS: tuple[str, ...] = ("min", "max", "sum", "count")

#: Rollup series occupy the deepest SID level with codes from this
#: base upward: code = _ROLLUP_BASE + tier_index * 16 + field_index.
#: The SID mappers never allocate deepest-level component codes in
#: this range, so a real sensor can never collide with (or be
#: misclassified as) a rollup series.  Sensors already using all 8
#: hierarchy levels have no room for a rollup suffix and simply stay
#: raw-only (the planner falls back).
_ROLLUP_BASE = SID_RESERVED_DEEPEST_BASE
_ROLLUP_LEVEL = SID_LEVELS - 1
_ROLLUP_SHIFT = SID_BITS_PER_LEVEL * (SID_LEVELS - 1 - _ROLLUP_LEVEL)

#: Metadata key prefix of the per-(sid, tier) coverage documents.
_COVERAGE_PREFIX = "rollupcov/"


def rollup_sid(sid: SensorId, tier_index: int, field_index: int) -> SensorId | None:
    """SID storing one (tier, field) rollup series of ``sid``.

    Returns None when the raw SID populates all 8 levels — there is no
    spare level to carve the reserved suffix from.
    """
    if sid.level_code(_ROLLUP_LEVEL) != 0:
        return None
    code = _ROLLUP_BASE + tier_index * 16 + field_index
    return SensorId(sid.value | (code << _ROLLUP_SHIFT))


def is_rollup_sid(sid: SensorId) -> bool:
    """True when ``sid`` is a derived rollup series, not a raw sensor."""
    return sid.level_code(_ROLLUP_LEVEL) >= _ROLLUP_BASE


def coverage_key(sid: SensorId, tier_label: str) -> str:
    """Metadata key of the (sid, tier) coverage document."""
    return f"{_COVERAGE_PREFIX}{tier_label}/{sid.hex()}"


def aggregate_buckets(
    timestamps: np.ndarray, values: np.ndarray, bucket_ns: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-bucket (start, min, max, sum, count) of a sorted series.

    Buckets follow the absolute ``timestamp // bucket_ns`` grid; empty
    buckets are omitted.  This is the single aggregation kernel shared
    by the ingest-side engine and the query planner's raw fallback, so
    tier-served and raw-computed aggregates are bit-identical by
    construction.
    """
    empty = np.empty(0, dtype=np.int64)
    if timestamps.size == 0:
        return empty, empty, empty, empty, empty
    buckets = timestamps // bucket_ns
    starts_idx = np.flatnonzero(np.diff(buckets)) + 1
    idx = np.concatenate((np.zeros(1, dtype=np.intp), starts_idx))
    mins = np.minimum.reduceat(values, idx)
    maxs = np.maximum.reduceat(values, idx)
    sums = np.add.reduceat(values, idx)
    counts = np.diff(np.concatenate((idx, [timestamps.size]))).astype(np.int64)
    starts = buckets[idx] * bucket_ns
    return starts, mins, maxs, sums, counts


def reduce_rows(
    timestamps: np.ndarray, values: np.ndarray, bucket_ns: int, ufunc
) -> tuple[np.ndarray, np.ndarray]:
    """Combine tier rows into coarser buckets with one decomposable ufunc.

    The planner's middle section: tier rows (bucket starts + one
    statistic) are regrouped onto the output-bucket grid — min of mins
    via ``np.minimum``, sum of sums / count of counts via ``np.add``.
    ``bucket_ns`` must be a multiple of the rows' native bucket width
    so no row straddles an output boundary.
    """
    if timestamps.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    buckets = timestamps // bucket_ns
    starts_idx = np.flatnonzero(np.diff(buckets)) + 1
    idx = np.concatenate((np.zeros(1, dtype=np.intp), starts_idx))
    return buckets[idx] * bucket_ns, ufunc.reduceat(values, idx)


@dataclass(frozen=True, slots=True)
class RetentionPolicy:
    """Age horizons of the demotion lifecycle (0 = keep forever).

    ``raw_horizon_s``
        raw readings older than this are deleted once the coarsest
        surviving tier has sealed past them.
    ``tier_horizons_s``
        per-tier horizons for the rollup series themselves (finest
        first); a tier's rows are only deleted up to the sealed
        watermark of the coarsest tier above it, so the demotion chain
        never drops data no surviving series still covers.
    """

    raw_horizon_s: int = 0
    tier_horizons_s: tuple[int, ...] = (0, 0, 0)

    def __post_init__(self) -> None:
        if self.raw_horizon_s < 0:
            raise ValueError("raw_horizon_s must be >= 0")
        if any(h < 0 for h in self.tier_horizons_s):
            raise ValueError("tier horizons must be >= 0")


@dataclass(frozen=True, slots=True)
class RollupConfig:
    """Tuning knobs of the continuous-aggregation engine.

    ``tiers``
        the rollup ladder (finest first; each coarser ``bucket_ns``
        must be an exact multiple of the finer one).
    ``ttl_s``
        TTL applied to rollup rows (0 = keep forever — rollups are the
        long-lived representation, raw data is what expires).
    ``retention``
        when set, :meth:`RollupEngine.observe` opportunistically runs
        the demotion lifecycle every ``retention_check_every_s``.
    """

    tiers: tuple[RollupTier, ...] = ROLLUP_TIERS
    ttl_s: int = 0
    retention: RetentionPolicy | None = None
    retention_check_every_s: int = 600

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("at least one rollup tier is required")
        previous = 0
        for tier in self.tiers:
            if tier.bucket_ns <= 0:
                raise ValueError(f"tier {tier.label}: bucket_ns must be positive")
            if previous and tier.bucket_ns % previous != 0:
                raise ValueError(
                    f"tier {tier.label}: bucket must be a multiple of the finer tier"
                )
            previous = tier.bucket_ns
        if self.retention_check_every_s <= 0:
            raise ValueError("retention_check_every_s must be positive")


@dataclass(slots=True)
class _SidState:
    """Per-sensor rollup bookkeeping (guarded by the engine lock)."""

    coverage: list[list[int]]  # per tier: [lo, hi) sealed span, ns
    high: int  # newest raw timestamp observed
    dirty_min: int | None = None  # oldest unprocessed observation
    dirty: bool = False  # has unprocessed observations
    pending: bool = False  # last advance failed; retry on next chance
    field_sids: list[SensorId] = field(default_factory=list)


class RollupEngine:
    """Maintains the rollup tiers of every sensor flowing through ingest.

    ``observe()`` is called by the batching writer (and the agent's
    synchronous path) with the exact item list a successful
    ``insert_batch`` just persisted; it advances sealed watermarks and
    writes rollup rows through the same backend.  It never raises —
    rollups are derived data, and a rollup failure must cost freshness,
    not raw durability.  Failed rollup writes are retried on the next
    observation (watermarks only advance after a successful write).
    """

    def __init__(
        self,
        backend: StorageBackend,
        config: RollupConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock=None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else RollupConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock if clock is not None else now_ns
        self._lock = threading.Lock()
        self._states: dict[SensorId, _SidState] = {}
        self._skip: set[SensorId] = set()  # rollup sids / no spare level
        self._last_retention_ns: int | None = None
        self._observed = self.metrics.counter(
            "dcdb_rollup_readings_observed_total",
            "Raw readings observed by the rollup engine after durable insert",
        )
        self._buckets_written = self.metrics.counter(
            "dcdb_rollup_buckets_written_total",
            "Sealed rollup buckets written, per tier",
            ("tier",),
        )
        self._flushes = self.metrics.counter(
            "dcdb_rollup_flushes_total",
            "Engine passes that sealed and wrote at least one bucket",
        )
        self._errors = self.metrics.counter(
            "dcdb_rollup_write_errors_total",
            "Rollup batches the backend failed to accept (retried later)",
        )
        self._late = self.metrics.counter(
            "dcdb_rollup_late_readings_total",
            "Readings that arrived below a sealed watermark (bucket recomputed)",
        )
        self._retention_deleted = self.metrics.counter(
            "dcdb_rollup_retention_deleted_total",
            "Readings removed by the demotion lifecycle, per series kind",
            ("tier",),
        )

    # -- ingest side --------------------------------------------------------

    def observe(self, items: list[InsertItem]) -> None:
        """Fold one durably-inserted batch into the rollup state.

        Must be called only after ``insert_batch`` succeeded for
        ``items`` — sealing reads the raw series back, so observing
        unpersisted readings would roll up data that may not exist.
        Never raises; failures are counted and retried.
        """
        try:
            self._observe(items)
        except Exception:  # noqa: BLE001 - derived data must not break ingest
            self._errors.inc()
            logger.exception("rollup observe failed for %d readings", len(items))
        self._maybe_retention()

    def _observe(self, items: list[InsertItem]) -> None:
        touched: list[tuple[SensorId, _SidState]] = []
        observed = 0
        late = 0
        with self._lock:
            for sid, timestamp, _value, _ttl in items:
                state = self._states.get(sid)
                if state is None:
                    if sid in self._skip:
                        continue
                    state = self._new_state(sid, timestamp)
                    if state is None:
                        # No room for a rollup suffix, or itself a
                        # rollup series: stays raw-only.
                        self._skip.add(sid)
                        continue
                observed += 1
                if timestamp > state.high:
                    state.high = timestamp
                if state.dirty_min is None or timestamp < state.dirty_min:
                    state.dirty_min = timestamp
                if timestamp < state.coverage[0][1]:
                    late += 1
                if not state.dirty:
                    state.dirty = True
                    touched.append((sid, state))
            # Give previously failed sids another chance on any traffic.
            for sid, state in self._states.items():
                if state.pending and not state.dirty:
                    state.dirty = True
                    touched.append((sid, state))
        if observed:
            self._observed.inc(observed)
        if late:
            self._late.inc(late)
        for sid, state in touched:
            self._advance(sid, state)

    def _new_state(self, sid: SensorId, first_ts: int) -> _SidState | None:
        """Create (or restore from metadata) the state of a new sid."""
        if is_rollup_sid(sid) or sid.level_code(_ROLLUP_LEVEL) != 0:
            return None
        coverage: list[list[int]] = []
        field_sids: list[SensorId] = []
        for tier_index, tier in enumerate(self.config.tiers):
            span = None
            text = self.backend.get_metadata(coverage_key(sid, tier.label))
            if text:
                try:
                    doc = json.loads(text)
                    span = [int(doc["lo"]), int(doc["hi"])]
                except (ValueError, KeyError, TypeError):
                    span = None
            if span is None:
                # Fresh sensor: coverage starts at the bucket holding
                # the first observed reading — earlier data (ingested
                # before the engine existed) stays raw-only and the
                # planner serves it from raw, until the retention
                # lifecycle backfills it ahead of demotion.
                aligned = (first_ts // tier.bucket_ns) * tier.bucket_ns
                span = [aligned, aligned]
            coverage.append(span)
            for field_index in range(len(FIELDS)):
                fsid = rollup_sid(sid, tier_index, field_index)
                assert fsid is not None
                field_sids.append(fsid)
        state = _SidState(
            coverage=coverage, high=max(first_ts, coverage[0][1]), field_sids=field_sids
        )
        self._states[sid] = state
        return state

    def _advance(self, sid: SensorId, state: _SidState) -> None:
        """Seal every bucket the newest observation completed.

        Recomputes each pending tier region from the raw series (one
        backend read covering the union of regions), inserts the
        rollup rows, then persists the advanced coverage documents.
        Watermarks move only after the rollup write succeeded.
        """
        with self._lock:
            if not state.dirty:
                return
            high = state.high
            dirty_min = state.dirty_min
            regions: list[tuple[int, int, int]] = []  # (tier_index, lo, hi)
            for tier_index, tier in enumerate(self.config.tiers):
                cov_lo, cov_hi = state.coverage[tier_index]
                seal_end = (high // tier.bucket_ns) * tier.bucket_ns
                lo = cov_hi
                if dirty_min is not None and dirty_min < cov_hi:
                    # Late arrival below a sealed watermark: recompute
                    # from the bucket holding it (LWW overwrite).
                    aligned = (dirty_min // tier.bucket_ns) * tier.bucket_ns
                    lo = max(cov_lo, aligned)
                if seal_end > lo:
                    regions.append((tier_index, lo, seal_end))
            state.dirty = False
            state.dirty_min = None
            if not regions:
                state.pending = False
                return
        raw_lo = min(lo for _, lo, _ in regions)
        raw_hi = max(hi for _, _, hi in regions)
        try:
            timestamps, values = self.backend.query(sid, raw_lo, raw_hi - 1)
            rollup_items: list[InsertItem] = []
            written_per_tier: list[tuple[str, int]] = []
            ttl = self.config.ttl_s
            for tier_index, lo, hi in regions:
                tier = self.config.tiers[tier_index]
                left = int(np.searchsorted(timestamps, lo, side="left"))
                right = int(np.searchsorted(timestamps, hi, side="left"))
                starts, mins, maxs, sums, counts = aggregate_buckets(
                    timestamps[left:right], values[left:right], tier.bucket_ns
                )
                base = tier_index * len(FIELDS)
                for field_index, column in enumerate((mins, maxs, sums, counts)):
                    fsid = state.field_sids[base + field_index]
                    rollup_items.extend(
                        (fsid, int(t), int(v), ttl)
                        for t, v in zip(starts.tolist(), column.tolist())
                    )
                written_per_tier.append((tier.label, int(starts.size)))
            if rollup_items:
                self.backend.insert_batch(rollup_items)
            # Advance + persist coverage only now: a failed write above
            # leaves the watermark behind, so the region is retried.
            with self._lock:
                for tier_index, lo, hi in regions:
                    cov = state.coverage[tier_index]
                    if lo < cov[0]:
                        cov[0] = lo
                    if hi > cov[1]:
                        cov[1] = hi
                payloads = [
                    (
                        coverage_key(sid, self.config.tiers[tier_index].label),
                        json.dumps(
                            {
                                "lo": state.coverage[tier_index][0],
                                "hi": state.coverage[tier_index][1],
                            }
                        ),
                    )
                    for tier_index, _, _ in regions
                ]
                state.pending = False
            for key, payload in payloads:
                self.backend.put_metadata(key, payload)
            for label, buckets in written_per_tier:
                if buckets:
                    self._buckets_written.labels(tier=label).inc(buckets)
            if any(buckets for _, buckets in written_per_tier):
                self._flushes.inc()
        except Exception:  # noqa: BLE001 - retried on the next observation
            with self._lock:
                state.pending = True
                # Coverage was not advanced, so the sealed region is
                # retried wholesale; restore the late-arrival floor too.
                if dirty_min is not None and (
                    state.dirty_min is None or dirty_min < state.dirty_min
                ):
                    state.dirty_min = dirty_min
            self._errors.inc()
            logger.exception("rollup advance failed for sid %s", sid.hex())

    def flush(self) -> None:
        """Process every sid with unsealed or previously failed work.

        Called on agent shutdown and by tests; sealing still requires a
        later reading, so the open bucket stays open (the planner's raw
        tail covers it).
        """
        with self._lock:
            todo = [
                (sid, state)
                for sid, state in self._states.items()
                if state.dirty or state.pending
            ]
            for _, state in todo:
                state.dirty = True
        for sid, state in todo:
            self._advance(sid, state)

    # -- retention lifecycle -------------------------------------------------

    def _maybe_retention(self) -> None:
        policy = self.config.retention
        if policy is None:
            return
        now = self._clock()
        interval = self.config.retention_check_every_s * NS_PER_SEC
        if self._last_retention_ns is not None and (
            now - self._last_retention_ns < interval
        ):
            return
        self._last_retention_ns = now
        try:
            self.apply_retention(policy, now)
        except Exception:  # noqa: BLE001 - lifecycle must not break ingest
            self._errors.inc()
            logger.exception("rollup retention pass failed")

    def apply_retention(
        self, policy: RetentionPolicy, now: int | None = None
    ) -> dict[str, int]:
        """Demote aged data via ``delete_before``; returns removals per kind.

        The raw cutoff is clamped to the sealed watermark of the
        coarsest surviving tier, and each tier's cutoff to the
        watermark of the coarsest tier above it — data is only dropped
        from a series once every series outliving it has sealed past
        that point.  Raw history below the coverage windows (ingested
        before the engine tracked the sensor, hence never rolled up)
        is backfilled into every tier first; when that backfill fails,
        raw demotion for the sensor is skipped rather than risk
        deleting readings no rollup has absorbed.
        """
        if now is None:
            now = self._clock()
        tiers = self.config.tiers
        removed = {"raw": 0, **{tier.label: 0 for tier in tiers}}
        with self._lock:
            snapshot = [
                (sid, state, [list(span) for span in state.coverage])
                for sid, state in self._states.items()
            ]
        horizons = list(policy.tier_horizons_s)
        horizons += [0] * (len(tiers) - len(horizons))
        for sid, state, coverage in snapshot:
            with self._lock:
                field_sids = list(state.field_sids)
            # Sealed watermark of the coarsest tier kept forever (the
            # last tier always survives: its horizon guards only finer
            # series, never itself without a coarser successor).
            surviving = [
                index
                for index in range(len(tiers))
                if horizons[index] == 0 or index == len(tiers) - 1
            ]
            guard_all = min(coverage[index][1] for index in surviving)
            if policy.raw_horizon_s > 0:
                cutoff = min(now - policy.raw_horizon_s * NS_PER_SEC, guard_all)
                if cutoff > 0 and self._backfill(sid, state):
                    removed["raw"] += int(self.backend.delete_before(sid, cutoff))
            for tier_index, tier in enumerate(tiers[:-1]):
                horizon = horizons[tier_index]
                if horizon <= 0:
                    continue
                coarser_guard = min(
                    coverage[index][1]
                    for index in surviving
                    if index > tier_index
                )
                cutoff = min(now - horizon * NS_PER_SEC, coarser_guard)
                if cutoff <= 0:
                    continue
                base = tier_index * len(FIELDS)
                count = 0
                for fsid in field_sids[base : base + len(FIELDS)]:
                    count += int(self.backend.delete_before(fsid, cutoff))
                removed[tier.label] += count
        for label, count in removed.items():
            if count:
                self._retention_deleted.labels(tier=label).inc(count)
        return removed

    def _backfill(self, sid: SensorId, state: _SidState) -> bool:
        """Fold pre-coverage raw history of ``sid`` into every tier.

        Raw readings ingested before the engine first tracked a sensor
        sit below the tiers' coverage lo watermarks and were never
        rolled up; they are served from raw and must not be demoted
        as-is.  Called by the retention lifecycle before raw deletion,
        this aggregates everything below each tier's lo into that tier
        and extends the persisted coverage downward, so the subsequent
        ``delete_before`` only removes readings every tier has
        absorbed.  Returns False when the fold failed — the caller
        must then skip raw demotion for this sensor.  Cheap when there
        is nothing to do: one bounded backend read per pass.
        """
        with self._lock:
            spans = [list(span) for span in state.coverage]
        ceiling = max(span[0] for span in spans)
        if ceiling <= 0:
            return True
        try:
            timestamps, values = self.backend.query(sid, 0, ceiling - 1)
            if timestamps.size == 0:
                return True
            rollup_items: list[InsertItem] = []
            written_per_tier: list[tuple[str, int]] = []
            new_lo: list[int] = []
            ttl = self.config.ttl_s
            for tier_index, tier in enumerate(self.config.tiers):
                cov_lo = spans[tier_index][0]
                # Buckets below cov_lo end exactly at the (aligned)
                # watermark, and a reading at or above it exists — the
                # one the coverage was anchored on — so every
                # backfilled bucket is complete by the sealing rule.
                right = int(np.searchsorted(timestamps, cov_lo, side="left"))
                if right == 0:
                    new_lo.append(cov_lo)
                    written_per_tier.append((tier.label, 0))
                    continue
                starts, mins, maxs, sums, counts = aggregate_buckets(
                    timestamps[:right], values[:right], tier.bucket_ns
                )
                base = tier_index * len(FIELDS)
                for field_index, column in enumerate((mins, maxs, sums, counts)):
                    fsid = state.field_sids[base + field_index]
                    rollup_items.extend(
                        (fsid, int(t), int(v), ttl)
                        for t, v in zip(starts.tolist(), column.tolist())
                    )
                new_lo.append(min(cov_lo, int(starts[0])))
                written_per_tier.append((tier.label, int(starts.size)))
            if rollup_items:
                self.backend.insert_batch(rollup_items)
            with self._lock:
                for tier_index, lo in enumerate(new_lo):
                    if lo < state.coverage[tier_index][0]:
                        state.coverage[tier_index][0] = lo
                payloads = [
                    (
                        coverage_key(sid, self.config.tiers[tier_index].label),
                        json.dumps(
                            {
                                "lo": state.coverage[tier_index][0],
                                "hi": state.coverage[tier_index][1],
                            }
                        ),
                    )
                    for tier_index in range(len(self.config.tiers))
                ]
            for key, payload in payloads:
                self.backend.put_metadata(key, payload)
            for label, buckets in written_per_tier:
                if buckets:
                    self._buckets_written.labels(tier=label).inc(buckets)
            return True
        except Exception:  # noqa: BLE001 - caller skips demotion instead
            self._errors.inc()
            logger.exception("rollup backfill failed for sid %s", sid.hex())
            return False

    # -- introspection -------------------------------------------------------

    def coverage(self, sid: SensorId, tier_index: int) -> tuple[int, int] | None:
        """Sealed [lo, hi) span of one tier of ``sid`` (None if untracked)."""
        with self._lock:
            state = self._states.get(sid)
            if state is None:
                return None
            lo, hi = state.coverage[tier_index]
            return lo, hi

    def status(self) -> dict:
        """JSON-friendly snapshot for the REST ``/status`` document."""
        with self._lock:
            tracked = len(self._states)
            pending = sum(1 for s in self._states.values() if s.pending)
        return {
            "tiers": [
                {"label": tier.label, "bucketNs": tier.bucket_ns}
                for tier in self.config.tiers
            ],
            "trackedSensors": tracked,
            "pendingSensors": pending,
            "observed": int(self._observed.value),
            "flushes": int(self._flushes.value),
            "writeErrors": int(self._errors.value),
            "lateReadings": int(self._late.value),
            "retention": (
                {
                    "rawHorizonSeconds": self.config.retention.raw_horizon_s,
                    "tierHorizonsSeconds": list(self.config.retention.tier_horizons_s),
                }
                if self.config.retention is not None
                else None
            ),
        }
