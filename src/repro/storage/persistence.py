"""Snapshot persistence for storage nodes — superseded, kept loadable.

.. deprecated::
    Whole-state snapshots are superseded by the durable storage engine
    (:mod:`repro.storage.durable`): a :class:`~repro.storage.durable.DurableNode`
    is continuously crash-safe through its write-ahead log and
    compressed segment files, so there is no snapshot moment to lose
    data behind.  This module stays importable so existing ``.npz``
    snapshot directories (written before the durable engine landed)
    keep loading, and for shipping experiment datasets as one
    self-describing directory.

A node's entire state (segments, memtable contents, metadata)
serializes to one ``.npz``-based snapshot directory and reloads into a
fresh node; :func:`save_cluster`/:func:`load_cluster` apply the same
format per member under one root.

Layout of a snapshot directory::

    snapshot/
      manifest.json         # sid list, row counts, format version
      metadata.json         # the metadata key/value table
      <sid-hex>.npz         # timestamps/values/expiries arrays per sensor

Cluster snapshots add one level: ``snapshot/node<i>/`` per member plus
a ``cluster.json`` recording the member count and replication factor.
"""

from __future__ import annotations

import json
import os
import warnings

import numpy as np

from repro.common.errors import StorageError
from repro.core.sid import SensorId
from repro.storage.node import StorageNode

FORMAT_VERSION = 1

#: Where new code should go instead of snapshots (tests assert this
#: pointer exists so the migration path stays discoverable).
SUPERSEDED_BY = "repro.storage.durable"


def _warn_superseded(func: str) -> None:
    warnings.warn(
        f"repro.storage.persistence.{func} is superseded by the durable "
        f"storage engine ({SUPERSEDED_BY}); use a `durable:` data dir "
        "(DurableNode / StorageCluster.open_durable) for crash-safe state",
        DeprecationWarning,
        stacklevel=3,
    )


def save_node(node: StorageNode, directory: str) -> int:
    """Write ``node``'s full state into ``directory``.

    Flushes and compacts first so every sensor is one sorted segment.
    Returns the number of sensors written.  The directory is created;
    existing snapshot files in it are overwritten.
    """
    _warn_superseded("save_node")
    os.makedirs(directory, exist_ok=True)
    node.compact()
    sids = node.sids()
    manifest = {
        "version": FORMAT_VERSION,
        "name": node.name,
        "sensors": [],
    }
    with node._lock:
        for sid in sids:
            data = node._data[sid]
            if not data.segments:
                continue
            segment = data.segments[0]
            path = os.path.join(directory, f"{sid.hex()}.npz")
            np.savez_compressed(
                path,
                timestamps=segment.timestamps,
                values=segment.values,
                expiries=segment.expiries,
            )
            manifest["sensors"].append(
                {"sid": sid.hex(), "rows": int(segment.timestamps.size)}
            )
        metadata = dict(node._metadata)
    with open(os.path.join(directory, "metadata.json"), "w", encoding="utf-8") as out:
        json.dump(metadata, out)
    with open(os.path.join(directory, "manifest.json"), "w", encoding="utf-8") as out:
        json.dump(manifest, out)
    return len(manifest["sensors"])


def load_node(directory: str, **node_kwargs) -> StorageNode:
    """Reconstruct a :class:`StorageNode` from a snapshot directory."""
    _warn_superseded("load_node")
    manifest_path = os.path.join(directory, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read snapshot manifest {manifest_path}: {exc}") from exc
    if manifest.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"snapshot format {manifest.get('version')} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    node_kwargs.setdefault("name", manifest.get("name", "restored"))
    node = StorageNode(**node_kwargs)
    from repro.storage.node import _Segment, _SensorData

    with node._lock:
        for entry in manifest["sensors"]:
            sid = SensorId.from_hex(entry["sid"])
            path = os.path.join(directory, f"{entry['sid']}.npz")
            try:
                arrays = np.load(path)
            except OSError as exc:
                raise StorageError(f"snapshot segment missing: {path}: {exc}") from exc
            segment = _Segment(
                arrays["timestamps"].astype(np.int64),
                arrays["values"].astype(np.int64),
                arrays["expiries"].astype(np.int64),
            )
            if segment.timestamps.size != entry["rows"]:
                raise StorageError(
                    f"snapshot {path} row count mismatch: "
                    f"{segment.timestamps.size} != {entry['rows']}"
                )
            data = _SensorData()
            data.segments.append(segment)
            node._data[sid] = data
    metadata_path = os.path.join(directory, "metadata.json")
    if os.path.exists(metadata_path):
        with open(metadata_path, "r", encoding="utf-8") as handle:
            for key, value in json.load(handle).items():
                node.put_metadata(key, value)
    return node


def save_cluster(cluster, directory: str) -> int:
    """Snapshot every member of a cluster under one root directory.

    Per-member state goes to ``<directory>/node<i>/`` in the node
    snapshot format; ``cluster.json`` records the shape needed to
    rebuild the cluster.  Returns the total sensors written.  Prefer
    :meth:`repro.storage.cluster.StorageCluster.open_durable` for new
    deployments — see :data:`SUPERSEDED_BY`.
    """
    _warn_superseded("save_cluster")
    os.makedirs(directory, exist_ok=True)
    total = 0
    for i, member in enumerate(cluster.nodes):
        # Fault proxies (FlakyNode) wrap the real node; snapshot the
        # underlying state regardless of up/down status.
        node = getattr(member, "node", member)
        total += save_node(node, os.path.join(directory, f"node{i}"))
    doc = {
        "version": FORMAT_VERSION,
        "nodes": len(cluster.nodes),
        "replication": cluster.replication,
    }
    with open(os.path.join(directory, "cluster.json"), "w", encoding="utf-8") as out:
        json.dump(doc, out)
    return total


def load_cluster(directory: str, **cluster_kwargs):
    """Rebuild a :class:`StorageCluster` from a :func:`save_cluster` root."""
    _warn_superseded("load_cluster")
    from repro.storage.cluster import StorageCluster

    cluster_path = os.path.join(directory, "cluster.json")
    try:
        with open(cluster_path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read cluster snapshot {cluster_path}: {exc}") from exc
    if doc.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"cluster snapshot format {doc.get('version')} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    nodes = [
        load_node(os.path.join(directory, f"node{i}"))
        for i in range(int(doc["nodes"]))
    ]
    cluster_kwargs.setdefault("replication", int(doc.get("replication", 1)))
    return StorageCluster(nodes, **cluster_kwargs)
