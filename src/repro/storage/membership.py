"""Elastic cluster membership: ownership table and failure detection.

The paper's storage tier (section 4.3) rides on Cassandra partly for
its data-distribution mechanism — nodes join and leave a running ring
and partitions move with them.  The reproduction's ``StorageCluster``
historically fixed membership at construction (``Partitioner.num_nodes``
forever) and sampled ``node.is_up`` once per batch.  This module
supplies the two pieces that make the cluster elastic:

* :class:`ClusterMembership` — an epoch-versioned **ownership table**:
  an explicit partition -> replica-set map derived from the
  hierarchical SID partitioner.  Until the first join/leave it is a
  thin pass-through over the static partitioner (placement stays
  bit-identical to the pre-elastic cluster); the first membership
  change materializes every known partition into the table, which is
  authoritative from then on.  Every mutation — join, leave, transfer
  commit — bumps the epoch atomically so callers (the cluster's
  replica cache) can invalidate derived state.

* :class:`FailureDetector` — a phi-accrual-style suspicion tracker
  (Hayashibara et al., the detector Cassandra gossip uses).  Heartbeat
  arrivals are recorded by a background probe thread (or driven
  deterministically from the simulation clock); the suspicion level
  *phi* grows with the time since the last heartbeat relative to the
  observed arrival cadence.  Write and read paths consult the cached
  verdict instead of sampling every node per call, and feed
  operation outcomes back in (`report_success` / `report_failure`) so
  detection does not wait for the next probe tick.

Transfer protocol (zero acked-write loss, see docs/deployment.md):
while a partition is mid-transfer, writes target the **union** of the
old and new replica sets and reads prefer the old owners (complete by
construction) before the new; hinted handoff covers writes to a new
owner that is briefly down.  Only when the transfer commits does the
partition's replica set collapse to the new owners.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.common.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sid import SensorId
    from repro.storage.partitioner import Partitioner


# Node lifecycle / liveness states.
NODE_UP = "up"
NODE_SUSPECT = "suspect"
NODE_DOWN = "down"
NODE_LEAVING = "leaving"
NODE_REMOVED = "removed"

#: States exported as `dcdb_cluster_node_state{node,state}` gauges.
EXPORTED_STATES = (NODE_UP, NODE_SUSPECT, NODE_DOWN)

_LN10 = math.log(10.0)


@dataclass(frozen=True)
class PartitionMove:
    """One partition changing owners during a rebalance."""

    partition: int
    old_replicas: tuple[int, ...]
    new_replicas: tuple[int, ...]

    @property
    def gaining(self) -> tuple[int, ...]:
        return tuple(i for i in self.new_replicas if i not in self.old_replicas)

    @property
    def losing(self) -> tuple[int, ...]:
        return tuple(i for i in self.old_replicas if i not in self.new_replicas)


class FailureDetector:
    """Phi-accrual suspicion over node heartbeats.

    ``probe()`` polls every registered node's heartbeat channel (the
    ``is_up`` attribute that fault proxies expose) and records the
    arrival; ``phi(idx)`` is the accrued suspicion — roughly the number
    of decades of confidence that the node is gone, growing with the
    silence interval relative to the observed heartbeat cadence.
    Crossing ``phi_suspect`` marks the node SUSPECT, ``phi_down`` marks
    it DOWN.  Operation outcomes feed back immediately: a hard failure
    (connection refused / :class:`NodeDownError`) forces DOWN without
    waiting for a probe tick, a soft failure bumps suspicion, a success
    counts as a heartbeat.

    One background daemon thread (``start()``/``stop()``) drives probes
    for long-running deployments; the simulation harness instead calls
    ``probe()`` at deterministic points on the sim clock.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], int] | None = None,
        interval_s: float = 0.5,
        phi_suspect: float = 1.0,
        phi_down: float = 8.0,
        window: int = 32,
    ) -> None:
        self._clock = clock or time.monotonic_ns
        self.interval_ns = max(1, int(interval_s * 1e9))
        self.phi_suspect = phi_suspect
        self.phi_down = phi_down
        self._window = window
        self._lock = threading.RLock()
        self._names: list[str] = []
        self._probes: list[Callable[[], bool]] = []
        self._last: list[int] = []
        self._intervals: list[deque[int]] = []
        self._state: list[str] = []
        self._failures: list[int] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.probes_total = 0
        # Phi only accrues once heartbeats are actually flowing (a
        # probe thread or a simulation driving probe()); without that,
        # elapsed-since-heartbeat is meaningless and an idle cluster
        # must not drift into suspicion.
        self._probing = False

    # -- registration -------------------------------------------------

    def register(self, name: str, probe: Callable[[], bool]) -> int:
        """Track one node; returns its index."""
        with self._lock:
            idx = len(self._probes)
            self._names.append(name)
            self._probes.append(probe)
            self._last.append(self._clock())
            self._intervals.append(deque(maxlen=self._window))
            self._state.append(NODE_UP)
            self._failures.append(0)
            return idx

    def deregister(self, idx: int) -> None:
        """Stop probing a node that left the cluster."""
        with self._lock:
            self._state[idx] = NODE_REMOVED
            self._probes[idx] = lambda: False

    # -- heartbeats ---------------------------------------------------

    def probe(self, now: int | None = None) -> None:
        """Poll every node's heartbeat channel once.

        Passing an explicit ``now`` (the probe thread and the
        simulation harness do) marks heartbeating as continuous, which
        arms phi-based condemnation; a bare ``probe()`` from an ad-hoc
        health check only refreshes the states.
        """
        with self._lock:
            if now is not None:
                self._probing = True
            now = self._clock() if now is None else now
            self.probes_total += 1
            for idx in range(len(self._probes)):
                if self._state[idx] == NODE_REMOVED:
                    continue
                try:
                    up = bool(self._probes[idx]())
                except Exception:
                    up = False
                if up:
                    self._heartbeat_locked(idx, now)
                else:
                    self._state[idx] = NODE_DOWN

    def report_success(self, idx: int) -> None:
        """An operation against the node succeeded — that is a heartbeat."""
        with self._lock:
            if 0 <= idx < len(self._state) and self._state[idx] != NODE_REMOVED:
                self._heartbeat_locked(idx, self._clock())

    def report_failure(self, idx: int, *, hard: bool = False) -> None:
        """An operation failed; ``hard`` means the node is definitely down.

        Soft failures (injected faults, transient errors) only raise
        suspicion — the node stays routable, so a flaky-but-alive
        member is never falsely evicted from the read/write paths.
        Hard failures (connection refused / :class:`NodeDownError`)
        mark the node DOWN immediately, without waiting for the next
        probe tick.
        """
        with self._lock:
            if not (0 <= idx < len(self._state)) or self._state[idx] == NODE_REMOVED:
                return
            self._failures[idx] += 1
            if hard:
                self._state[idx] = NODE_DOWN
            elif self._state[idx] == NODE_UP:
                self._state[idx] = NODE_SUSPECT

    def _heartbeat_locked(self, idx: int, now: int) -> None:
        elapsed = now - self._last[idx]
        if elapsed > 0:
            self._intervals[idx].append(elapsed)
            self._last[idx] = now
        self._failures[idx] = 0
        self._state[idx] = NODE_UP

    # -- verdicts -----------------------------------------------------

    def phi(self, idx: int, now: int | None = None) -> float:
        """Accrued suspicion for the node (0 = just heard from it)."""
        with self._lock:
            if self._state[idx] in (NODE_DOWN, NODE_REMOVED):
                return float("inf")
            now = self._clock() if now is None else now
            intervals = self._intervals[idx]
            mean = (sum(intervals) / len(intervals)) if intervals else self.interval_ns
            mean = max(mean, 1.0)
            elapsed = max(0, now - self._last[idx])
            # P(heartbeat still pending) = exp(-t/mean); phi = -log10(P).
            accrued = elapsed / (mean * _LN10)
            return accrued + 2.0 * self._failures[idx]

    def is_alive(self, idx: int) -> bool:
        """Current verdict; SUSPECT nodes still count as alive.

        A node is condemned only on explicit evidence — a probe that
        found it down or a hard operation failure — or, when heartbeats
        are flowing, on the accrued phi crossing ``phi_down``.
        """
        with self._lock:
            if not 0 <= idx < len(self._state):
                return True
            if self._state[idx] in (NODE_DOWN, NODE_REMOVED):
                return False
            if not self._probing:
                return True
        return self.phi(idx) < self.phi_down

    def state(self, idx: int) -> str:
        with self._lock:
            if not 0 <= idx < len(self._state):
                return NODE_UP
            st = self._state[idx]
            probing = self._probing
        if st == NODE_UP and probing and self.phi(idx) >= self.phi_suspect:
            return NODE_SUSPECT
        return st

    def liveness_snapshot(self) -> list[bool]:
        """Per-node alive verdicts in index order (one lock pass)."""
        with self._lock:
            n = len(self._state)
        return [self.is_alive(i) for i in range(n)]

    def states(self) -> list[dict[str, object]]:
        """Per-node detail for health endpoints."""
        out: list[dict[str, object]] = []
        with self._lock:
            n = len(self._state)
        for idx in range(n):
            phi = self.phi(idx)
            out.append(
                {
                    "index": idx,
                    "node": self._names[idx],
                    "state": self.state(idx),
                    "phi": round(min(phi, 99.0), 3),
                }
            )
        return out

    # -- background probing -------------------------------------------

    def start(self) -> None:
        """Spawn the background probe thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="dcdb-failure-detector", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        interval_s = self.interval_ns / 1e9
        while not self._stop.wait(interval_s):
            self.probe(self._clock())

class ClusterMembership:
    """Epoch-versioned partition -> replica-set ownership table.

    Static phase (before any join/leave): placement is delegated to the
    partitioner's ring walk so existing clusters behave bit-identically.
    The first membership change *materializes* the static placement of
    every known partition into an explicit table; from then on the
    table is authoritative and the partitioner only supplies partition
    keys for newly seen subtrees (assigned round-robin over the active
    nodes, continuing the first-seen sequence).

    Every mutation bumps ``epoch`` and fires the registered listeners
    (the cluster clears its replica cache there).  While a partition is
    listed in ``transfers`` its writes go to old+new union and reads
    prefer the old owners; ``commit_transfer`` ends the dual phase.
    """

    def __init__(self, partitioner: "Partitioner", replication: int) -> None:
        self.partitioner = partitioner
        self.replication = replication
        self._lock = threading.RLock()
        self._slots: list[str] = [NODE_UP] * partitioner.num_nodes
        self._epoch = 1
        self._elastic = False
        self._table: dict[int, tuple[int, ...]] = {}
        self._transfers: dict[int, tuple[int, ...]] = {}
        self._rr = 0
        self._listeners: list[Callable[[int], None]] = []

    # -- introspection ------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def elastic(self) -> bool:
        return self._elastic

    @property
    def num_slots(self) -> int:
        with self._lock:
            return len(self._slots)

    def active_indices(self) -> list[int]:
        """Slots that currently accept placements (LEAVING excluded)."""
        with self._lock:
            return [i for i, s in enumerate(self._slots) if s == NODE_UP]

    def member_indices(self) -> list[int]:
        """Slots still serving data (LEAVING included, REMOVED not)."""
        with self._lock:
            return [
                i for i, s in enumerate(self._slots) if s != NODE_REMOVED
            ]

    def slot_state(self, idx: int) -> str:
        with self._lock:
            return self._slots[idx]

    @property
    def transfers_active(self) -> int:
        with self._lock:
            return len(self._transfers)

    def pending_transfers(self) -> list[int]:
        with self._lock:
            return sorted(self._transfers)

    def on_epoch_change(self, fn: Callable[[int], None]) -> None:
        self._listeners.append(fn)

    def _bump_locked(self) -> None:
        self._epoch += 1
        for fn in self._listeners:
            fn(self._epoch)

    # -- placement ----------------------------------------------------

    def write_replicas(self, sid: "SensorId") -> tuple[tuple[int, ...], bool]:
        """Replica set a write must reach, plus whether it is cacheable.

        During a transfer the set is the union of old and new owners
        (not cacheable — it shrinks at commit); otherwise it is the
        table entry (or the static ring walk pre-elasticity).
        """
        with self._lock:
            if not self._elastic:
                return (
                    tuple(
                        self.partitioner.replicas_for(sid, self.replication)
                    ),
                    True,
                )
            key = self.partitioner.partition_key(sid)
            entry = self._table.get(key)
            if entry is None:
                entry = self._assign_locked(key)
            old = self._transfers.get(key)
            if old is None:
                return entry, True
            union = entry + tuple(i for i in old if i not in entry)
            return union, False

    def read_replicas(self, sid: "SensorId") -> tuple[int, ...]:
        """Candidate read order: old owners first while mid-transfer.

        Old owners keep receiving every write during the dual phase
        (union writes), so they stay complete while the new owner is
        still streaming history.
        """
        with self._lock:
            if not self._elastic:
                return tuple(self.partitioner.replicas_for(sid, self.replication))
            key = self.partitioner.partition_key(sid)
            entry = self._table.get(key)
            if entry is None:
                entry = self._assign_locked(key)
            old = self._transfers.get(key)
            if old is None:
                return entry
            return old + tuple(i for i in entry if i not in old)

    def primary_for_partition(self, key: int) -> int | None:
        """Single-owner routing hint; None while mid-transfer/unknown."""
        with self._lock:
            if not self._elastic:
                return None
            if key in self._transfers:
                return None
            entry = self._table.get(key)
            return entry[0] if entry else None

    def partition_of(self, sid: "SensorId") -> int | None:
        return self.partitioner.partition_key(sid)

    def _assign_locked(self, key: int | None) -> tuple[int, ...]:
        """First-seen assignment of a new partition (elastic phase)."""
        if key is None:
            raise StorageError(
                "elastic membership requires an enumerable partition key; "
                f"{type(self.partitioner).__name__} does not provide one"
            )
        active = [i for i, s in enumerate(self._slots) if s == NODE_UP]
        if not active:
            raise StorageError("no active nodes left in the cluster")
        start = self._rr % len(active)
        self._rr += 1
        n = min(self.replication, len(active))
        entry = tuple(active[(start + k) % len(active)] for k in range(n))
        self._table[key] = entry
        return entry

    def _materialize_locked(self) -> None:
        """Freeze the static placement into the explicit table."""
        if self._elastic:
            return
        assignments = self.partitioner.known_assignments()
        num = self.partitioner.num_nodes
        n = min(self.replication, num)
        for key, owner in assignments.items():
            self._table[key] = tuple((owner + i) % num for i in range(n))
        self._rr = len(self._table)
        self._elastic = True

    # -- membership changes -------------------------------------------

    def _require_elastic_capable(self) -> None:
        from repro.core.sid import SensorId  # local: avoid import cycle

        if self.partitioner.partition_key(SensorId(0)) is None:
            raise StorageError(
                "elastic membership needs partition keys; the "
                f"{type(self.partitioner).__name__} policy places sensors "
                "individually and cannot move partitions"
            )

    def add_slot(self) -> tuple[int, list[PartitionMove]]:
        """Join a new node; plan the partitions that move to it.

        Deterministic: partitions are visited in sorted order and for
        each move the most-loaded current owner cedes its replica, until
        the new node holds its fair share of replica slots.
        """
        self._require_elastic_capable()
        with self._lock:
            self._materialize_locked()
            new_idx = len(self._slots)
            self._slots.append(NODE_UP)
            active = [i for i, s in enumerate(self._slots) if s == NODE_UP]
            counts = {i: 0 for i in active}
            for reps in self._table.values():
                for r in reps:
                    if r in counts:
                        counts[r] += 1
            total = sum(len(reps) for reps in self._table.values())
            want = total // len(active)
            moves: list[PartitionMove] = []
            for key in sorted(self._table):
                if counts[new_idx] >= want:
                    break
                if key in self._transfers:
                    continue
                old = self._table[key]
                if new_idx in old:
                    continue
                victim = max(
                    (r for r in old if r in counts),
                    key=lambda r: (counts[r], r),
                    default=None,
                )
                if victim is None or counts[victim] <= counts[new_idx]:
                    continue
                new = tuple(new_idx if r == victim else r for r in old)
                self._table[key] = new
                self._transfers[key] = old
                counts[victim] -= 1
                counts[new_idx] += 1
                moves.append(PartitionMove(key, old, new))
            self._bump_locked()
            return new_idx, moves

    def remove_slot(self, idx: int) -> list[PartitionMove]:
        """Begin draining a member: plan moves off every partition it owns."""
        self._require_elastic_capable()
        with self._lock:
            if not 0 <= idx < len(self._slots):
                raise StorageError(f"no such node index {idx}")
            if self._slots[idx] != NODE_UP:
                raise StorageError(f"node {idx} is already {self._slots[idx]}")
            self._materialize_locked()
            active = [
                i
                for i, s in enumerate(self._slots)
                if s == NODE_UP and i != idx
            ]
            if not active:
                raise StorageError("cannot remove the last active node")
            self._slots[idx] = NODE_LEAVING
            counts = {i: 0 for i in active}
            for reps in self._table.values():
                for r in reps:
                    if r in counts:
                        counts[r] += 1
            moves: list[PartitionMove] = []
            for key in sorted(self._table):
                old = self._table[key]
                if idx not in old:
                    continue
                candidates = [n for n in active if n not in old]
                if candidates:
                    repl = min(candidates, key=lambda n: (counts[n], n))
                    new = tuple(repl if r == idx else r for r in old)
                    counts[repl] += 1
                else:
                    # replication >= surviving nodes: shrink the set.
                    new = tuple(r for r in old if r != idx)
                self._table[key] = new
                self._transfers[key] = old
                moves.append(PartitionMove(key, old, new))
            self._bump_locked()
            return moves

    def commit_transfer(self, key: int) -> None:
        """End a partition's dual-read/union-write phase."""
        with self._lock:
            if self._transfers.pop(key, None) is not None:
                self._bump_locked()

    def finish_remove(self, idx: int) -> None:
        """Mark a drained member as gone."""
        with self._lock:
            if self._slots[idx] == NODE_LEAVING:
                self._slots[idx] = NODE_REMOVED
                self._bump_locked()

    def ownership_counts(self) -> dict[int, int]:
        """Replica-slot count per member (balance introspection)."""
        with self._lock:
            counts = {i: 0 for i in self.member_indices()}
            for reps in self._table.values():
                for r in reps:
                    if r in counts:
                        counts[r] += 1
            return counts

    def table_snapshot(self) -> dict[int, tuple[int, ...]]:
        with self._lock:
            return dict(self._table)
