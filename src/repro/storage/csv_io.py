"""CSV import/export for storage backends.

Backs two of the paper's command-line tools (section 5.2): the
``query`` tool "allows users to obtain sensor data for a specified
time period in CSV format", and ``csvimport`` loads CSV data into
Storage Backends.

The CSV dialect matches DCDB's: one row per reading with columns
``sensor,time,value``, where ``sensor`` is the sensor's topic (or SID
hex) and ``time`` is integer nanoseconds.
"""

from __future__ import annotations

import csv
from typing import IO, Callable

from repro.common.errors import QueryError
from repro.core.sid import SensorId
from repro.storage.backend import StorageBackend

HEADER = ("sensor", "time", "value")


def export_csv(
    backend: StorageBackend,
    out: IO[str],
    sensors: list[tuple[str, SensorId]],
    start: int,
    end: int,
    scale_of: Callable[[str], float] | None = None,
) -> int:
    """Write readings of the named sensors in [start, end] to ``out``.

    ``sensors`` pairs each display name (usually the topic) with its
    SID.  ``scale_of`` maps a sensor name to its scaling factor so
    physical values are emitted; omitted, raw integers are written.
    Returns the number of rows written.
    """
    writer = csv.writer(out)
    writer.writerow(HEADER)
    rows = 0
    for name, sid in sensors:
        timestamps, values = backend.query(sid, start, end)
        scale = scale_of(name) if scale_of is not None else 1.0
        for ts, value in zip(timestamps.tolist(), values.tolist()):
            writer.writerow((name, ts, value / scale if scale != 1.0 else value))
            rows += 1
    return rows


def import_csv(
    backend: StorageBackend,
    source: IO[str],
    sid_of: Callable[[str], SensorId],
    ttl_s: int = 0,
    batch_size: int = 10_000,
) -> int:
    """Load CSV rows from ``source`` into ``backend``.

    ``sid_of`` resolves the sensor-name column to a SID (typically
    ``SidMapper.sid_for_topic``).  Values may be floats in the file;
    they are rounded into the integer storage domain (callers wanting
    scaled storage pre-multiply via their own ``sid_of`` wrapper).
    Returns the number of readings imported.

    Raises :class:`QueryError` on a malformed header or row so partial
    garbage is flagged loudly rather than silently half-loaded.
    """
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        return 0
    normalized = tuple(col.strip().lower() for col in header)
    if normalized != HEADER:
        raise QueryError(f"unexpected CSV header {header!r}, want {list(HEADER)}")
    batch: list[tuple[SensorId, int, int, int]] = []
    imported = 0
    for lineno, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != 3:
            raise QueryError(f"line {lineno}: expected 3 columns, got {len(row)}")
        name, ts_text, value_text = row
        try:
            timestamp = int(ts_text)
            value = int(round(float(value_text)))
        except ValueError as exc:
            raise QueryError(f"line {lineno}: {exc}") from None
        batch.append((sid_of(name.strip()), timestamp, value, ttl_s))
        if len(batch) >= batch_size:
            imported += backend.insert_batch(batch)
            batch.clear()
    if batch:
        imported += backend.insert_batch(batch)
    return imported
