"""The durable storage node: WAL + compressed segments + recovery.

:class:`DurableNode` extends the in-memory
:class:`~repro.storage.node.StorageNode` with the persistence shape
the paper gets from Cassandra (section 4.3) and the COMPASS CDB paper
describes explicitly: every accepted mutation is framed into a
write-ahead log *before* it touches the memtable, memtable seals write
immutable compressed segment files (see :mod:`.segment`), and the WAL
only truncates once a seal's checkpoint makes the manifest point past
it — ack-driven trimming, the lsst-dm buffer-manager discipline.

On-disk layout of one node directory::

    manifest.json    ordered segment list (= LWW order), WAL floor,
                     next file number, per-sensor retention cutoffs
    metadata.json    the metadata table image as of the last checkpoint
    wal-XXXXXXXX.log active + not-yet-checkpointed WAL files
    seg-XXXXXXXX.seg immutable columnar segments

Crash recovery (constructor): sweep orphan ``*.tmp`` files, open the
manifest's segments (per-sensor blocks decode on demand, through the
read path's bounded block cache), load the metadata image, then replay
every WAL file at or above the manifest floor into the memtable.
Replay is idempotent under the flush-time last-write-wins invariant,
so a WAL that overlaps sealed segments — the normal state after a
crash between seal and checkpoint — double applies harmlessly.  A torn
tail or corrupt CRC stops that file's scan at the last valid record
and recovery continues; it never refuses to start.  Recovery ends with
a seal + checkpoint, leaving a clean log.

Read path: a query stages footer-pruned disk blocks (decoded through
the byte-budgeted LRU in :mod:`.blockcache`) *ahead of* the in-memory
segments — disk blocks always hold data older than anything sealed
this process lifetime, and tiered compaction merges only runs that are
contiguous in manifest order — both keep the last-write-wins merge of
the base class correct.  Nothing a query touches is permanently
materialized: cold blocks age out of the cache, so scanning a store
larger than RAM holds resident memory at memtable + cache budget.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from pathlib import Path
from time import monotonic, perf_counter, sleep
from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import StorageError
from repro.core.sid import SID_BITS_PER_LEVEL, SID_LEVELS, SensorId
from repro.observability import MetricsRegistry
from repro.storage.backend import InsertItem, StorageBackend
from repro.storage.node import StorageNode, _Segment, _SensorData

from . import wal as walmod
from .blockcache import BlockCache
from .segment import SegmentFile, segment_path, write_segment
from .wal import CUTOFF, DATA, META, WriteAheadLog, scan_wal_file, wal_path

__all__ = ["DurableBackend", "DurableNode"]

_MANIFEST_FORMAT = 1
_M64 = (1 << 64) - 1
_EMPTY = np.empty(0, dtype=np.int64)


def _encode_data(items: list[InsertItem]) -> bytes:
    """Frame an insert batch as a DATA payload (columnar, fixed-width).

    Column-at-a-time via ``np.fromiter`` — per-element numpy scalar
    assignment was the single largest CPU cost on the durable insert
    path.  The ``OverflowError`` fallback keeps the old masking
    semantics for out-of-int64 values (never produced by the normal
    ingest path, but cheap to preserve).
    """
    n = len(items)
    sids, ts, vals, ttls = zip(*items)
    cols = np.empty((5, n), dtype=np.uint64)
    # One join of the SIDs' precomputed big-endian images, viewed as
    # (hi, lo) u64 pairs — no per-row 128-bit arithmetic.
    pair = np.frombuffer(b"".join(s.packed for s in sids), dtype=">u8").reshape(n, 2)
    cols[0] = pair[:, 0]
    cols[1] = pair[:, 1]
    try:
        cols[2] = np.fromiter(ts, dtype=np.int64, count=n).view(np.uint64)
        cols[3] = np.fromiter(vals, dtype=np.int64, count=n).view(np.uint64)
        cols[4] = np.fromiter(ttls, dtype=np.int64, count=n).view(np.uint64)
    except OverflowError:
        cols[2] = np.fromiter((t & _M64 for t in ts), dtype=np.uint64, count=n)
        cols[3] = np.fromiter((v & _M64 for v in vals), dtype=np.uint64, count=n)
        cols[4] = np.fromiter((t & _M64 for t in ttls), dtype=np.uint64, count=n)
    return struct.pack("<I", n) + cols.tobytes()


def _decode_data(payload: bytes) -> list[InsertItem]:
    (n,) = struct.unpack_from("<I", payload)
    cols = np.frombuffer(payload, dtype=np.uint64, offset=4).reshape(5, n)
    signed = cols[2:].view(np.int64)
    return [
        (
            SensorId((int(cols[0, i]) << 64) | int(cols[1, i])),
            int(signed[0, i]),
            int(signed[1, i]),
            int(signed[2, i]),
        )
        for i in range(n)
    ]


def _encode_meta(key: str, value: str) -> bytes:
    kb = key.encode("utf-8")
    return struct.pack("<I", len(kb)) + kb + value.encode("utf-8")


def _decode_meta(payload: bytes) -> tuple[str, str]:
    (klen,) = struct.unpack_from("<I", payload)
    return (
        payload[4 : 4 + klen].decode("utf-8"),
        payload[4 + klen :].decode("utf-8"),
    )


def _encode_cutoff(sid: SensorId, cutoff: int) -> bytes:
    return struct.pack("<QQq", sid.value >> 64, sid.value & _M64, cutoff)


def _decode_cutoff(payload: bytes) -> tuple[SensorId, int]:
    hi, lo, cutoff = struct.unpack("<QQq", payload)
    return SensorId((hi << 64) | lo), cutoff


def _merge_lww(
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]], now: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate (older parts first), stable-sort, keep last per ts.

    The flush-time dedup invariant: a stable sort preserves part order
    within equal timestamps, so keeping the final occurrence keeps the
    *newest* write.  ``now`` additionally drops expired rows.
    """
    ts = np.concatenate([p[0] for p in parts])
    vals = np.concatenate([p[1] for p in parts])
    exp = np.concatenate([p[2] for p in parts])
    if now is not None:
        live = exp > now
        if not live.all():
            ts, vals, exp = ts[live], vals[live], exp[live]
    order = np.argsort(ts, kind="stable")
    ts, vals, exp = ts[order], vals[order], exp[order]
    if ts.size > 1:
        keep = np.empty(ts.size, dtype=bool)
        keep[:-1] = ts[1:] != ts[:-1]
        keep[-1] = True
        if not keep.all():
            ts, vals, exp = ts[keep], vals[keep], exp[keep]
    return ts, vals, exp


def _atomic_json(path: Path, doc: dict) -> None:
    tmp = path.with_suffix(".tmp")
    data = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class DurableNode(StorageNode):
    """A :class:`StorageNode` whose state survives ``kill -9``.

    Parameters beyond the base class:

    data_dir:
        Directory owning this node's WAL and segment files (created if
        missing; recovery runs immediately if it holds prior state).
    fsync / fsync_interval_s:
        WAL sync policy — see :class:`~repro.storage.durable.wal.WriteAheadLog`.
    max_segment_files:
        Tiered compaction triggers when the manifest lists more files.
    compact_min_run:
        Smallest contiguous run of files one merge consumes.
    compaction:
        ``"background"`` (default) runs tiered merges on a dedicated
        thread — the insert/seal path only flags the backlog and moves
        on; ``"inline"`` merges synchronously inside the seal, which
        deterministic tests rely on.
    compact_min_interval_s:
        Rate limit for background merges: successive merge builds are
        spaced at least this far apart, so a burst of seals cannot
        monopolize the disk.
    block_cache_bytes:
        Byte budget for the decoded-block LRU on the read path (0
        disables caching; every windowed read decodes its blocks
        fresh).  See :mod:`.blockcache`.
    disk:
        Optional :class:`~repro.faults.disk.DiskFaultInjector` seam.
    """

    def __init__(
        self,
        name: str = "node0",
        data_dir: str | Path = "dcdb-data",
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        max_segment_files: int = 8,
        compact_min_run: int = 4,
        compaction: str = "background",
        compact_min_interval_s: float = 0.0,
        block_cache_bytes: int = 64 * 1024 * 1024,
        disk=None,
        flush_threshold: int = 100_000,
        max_segments_per_sensor: int = 8,
        clock=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if compaction not in ("background", "inline"):
            raise ValueError(
                f"compaction must be 'background' or 'inline', got {compaction!r}"
            )
        super().__init__(
            name=name,
            flush_threshold=flush_threshold,
            max_segments_per_sensor=max_segments_per_sensor,
            clock=clock,
            metrics=metrics,
        )
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.max_segment_files = max_segment_files
        self.compact_min_run = max(2, compact_min_run)
        self.compaction = compaction
        self.compact_min_interval_s = compact_min_interval_s
        self._disk = disk
        #: Ordered (fileno, SegmentFile) — manifest order == LWW order.
        self._seg_files: list[tuple[int, SegmentFile]] = []
        #: Per-sensor disk blocks served through the block cache, in
        #: LWW (manifest) order.  Permanent: reads never pop these —
        #: decoded blocks live in the bounded cache instead of the
        #: memtable.
        self._disk_refs: dict[SensorId, list[SegmentFile]] = {}
        #: Frozen segments a failed seal left unpersisted (still WAL-covered).
        self._unsealed: dict[SensorId, list[_Segment]] = {}
        self._cutoffs: dict[SensorId, int] = {}
        self._next_fileno = 1
        self._wal_floor = 1
        self._replaying = False
        self._closed = False
        self._raw_bytes = 0
        self._encoded_bytes = 0
        # Background compaction machinery: the seal path flags a
        # backlog and wakes the worker; merges build outside the node
        # lock and swap under it.  _compact_mutex serializes merge
        # builds against full compact() calls.
        self._compact_mutex = threading.Lock()
        self._compact_wake = threading.Event()
        self._compact_stop = False
        self._compact_thread: threading.Thread | None = None
        self._last_merge_at = 0.0

        label = {"node": name}
        self._m_wal_appends = self.metrics.counter(
            "dcdb_wal_appends_total", "Records framed into the write-ahead log", ("node",)
        ).labels(**label)
        self._m_wal_bytes = self.metrics.counter(
            "dcdb_wal_bytes_total", "Bytes appended to the write-ahead log", ("node",)
        ).labels(**label)
        self._m_wal_syncs = self.metrics.counter(
            "dcdb_wal_syncs_total", "fsync calls the WAL commit policy issued", ("node",)
        ).labels(**label)
        self._m_wal_rotations = self.metrics.counter(
            "dcdb_wal_rotations_total", "WAL file rotations at memtable seal", ("node",)
        ).labels(**label)
        self._m_wal_replayed = self.metrics.counter(
            "dcdb_wal_replayed_records_total",
            "WAL records re-applied during crash recovery",
            ("node",),
        ).labels(**label)
        self._m_seg_written = self.metrics.counter(
            "dcdb_segment_files_written_total", "Segment files written (seals + merges)", ("node",)
        ).labels(**label)
        self._m_seg_compactions = self.metrics.counter(
            "dcdb_segment_compactions_total", "Tiered merges of on-disk segment runs", ("node",)
        ).labels(**label)
        self._m_seg_errors = self.metrics.counter(
            "dcdb_segment_write_errors_total",
            "Failed segment writes (data stays WAL-covered)",
            ("node",),
        ).labels(**label)
        # The WAL object only exists once _recover() creates it; with a
        # shared registry a scrape can race a long recovery, so the
        # gauge must tolerate the not-yet-open state.
        self.metrics.gauge(
            "dcdb_wal_size_bytes", "Bytes in the active WAL file", ("node",)
        ).labels(**label).set_function(
            lambda: wal.size_bytes if (wal := getattr(self, "_wal", None)) else 0
        )
        self.metrics.gauge(
            "dcdb_segment_files", "Segment files in the manifest", ("node",)
        ).labels(**label).set_function(lambda: len(self._seg_files))
        self.metrics.gauge(
            "dcdb_segment_disk_bytes", "Total size of segment files", ("node",)
        ).labels(**label).set_function(
            lambda: sum(sf.size_bytes for _, sf in self._seg_files)
        )
        self.metrics.gauge(
            "dcdb_segment_compression_ratio",
            "Cumulative raw-to-encoded byte ratio of segment writes",
            ("node",),
        ).labels(**label).set_function(
            lambda: (self._raw_bytes / self._encoded_bytes) if self._encoded_bytes else 0.0
        )
        self._m_blocks_pruned = self.metrics.counter(
            "dcdb_segment_blocks_pruned_total",
            "On-disk blocks skipped via footer time-bounds on windowed reads",
            ("node",),
        ).labels(**label)
        self._block_cache = BlockCache(
            block_cache_bytes,
            hits=self.metrics.counter(
                "dcdb_segment_block_cache_hits_total",
                "Decoded-block cache hits on the durable read path",
                ("node",),
            ).labels(**label),
            misses=self.metrics.counter(
                "dcdb_segment_block_cache_misses_total",
                "Decoded-block cache misses (block decoded from disk)",
                ("node",),
            ).labels(**label),
            evictions=self.metrics.counter(
                "dcdb_segment_block_cache_evictions_total",
                "Decoded blocks evicted to honour the cache byte budget",
                ("node",),
            ).labels(**label),
        )
        self.metrics.gauge(
            "dcdb_segment_block_cache_bytes",
            "Decoded bytes currently resident in the block cache",
            ("node",),
        ).labels(**label).set_function(lambda: self._block_cache.bytes)
        self._m_compaction_runs = self.metrics.counter(
            "dcdb_compaction_runs_total",
            "Tiered segment-file merges completed (background or inline)",
            ("node",),
        ).labels(**label)
        self._m_compaction_seconds = self.metrics.histogram(
            "dcdb_compaction_seconds",
            "Wall time of one tiered merge (build + swap)",
            ("node",),
        ).labels(**label)
        self.metrics.gauge(
            "dcdb_compaction_backlog",
            "Segment files above the compaction trigger threshold",
            ("node",),
        ).labels(**label).set_function(
            lambda: max(0, len(self._seg_files) - self.max_segment_files)
        )

        self.recovery_info: dict = {}
        self._recover(fsync, fsync_interval_s)
        if (
            self.compaction == "background"
            and len(self._seg_files) > self.max_segment_files
        ):
            with self._lock:
                self._ensure_compactor_locked()
                self._compact_wake.set()

    # -- recovery ---------------------------------------------------------

    def _recover(self, fsync: str, fsync_interval_s: float) -> None:
        info: dict = {
            "segments_loaded": 0,
            "segments_dropped": [],
            "orphans_removed": 0,
            "wal_files_scanned": 0,
            "wal_records_replayed": 0,
            "wal_truncations": [],
            "unrecognized_files": [],
        }
        for orphan in self.data_dir.glob("*.tmp"):
            orphan.unlink(missing_ok=True)
            info["orphans_removed"] += 1

        manifest = {"wal_floor": 1, "next_fileno": 1, "segments": [], "cutoffs": {}}
        manifest_path = self.data_dir / "manifest.json"
        if manifest_path.is_file():
            loaded = json.loads(manifest_path.read_text(encoding="utf-8"))
            if loaded.get("format") != _MANIFEST_FORMAT:
                raise StorageError(
                    f"{self.name}: unsupported manifest format {loaded.get('format')}"
                )
            manifest.update(loaded)
        self._next_fileno = int(manifest["next_fileno"])
        self._cutoffs = {
            SensorId.from_hex(hexsid): int(cutoff)
            for hexsid, cutoff in manifest["cutoffs"].items()
        }

        listed = [int(fn) for fn in manifest["segments"]]
        for fileno in listed:
            path = segment_path(self.data_dir, fileno)
            try:
                seg_file = SegmentFile(path, disk=self._disk)
            except (OSError, StorageError) as exc:
                # The data is either in a newer merge output or still in
                # the WAL — never silently half-present in a bad file.
                info["segments_dropped"].append(f"{path.name}: {exc}")
                continue
            self._seg_files.append((fileno, seg_file))
            info["segments_loaded"] += 1
            for sid in seg_file.sids():
                self._disk_refs.setdefault(sid, []).append(seg_file)
                if sid not in self._data:
                    self._data[sid] = _SensorData()
                    self._sids_cache = None
        # A segment file the manifest does not list is an orphan from a
        # crash between seal and checkpoint: its rows are still in the WAL.
        for path in self.data_dir.glob("seg-*.seg"):
            try:
                fileno = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                # A stray file (editor backup, hand-named copy) must not
                # abort recovery — leave it alone and report it.
                info["unrecognized_files"].append(path.name)
                continue
            if fileno not in listed:
                path.unlink(missing_ok=True)
                info["orphans_removed"] += 1

        meta_path = self.data_dir / "metadata.json"
        if meta_path.is_file():
            doc = json.loads(meta_path.read_text(encoding="utf-8"))
            self._metadata.update(doc.get("metadata", {}))

        floor = int(manifest["wal_floor"])
        self._wal_floor = floor
        wal_seqs = []
        for path in self.data_dir.glob("wal-*.log"):
            try:
                seq = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                info["unrecognized_files"].append(path.name)
                continue
            if seq >= floor:
                wal_seqs.append(seq)
        wal_seqs.sort()
        records: list = []
        for seq in wal_seqs:
            scan = scan_wal_file(wal_path(self.data_dir, seq), seq, disk=self._disk)
            info["wal_files_scanned"] += 1
            records.extend(scan.records)
            if scan.truncated_reason is not None:
                info["wal_truncations"].append(
                    f"wal-{seq:08d}.log: {scan.truncated_reason}"
                )
        # Append always goes to a fresh file: a torn tail in the latest
        # file must never get live records written after it.
        active_seq = max(wal_seqs[-1] + 1 if wal_seqs else 0, floor, 1)
        for seq in wal_seqs:
            path = wal_path(self.data_dir, seq)
            if path.stat().st_size == 0:
                path.unlink(missing_ok=True)
        self._wal = WriteAheadLog(
            self.data_dir,
            active_seq,
            fsync=fsync,
            fsync_interval_s=fsync_interval_s,
            disk=self._disk,
        )

        self._replaying = True
        try:
            for record in records:
                if record.rtype == DATA:
                    self.insert_batch(_decode_data(record.payload))
                elif record.rtype == META:
                    key, value = _decode_meta(record.payload)
                    self.put_metadata(key, value)
                elif record.rtype == CUTOFF:
                    sid, cutoff = _decode_cutoff(record.payload)
                    self.delete_before(sid, cutoff)
                info["wal_records_replayed"] += 1
        finally:
            self._replaying = False
        self._m_wal_replayed.inc(info["wal_records_replayed"])

        if records:
            # Seal + checkpoint: every replayed row — including any a
            # mid-replay memtable flush froze into self._unsealed —
            # lands in a segment, the manifest floor moves past the
            # scanned files and they are deleted; recovery converges
            # to a clean log.
            with self._lock:
                self._flush_locked()
                if self._unsealed:
                    # The memtable emptied exactly on a mid-replay
                    # seal, so _flush_locked froze nothing and never
                    # reached _sealed: persist explicitly.  On failure
                    # the WAL stays un-truncated, so nothing is lost.
                    try:
                        self._persist_unsealed_locked()
                    except (OSError, StorageError):
                        self._m_seg_errors.inc()
        self.recovery_info = info

    # -- write path -------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        self.insert_batch([(sid, timestamp, value, ttl_s)])

    def insert_batch(self, items) -> int:
        if not isinstance(items, list):
            items = list(items)
        if not items:
            return 0
        with self._lock:
            if not self._replaying:
                nbytes = self._wal.append(DATA, _encode_data(items))
                self._m_wal_appends.inc()
                self._m_wal_bytes.inc(nbytes)
            count = super().insert_batch(items)
            if not self._replaying:
                self._commit_locked()
        return count

    def commit_durable(self) -> bool:
        """Group-commit barrier: apply the fsync policy to pending bytes.

        The batching writer calls this once per flushed batch before
        acknowledging, so under ``fsync=always`` one fsync covers the
        whole batch and an acknowledged reading can never be lost.
        """
        with self._lock:
            return self._commit_locked()

    def _commit_locked(self) -> bool:
        try:
            synced = self._wal.commit()
        except OSError as exc:
            raise StorageError(f"{self.name}: WAL fsync failed: {exc}") from exc
        if synced:
            self._m_wal_syncs.inc()
        return synced

    def put_metadata(self, key: str, value: str) -> None:
        with self._lock:
            if not self._replaying:
                nbytes = self._wal.append(META, _encode_meta(key, value))
                self._m_wal_appends.inc()
                self._m_wal_bytes.inc(nbytes)
            super().put_metadata(key, value)
            if not self._replaying:
                self._commit_locked()

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        with self._lock:
            removed_disk = 0
            if not self._replaying:
                nbytes = self._wal.append(CUTOFF, _encode_cutoff(sid, cutoff))
                self._m_wal_appends.inc()
                self._m_wal_bytes.inc(nbytes)
                # Count the disk rows the raised cutoff hides without
                # materializing anything into the memtable: blocks
                # decode through the bounded cache (under the *old*
                # cutoff) and a binary search does the counting.
                for seg_file in self._disk_refs.get(sid, ()):
                    min_ts, _ = seg_file.bounds_for(sid)
                    if cutoff <= min_ts:
                        continue
                    block = self._disk_block_locked(sid, seg_file)
                    removed_disk += int(
                        np.searchsorted(block.timestamps, cutoff, side="left")
                    )
            removed = super().delete_before(sid, cutoff)
            if cutoff > self._cutoffs.get(sid, -(1 << 63)):
                self._cutoffs[sid] = cutoff
                # Cached blocks were filtered under the old cutoff.
                self._block_cache.invalidate_sid(sid)
            if not self._replaying:
                self._commit_locked()
        return removed + removed_disk

    # -- seal / checkpoint -------------------------------------------------

    def _sealed(self, frozen: dict[SensorId, _Segment]) -> None:
        for sid, segment in frozen.items():
            self._unsealed.setdefault(sid, []).append(segment)
        if self._replaying:
            # A mid-replay seal only accumulates: its rows' sole durable
            # copy is the WAL being replayed, which the recovery-ending
            # checkpoint truncates — so the recovery-ending persist must
            # merge every frozen segment into the disk image first.
            return
        try:
            self._persist_unsealed_locked()
        except (OSError, StorageError):
            # The rows stay in memory AND in the un-rotated WAL, so
            # nothing acknowledged is lost; the next seal retries.
            self._m_seg_errors.inc()

    def _persist_unsealed_locked(self) -> None:
        def sensors() -> Iterator[tuple[SensorId, np.ndarray, np.ndarray, np.ndarray]]:
            for sid in sorted(self._unsealed):
                segments = self._unsealed[sid]
                if len(segments) == 1:
                    seg = segments[0]
                    yield sid, seg.timestamps, seg.values, seg.expiries
                else:
                    yield sid, *_merge_lww(
                        [(s.timestamps, s.values, s.expiries) for s in segments]
                    )

        fileno = self._next_fileno
        stats = write_segment(
            segment_path(self.data_dir, fileno), sensors(), disk=self._disk
        )
        if stats is None:
            self._unsealed.clear()
            return
        self._next_fileno = fileno + 1
        self._seg_files.append((fileno, SegmentFile(stats.path, disk=self._disk)))
        self._unsealed.clear()
        self._raw_bytes += stats.raw_bytes
        self._encoded_bytes += stats.file_bytes
        self._m_seg_written.inc()
        self._checkpoint_locked()
        self._schedule_compaction_locked()

    def _checkpoint_locked(self) -> None:
        """Rotate the WAL, persist the manifest, trim sealed WAL files."""
        self._wal_floor = self._wal.rotate()
        self._m_wal_rotations.inc()
        _atomic_json(
            self.data_dir / "metadata.json",
            {"format": _MANIFEST_FORMAT, "metadata": dict(self._metadata)},
        )
        self._write_manifest_locked()
        self._wal.delete_below(self._wal_floor)

    def _write_manifest_locked(self) -> None:
        """Persist the manifest at the current WAL floor.

        A background merge swap calls this *without* rotating the WAL:
        a merge introduces no new unsealed data, so the floor — and the
        replay set — must not move.
        """
        _atomic_json(
            self.data_dir / "manifest.json",
            {
                "format": _MANIFEST_FORMAT,
                "wal_floor": self._wal_floor,
                "next_fileno": self._next_fileno,
                "segments": [fileno for fileno, _ in self._seg_files],
                "cutoffs": {sid.hex(): c for sid, c in self._cutoffs.items()},
            },
        )

    # -- tiered compaction -------------------------------------------------

    def _ensure_compactor_locked(self) -> None:
        """Start the background worker on first demand — a node that
        never accumulates a backlog never pays for a parked thread."""
        thread = self._compact_thread
        if self._compact_stop or (thread is not None and thread.is_alive()):
            return
        thread = threading.Thread(
            target=self._compaction_loop,
            name=f"dcdb-compact-{self.name}",
            daemon=True,
        )
        self._compact_thread = thread
        thread.start()

    def _schedule_compaction_locked(self) -> None:
        """Seal-path hook: flag the backlog; never merge on this path
        in background mode (the insert p99 must not absorb a merge)."""
        if len(self._seg_files) <= self.max_segment_files:
            return
        if self.compaction == "inline":
            while len(self._seg_files) > self.max_segment_files:
                plan = self._plan_merge_locked()
                if plan is None:
                    return
                t0 = perf_counter()
                victims, fileno, now, cutoffs = plan
                stats = self._build_merge(victims, fileno, now, cutoffs)
                self._swap_merged_locked(victims, fileno, stats)
                self._m_compaction_seconds.observe(perf_counter() - t0)
                for fileno_old, sf in victims:
                    sf.close()
                    segment_path(self.data_dir, fileno_old).unlink(missing_ok=True)
        else:
            self._ensure_compactor_locked()
            self._compact_wake.set()

    def _plan_merge_locked(self):
        """Pick the cheapest contiguous run and reserve its output
        fileno — the only merge work that needs the node lock."""
        if len(self._seg_files) <= self.max_segment_files:
            return None
        run = min(self.compact_min_run, len(self._seg_files))
        # Manifest order == LWW order, so only contiguous runs may merge.
        best_at = min(
            range(len(self._seg_files) - run + 1),
            key=lambda i: sum(
                sf.size_bytes for _, sf in self._seg_files[i : i + run]
            ),
        )
        victims = list(self._seg_files[best_at : best_at + run])
        fileno = self._next_fileno
        self._next_fileno = fileno + 1
        return victims, fileno, self._clock(), dict(self._cutoffs)

    def _build_merge(self, victims, fileno, now, cutoffs):
        """Write the merged segment file.  Runs WITHOUT the node lock
        in background mode: victims are immutable and mmap reads are
        thread-safe, so queries and inserts proceed concurrently."""
        run_sids = sorted({sid for _, sf in victims for sid in sf.sids()})

        def sensors() -> Iterator[tuple[SensorId, np.ndarray, np.ndarray, np.ndarray]]:
            for sid in run_sids:
                parts = [sf.read(sid) for _, sf in victims if sid in sf]
                ts, vals, exp = (
                    parts[0] if len(parts) == 1 else _merge_lww(parts, now=None)
                )
                cutoff = cutoffs.get(sid)
                live = exp > now
                if cutoff is not None:
                    live &= ts >= cutoff
                if not live.all():
                    ts, vals, exp = ts[live], vals[live], exp[live]
                yield sid, ts, vals, exp

        return write_segment(
            segment_path(self.data_dir, fileno), sensors(), disk=self._disk
        )

    def _swap_merged_locked(self, victims, fileno, stats) -> None:
        """Short critical section: splice the merged file into the
        manifest order, rebuild affected disk refs, drop stale cache
        entries, persist the manifest (WAL floor unchanged)."""
        new_sf = SegmentFile(stats.path, disk=self._disk) if stats is not None else None
        victim_ids = {id(sf) for _, sf in victims}
        positions = [
            i for i, (_, sf) in enumerate(self._seg_files) if id(sf) in victim_ids
        ]
        at = positions[0]
        merged = [(fileno, new_sf)] if new_sf is not None else []
        self._seg_files[at : at + len(victims)] = merged
        affected = {sid for _, sf in victims for sid in sf.sids()}
        for sid in affected:
            refs = self._disk_refs.get(sid)
            if not refs:
                continue
            # The merged file serves a sensor's reads iff any of its
            # victims did; it takes the first victim's LWW position.
            placed = new_sf is None or sid not in new_sf
            out: list[SegmentFile] = []
            for sf in refs:
                if id(sf) in victim_ids:
                    if not placed:
                        out.append(new_sf)
                        placed = True
                else:
                    out.append(sf)
            if out:
                self._disk_refs[sid] = out
            else:
                self._disk_refs.pop(sid, None)
        for _, sf in victims:
            self._block_cache.invalidate_file(sf.path.name)
        if stats is not None:
            self._raw_bytes += stats.raw_bytes
            self._encoded_bytes += stats.file_bytes
            self._m_seg_written.inc()
        self._m_seg_compactions.inc()
        self._m_compaction_runs.inc()
        self._write_manifest_locked()

    def _compact_once(self) -> bool:
        """One background merge: plan under the lock, build outside it,
        swap under it, unlink victims outside it."""
        with self._compact_mutex:
            t0 = perf_counter()
            with self._lock:
                if self._closed:
                    return False
                plan = self._plan_merge_locked()
            if plan is None:
                return False
            victims, fileno, now, cutoffs = plan
            stats = self._build_merge(victims, fileno, now, cutoffs)
            with self._lock:
                if self._closed:
                    if stats is not None:
                        segment_path(self.data_dir, fileno).unlink(missing_ok=True)
                    return False
                self._swap_merged_locked(victims, fileno, stats)
            self._m_compaction_seconds.observe(perf_counter() - t0)
            # Unlink outside the node lock but still inside the merge
            # mutex: "mutex free + backlog clear" then means fully
            # done, victims gone — what wait_for_compaction promises.
            for fileno_old, sf in victims:
                sf.close()
                segment_path(self.data_dir, fileno_old).unlink(missing_ok=True)
        return True

    def _compaction_loop(self) -> None:
        while True:
            self._compact_wake.wait()
            self._compact_wake.clear()
            if self._compact_stop:
                return
            while not self._compact_stop:
                wait_s = self.compact_min_interval_s - (monotonic() - self._last_merge_at)
                if wait_s > 0:
                    sleep(min(wait_s, 0.05))
                    continue
                try:
                    if not self._compact_once():
                        break
                except (OSError, StorageError):
                    # Victims are untouched; a torn merge output is an
                    # unlisted orphan the next recovery sweeps away.
                    self._m_seg_errors.inc()
                    break
                self._last_merge_at = monotonic()

    def wait_for_compaction(self, timeout_s: float = 30.0) -> bool:
        """Block until the tiered backlog drains; True when it has.

        Deterministic tests and admin tooling use this to observe the
        post-merge file count; the ingest path never waits.
        """
        deadline = monotonic() + timeout_s
        while True:
            with self._lock:
                backlog = len(self._seg_files) > self.max_segment_files
                if backlog and self.compaction == "background":
                    self._ensure_compactor_locked()
            if not backlog:
                # An in-flight merge may still be closing/unlinking its
                # victims; passing through the mutex waits that out.
                with self._compact_mutex:
                    return True
            thread = self._compact_thread
            if (
                self.compaction != "background"
                or thread is None
                or not thread.is_alive()
            ):
                return False
            if monotonic() >= deadline:
                return False
            self._compact_wake.set()
            sleep(0.002)

    def compact(self) -> None:
        """Full merge: every disk file and in-memory segment collapses
        into (at most) one segment file, TTL/retention applied; reads
        then serve it through the block cache — the whole store is
        never materialized in memory at once."""
        with self._compact_mutex:
            with self._lock:
                self._flush_locked()
                if self._unsealed:
                    # The seal failed (disk fault): those rows exist
                    # only in memory + WAL, so a disk-image rewrite
                    # here could lose them.  Leave the store as-is;
                    # the next successful seal retries.
                    return
                victims = list(self._seg_files)
                if not victims:
                    super().compact()
                    return
                now = self._clock()
                fileno = self._next_fileno
                self._next_fileno = fileno + 1
                stats = self._build_merge(victims, fileno, now, dict(self._cutoffs))
                self._seg_files = []
                self._disk_refs = {}
                if stats is not None:
                    new_sf = SegmentFile(stats.path, disk=self._disk)
                    self._seg_files = [(fileno, new_sf)]
                    self._disk_refs = {sid: [new_sf] for sid in new_sf.sids()}
                    self._raw_bytes += stats.raw_bytes
                    self._encoded_bytes += stats.file_bytes
                    self._m_seg_written.inc()
                # Everything sealed this lifetime now lives in the
                # merged file: drop the duplicate in-memory segments so
                # a long-running node's resident set shrinks to the
                # memtable plus the cache budget.
                for data in self._data.values():
                    data.segments = []
                self._block_cache.clear()
                self._compactions.inc()
                self._checkpoint_locked()
                for fileno_old, sf in victims:
                    sf.close()
                    segment_path(self.data_dir, fileno_old).unlink(missing_ok=True)

    # -- read path ---------------------------------------------------------

    def _disk_block_locked(self, sid: SensorId, seg_file: SegmentFile) -> _Segment:
        """One sensor's block of one segment file, decoded through the
        bounded LRU cache with the current retention cutoff applied.
        Cached arrays are read-only; queries hand out views of them."""
        key = seg_file.path.name
        block = self._block_cache.get(key, sid)
        if block is not None:
            return block
        ts, vals, exp = seg_file.read(sid)
        cutoff = self._cutoffs.get(sid)
        if cutoff is not None:
            keep = ts >= cutoff
            if not keep.all():
                ts, vals, exp = ts[keep], vals[keep], exp[keep]
        for arr in (ts, vals, exp):
            arr.setflags(write=False)
        block = _Segment(ts, vals, exp)
        self._block_cache.put(key, sid, block)
        return block

    def _stage_locked(self, sid: SensorId, data: _SensorData, start: int, end: int):
        """Stage footer-pruned disk blocks ahead of the in-memory
        sources.  Only blocks whose ``[min_ts, max_ts]`` overlaps the
        window are decoded (through the cache); the rest count toward
        ``dcdb_segment_blocks_pruned_total`` without being touched."""
        segments, mem, pruned = super()._stage_locked(sid, data, start, end)
        refs = self._disk_refs.get(sid)
        if refs:
            disk_segments: list[_Segment] = []
            blocks_pruned = 0
            for seg_file in refs:
                min_ts, max_ts = seg_file.bounds_for(sid)
                if max_ts < start or min_ts > end:
                    blocks_pruned += 1
                    continue
                block = self._disk_block_locked(sid, seg_file)
                if block.size:
                    disk_segments.append(block)
            if blocks_pruned:
                self._m_blocks_pruned.inc(blocks_pruned)
            if disk_segments:
                # Disk blocks predate everything sealed this process
                # lifetime: stage them first so the LWW merge keeps
                # newer writes winning.
                segments = disk_segments + segments
        return segments, mem, pruned

    @property
    def row_count(self) -> int:
        """Total stored rows, pre-TTL/pre-retention.

        Disk blocks are counted from the segment footer index instead
        of being decoded: the base class exports these counts as
        gauges, and a /metrics scrape must not decode the whole store.
        Rows present both on disk and in a this-lifetime memtable seal
        (possible right after recovery or a tiered merge) may be
        counted twice — this is an operational gauge, not an exact
        cardinality.  (``getattr``: the base gauge can be scraped via a
        shared registry before ``_disk_refs`` exists.)
        """
        with self._lock:
            refs_map = getattr(self, "_disk_refs", None) or {}
            disk_rows = sum(
                seg_file.rows_for(sid)
                for sid, refs in refs_map.items()
                for seg_file in refs
            )
            return super().row_count + disk_rows

    @property
    def segment_count(self) -> int:
        with self._lock:
            refs_map = getattr(self, "_disk_refs", None) or {}
            return super().segment_count + sum(len(refs) for refs in refs_map.values())

    # -- fingerprint / lifecycle -------------------------------------------

    def state_fingerprint(self) -> str:
        """Deterministic digest of all queryable state.

        Two nodes answering every query identically produce the same
        fingerprint — the chaos battery's bit-identical recovery check.
        """
        import hashlib

        digest = hashlib.sha256()
        for sid in self.sids():
            ts, vals = self.query(sid, 0, (1 << 63) - 1)
            digest.update(sid.hex().encode())
            digest.update(ts.tobytes())
            digest.update(vals.tobytes())
        for key in self.metadata_keys():
            digest.update(key.encode("utf-8"))
            digest.update((self.get_metadata(key) or "").encode("utf-8"))
        return digest.hexdigest()

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def segment_file_count(self) -> int:
        with self._lock:
            return len(self._seg_files)

    def close(self) -> None:
        """Sync and release files. The memtable is NOT sealed: reopening
        replays the WAL, which is exactly the path worth exercising."""
        # Stop the compaction worker before taking the node lock: a
        # merge in flight finishes (or aborts at its closed-check) and
        # the thread parks, so no merge can race the file teardown.
        self._compact_stop = True
        self._compact_wake.set()
        thread = self._compact_thread
        if (
            thread is not None
            and thread.is_alive()
            and thread is not threading.current_thread()
        ):
            thread.join(timeout=30.0)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wal.close()
            for _, sf in self._seg_files:
                sf.close()
            self._block_cache.clear()


class DurableBackend(StorageBackend):
    """Single-node durable :class:`StorageBackend` over a data directory.

    The file-backed sibling of :class:`~repro.storage.memory.MemoryBackend`:
    same contract (the suite in ``tests/storage/test_backends_contract.py``
    runs against it, including a reopen-between-write-and-read variant),
    plus ``commit_durable()`` — the group-commit barrier the batching
    writer invokes before acknowledging a batch.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        name: str = "durable0",
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        flush_threshold: int = 100_000,
        max_segment_files: int = 8,
        compact_min_run: int = 4,
        compaction: str = "background",
        compact_min_interval_s: float = 0.0,
        block_cache_bytes: int = 64 * 1024 * 1024,
        clock=None,
        metrics: MetricsRegistry | None = None,
        disk=None,
    ) -> None:
        self.node = DurableNode(
            name=name,
            data_dir=data_dir,
            fsync=fsync,
            fsync_interval_s=fsync_interval_s,
            flush_threshold=flush_threshold,
            max_segment_files=max_segment_files,
            compact_min_run=compact_min_run,
            compaction=compaction,
            compact_min_interval_s=compact_min_interval_s,
            block_cache_bytes=block_cache_bytes,
            clock=clock,
            metrics=metrics,
            disk=disk,
        )

    # -- data plane --------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        self.node.insert(sid, timestamp, value, ttl_s)

    def insert_batch(self, items: Iterable[InsertItem]) -> int:
        return self.node.insert_batch(items)

    def commit_durable(self) -> bool:
        return self.node.commit_durable()

    def query(self, sid: SensorId, start: int, end: int):
        return self.node.query(sid, start, end)

    def query_many(self, sids, start: int, end: int):
        return self.node.query_many(sids, start, end)

    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        keep_bits = SID_BITS_PER_LEVEL * levels
        mask = (
            ((1 << keep_bits) - 1) << (SID_LEVELS * SID_BITS_PER_LEVEL - keep_bits)
            if keep_bits
            else 0
        )
        candidates = [sid for sid in self.node.sids() if (sid.value & mask) == prefix]
        results = self.node.query_many(candidates, start, end)
        for sid in candidates:
            ts, vals = results[sid]
            if ts.size:
                yield sid, ts, vals

    def sids(self) -> list[SensorId]:
        return self.node.sids()

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        return self.node.delete_before(sid, cutoff)

    # -- metadata plane ----------------------------------------------------

    def put_metadata(self, key: str, value: str) -> None:
        self.node.put_metadata(key, value)

    def get_metadata(self, key: str) -> str | None:
        return self.node.get_metadata(key)

    def metadata_keys(self, prefix: str = "") -> list[str]:
        return self.node.metadata_keys(prefix)

    # -- maintenance -------------------------------------------------------

    def compact(self) -> None:
        self.node.compact()

    def flush(self) -> None:
        self.node.flush()

    def close(self) -> None:
        self.node.close()

    # -- observability -----------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        return self.node.metrics

    def metrics_registries(self) -> list[MetricsRegistry]:
        return [self.node.metrics]

    @property
    def recovery_info(self) -> dict:
        return self.node.recovery_info

    def state_fingerprint(self) -> str:
        return self.node.state_fingerprint()


# Re-exported for introspection/tooling convenience.
FSYNC_POLICIES = walmod.FSYNC_POLICIES
