"""The durable storage node: WAL + compressed segments + recovery.

:class:`DurableNode` extends the in-memory
:class:`~repro.storage.node.StorageNode` with the persistence shape
the paper gets from Cassandra (section 4.3) and the COMPASS CDB paper
describes explicitly: every accepted mutation is framed into a
write-ahead log *before* it touches the memtable, memtable seals write
immutable compressed segment files (see :mod:`.segment`), and the WAL
only truncates once a seal's checkpoint makes the manifest point past
it — ack-driven trimming, the lsst-dm buffer-manager discipline.

On-disk layout of one node directory::

    manifest.json    ordered segment list (= LWW order), WAL floor,
                     next file number, per-sensor retention cutoffs
    metadata.json    the metadata table image as of the last checkpoint
    wal-XXXXXXXX.log active + not-yet-checkpointed WAL files
    seg-XXXXXXXX.seg immutable columnar segments

Crash recovery (constructor): sweep orphan ``*.tmp`` files, open the
manifest's segments (read lazily per sensor on first access), load the
metadata image, then replay every WAL file at or above the manifest
floor into the memtable.  Replay is idempotent under the flush-time
last-write-wins invariant, so a WAL that overlaps sealed segments —
the normal state after a crash between seal and checkpoint — double
applies harmlessly.  A torn tail or corrupt CRC stops that file's scan
at the last valid record and recovery continues; it never refuses to
start.  Recovery ends with a seal + checkpoint, leaving a clean log.

Ordering invariant the reads rely on: disk segments always hold data
*older* than anything sealed after recovery, so lazily loaded blocks
are **prepended** to the in-memory segment list and tiered compaction
merges only runs that are contiguous in manifest order — both keep the
last-write-wins merge of the base class correct.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import StorageError
from repro.core.sid import SID_BITS_PER_LEVEL, SID_LEVELS, SensorId
from repro.observability import MetricsRegistry
from repro.storage.backend import InsertItem, StorageBackend
from repro.storage.node import StorageNode, _Segment, _SensorData

from . import wal as walmod
from .segment import SegmentFile, segment_path, write_segment
from .wal import CUTOFF, DATA, META, WriteAheadLog, scan_wal_file, wal_path

__all__ = ["DurableBackend", "DurableNode"]

_MANIFEST_FORMAT = 1
_M64 = (1 << 64) - 1
_EMPTY = np.empty(0, dtype=np.int64)


def _encode_data(items: list[InsertItem]) -> bytes:
    """Frame an insert batch as a DATA payload (columnar, fixed-width)."""
    n = len(items)
    cols = np.empty((5, n), dtype=np.uint64)
    for i, (sid, ts, value, ttl) in enumerate(items):
        cols[0, i] = sid.value >> 64
        cols[1, i] = sid.value & _M64
        cols[2, i] = ts & _M64
        cols[3, i] = value & _M64
        cols[4, i] = ttl & _M64
    return struct.pack("<I", n) + cols.tobytes()


def _decode_data(payload: bytes) -> list[InsertItem]:
    (n,) = struct.unpack_from("<I", payload)
    cols = np.frombuffer(payload, dtype=np.uint64, offset=4).reshape(5, n)
    signed = cols[2:].view(np.int64)
    return [
        (
            SensorId((int(cols[0, i]) << 64) | int(cols[1, i])),
            int(signed[0, i]),
            int(signed[1, i]),
            int(signed[2, i]),
        )
        for i in range(n)
    ]


def _encode_meta(key: str, value: str) -> bytes:
    kb = key.encode("utf-8")
    return struct.pack("<I", len(kb)) + kb + value.encode("utf-8")


def _decode_meta(payload: bytes) -> tuple[str, str]:
    (klen,) = struct.unpack_from("<I", payload)
    return (
        payload[4 : 4 + klen].decode("utf-8"),
        payload[4 + klen :].decode("utf-8"),
    )


def _encode_cutoff(sid: SensorId, cutoff: int) -> bytes:
    return struct.pack("<QQq", sid.value >> 64, sid.value & _M64, cutoff)


def _decode_cutoff(payload: bytes) -> tuple[SensorId, int]:
    hi, lo, cutoff = struct.unpack("<QQq", payload)
    return SensorId((hi << 64) | lo), cutoff


def _merge_lww(
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]], now: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate (older parts first), stable-sort, keep last per ts.

    The flush-time dedup invariant: a stable sort preserves part order
    within equal timestamps, so keeping the final occurrence keeps the
    *newest* write.  ``now`` additionally drops expired rows.
    """
    ts = np.concatenate([p[0] for p in parts])
    vals = np.concatenate([p[1] for p in parts])
    exp = np.concatenate([p[2] for p in parts])
    if now is not None:
        live = exp > now
        if not live.all():
            ts, vals, exp = ts[live], vals[live], exp[live]
    order = np.argsort(ts, kind="stable")
    ts, vals, exp = ts[order], vals[order], exp[order]
    if ts.size > 1:
        keep = np.empty(ts.size, dtype=bool)
        keep[:-1] = ts[1:] != ts[:-1]
        keep[-1] = True
        if not keep.all():
            ts, vals, exp = ts[keep], vals[keep], exp[keep]
    return ts, vals, exp


def _atomic_json(path: Path, doc: dict) -> None:
    tmp = path.with_suffix(".tmp")
    data = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class DurableNode(StorageNode):
    """A :class:`StorageNode` whose state survives ``kill -9``.

    Parameters beyond the base class:

    data_dir:
        Directory owning this node's WAL and segment files (created if
        missing; recovery runs immediately if it holds prior state).
    fsync / fsync_interval_s:
        WAL sync policy — see :class:`~repro.storage.durable.wal.WriteAheadLog`.
    max_segment_files:
        Tiered compaction triggers when the manifest lists more files.
    compact_min_run:
        Smallest contiguous run of files one merge consumes.
    disk:
        Optional :class:`~repro.faults.disk.DiskFaultInjector` seam.
    """

    def __init__(
        self,
        name: str = "node0",
        data_dir: str | Path = "dcdb-data",
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        max_segment_files: int = 8,
        compact_min_run: int = 4,
        disk=None,
        flush_threshold: int = 100_000,
        max_segments_per_sensor: int = 8,
        clock=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(
            name=name,
            flush_threshold=flush_threshold,
            max_segments_per_sensor=max_segments_per_sensor,
            clock=clock,
            metrics=metrics,
        )
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.max_segment_files = max_segment_files
        self.compact_min_run = max(2, compact_min_run)
        self._disk = disk
        #: Ordered (fileno, SegmentFile) — manifest order == LWW order.
        self._seg_files: list[tuple[int, SegmentFile]] = []
        #: Per-sensor disk blocks not yet decoded into memory, in LWW order.
        self._lazy: dict[SensorId, list[SegmentFile]] = {}
        #: Frozen segments a failed seal left unpersisted (still WAL-covered).
        self._unsealed: dict[SensorId, list[_Segment]] = {}
        self._cutoffs: dict[SensorId, int] = {}
        self._next_fileno = 1
        self._replaying = False
        self._closed = False
        self._raw_bytes = 0
        self._encoded_bytes = 0

        label = {"node": name}
        self._m_wal_appends = self.metrics.counter(
            "dcdb_wal_appends_total", "Records framed into the write-ahead log", ("node",)
        ).labels(**label)
        self._m_wal_bytes = self.metrics.counter(
            "dcdb_wal_bytes_total", "Bytes appended to the write-ahead log", ("node",)
        ).labels(**label)
        self._m_wal_syncs = self.metrics.counter(
            "dcdb_wal_syncs_total", "fsync calls the WAL commit policy issued", ("node",)
        ).labels(**label)
        self._m_wal_rotations = self.metrics.counter(
            "dcdb_wal_rotations_total", "WAL file rotations at memtable seal", ("node",)
        ).labels(**label)
        self._m_wal_replayed = self.metrics.counter(
            "dcdb_wal_replayed_records_total",
            "WAL records re-applied during crash recovery",
            ("node",),
        ).labels(**label)
        self._m_seg_written = self.metrics.counter(
            "dcdb_segment_files_written_total", "Segment files written (seals + merges)", ("node",)
        ).labels(**label)
        self._m_seg_compactions = self.metrics.counter(
            "dcdb_segment_compactions_total", "Tiered merges of on-disk segment runs", ("node",)
        ).labels(**label)
        self._m_seg_errors = self.metrics.counter(
            "dcdb_segment_write_errors_total",
            "Failed segment writes (data stays WAL-covered)",
            ("node",),
        ).labels(**label)
        # The WAL object only exists once _recover() creates it; with a
        # shared registry a scrape can race a long recovery, so the
        # gauge must tolerate the not-yet-open state.
        self.metrics.gauge(
            "dcdb_wal_size_bytes", "Bytes in the active WAL file", ("node",)
        ).labels(**label).set_function(
            lambda: wal.size_bytes if (wal := getattr(self, "_wal", None)) else 0
        )
        self.metrics.gauge(
            "dcdb_segment_files", "Segment files in the manifest", ("node",)
        ).labels(**label).set_function(lambda: len(self._seg_files))
        self.metrics.gauge(
            "dcdb_segment_disk_bytes", "Total size of segment files", ("node",)
        ).labels(**label).set_function(
            lambda: sum(sf.size_bytes for _, sf in self._seg_files)
        )
        self.metrics.gauge(
            "dcdb_segment_compression_ratio",
            "Cumulative raw-to-encoded byte ratio of segment writes",
            ("node",),
        ).labels(**label).set_function(
            lambda: (self._raw_bytes / self._encoded_bytes) if self._encoded_bytes else 0.0
        )

        self.recovery_info: dict = {}
        self._recover(fsync, fsync_interval_s)

    # -- recovery ---------------------------------------------------------

    def _recover(self, fsync: str, fsync_interval_s: float) -> None:
        info: dict = {
            "segments_loaded": 0,
            "segments_dropped": [],
            "orphans_removed": 0,
            "wal_files_scanned": 0,
            "wal_records_replayed": 0,
            "wal_truncations": [],
            "unrecognized_files": [],
        }
        for orphan in self.data_dir.glob("*.tmp"):
            orphan.unlink(missing_ok=True)
            info["orphans_removed"] += 1

        manifest = {"wal_floor": 1, "next_fileno": 1, "segments": [], "cutoffs": {}}
        manifest_path = self.data_dir / "manifest.json"
        if manifest_path.is_file():
            loaded = json.loads(manifest_path.read_text(encoding="utf-8"))
            if loaded.get("format") != _MANIFEST_FORMAT:
                raise StorageError(
                    f"{self.name}: unsupported manifest format {loaded.get('format')}"
                )
            manifest.update(loaded)
        self._next_fileno = int(manifest["next_fileno"])
        self._cutoffs = {
            SensorId.from_hex(hexsid): int(cutoff)
            for hexsid, cutoff in manifest["cutoffs"].items()
        }

        listed = [int(fn) for fn in manifest["segments"]]
        for fileno in listed:
            path = segment_path(self.data_dir, fileno)
            try:
                seg_file = SegmentFile(path, disk=self._disk)
            except (OSError, StorageError) as exc:
                # The data is either in a newer merge output or still in
                # the WAL — never silently half-present in a bad file.
                info["segments_dropped"].append(f"{path.name}: {exc}")
                continue
            self._seg_files.append((fileno, seg_file))
            info["segments_loaded"] += 1
            for sid in seg_file.sids():
                self._lazy.setdefault(sid, []).append(seg_file)
                if sid not in self._data:
                    self._data[sid] = _SensorData()
                    self._sids_cache = None
        # A segment file the manifest does not list is an orphan from a
        # crash between seal and checkpoint: its rows are still in the WAL.
        for path in self.data_dir.glob("seg-*.seg"):
            try:
                fileno = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                # A stray file (editor backup, hand-named copy) must not
                # abort recovery — leave it alone and report it.
                info["unrecognized_files"].append(path.name)
                continue
            if fileno not in listed:
                path.unlink(missing_ok=True)
                info["orphans_removed"] += 1

        meta_path = self.data_dir / "metadata.json"
        if meta_path.is_file():
            doc = json.loads(meta_path.read_text(encoding="utf-8"))
            self._metadata.update(doc.get("metadata", {}))

        floor = int(manifest["wal_floor"])
        wal_seqs = []
        for path in self.data_dir.glob("wal-*.log"):
            try:
                seq = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                info["unrecognized_files"].append(path.name)
                continue
            if seq >= floor:
                wal_seqs.append(seq)
        wal_seqs.sort()
        records: list = []
        for seq in wal_seqs:
            scan = scan_wal_file(wal_path(self.data_dir, seq), seq, disk=self._disk)
            info["wal_files_scanned"] += 1
            records.extend(scan.records)
            if scan.truncated_reason is not None:
                info["wal_truncations"].append(
                    f"wal-{seq:08d}.log: {scan.truncated_reason}"
                )
        # Append always goes to a fresh file: a torn tail in the latest
        # file must never get live records written after it.
        active_seq = max(wal_seqs[-1] + 1 if wal_seqs else 0, floor, 1)
        for seq in wal_seqs:
            path = wal_path(self.data_dir, seq)
            if path.stat().st_size == 0:
                path.unlink(missing_ok=True)
        self._wal = WriteAheadLog(
            self.data_dir,
            active_seq,
            fsync=fsync,
            fsync_interval_s=fsync_interval_s,
            disk=self._disk,
        )

        self._replaying = True
        try:
            for record in records:
                if record.rtype == DATA:
                    self.insert_batch(_decode_data(record.payload))
                elif record.rtype == META:
                    key, value = _decode_meta(record.payload)
                    self.put_metadata(key, value)
                elif record.rtype == CUTOFF:
                    sid, cutoff = _decode_cutoff(record.payload)
                    self.delete_before(sid, cutoff)
                info["wal_records_replayed"] += 1
        finally:
            self._replaying = False
        self._m_wal_replayed.inc(info["wal_records_replayed"])

        if records:
            # Seal + checkpoint: every replayed row — including any a
            # mid-replay memtable flush froze into self._unsealed —
            # lands in a segment, the manifest floor moves past the
            # scanned files and they are deleted; recovery converges
            # to a clean log.
            with self._lock:
                self._flush_locked()
                if self._unsealed:
                    # The memtable emptied exactly on a mid-replay
                    # seal, so _flush_locked froze nothing and never
                    # reached _sealed: persist explicitly.  On failure
                    # the WAL stays un-truncated, so nothing is lost.
                    try:
                        self._persist_unsealed_locked()
                    except (OSError, StorageError):
                        self._m_seg_errors.inc()
        self.recovery_info = info

    # -- write path -------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        self.insert_batch([(sid, timestamp, value, ttl_s)])

    def insert_batch(self, items) -> int:
        if not isinstance(items, list):
            items = list(items)
        if not items:
            return 0
        with self._lock:
            if not self._replaying:
                nbytes = self._wal.append(DATA, _encode_data(items))
                self._m_wal_appends.inc()
                self._m_wal_bytes.inc(nbytes)
            count = super().insert_batch(items)
            if not self._replaying:
                self._commit_locked()
        return count

    def commit_durable(self) -> bool:
        """Group-commit barrier: apply the fsync policy to pending bytes.

        The batching writer calls this once per flushed batch before
        acknowledging, so under ``fsync=always`` one fsync covers the
        whole batch and an acknowledged reading can never be lost.
        """
        with self._lock:
            return self._commit_locked()

    def _commit_locked(self) -> bool:
        try:
            synced = self._wal.commit()
        except OSError as exc:
            raise StorageError(f"{self.name}: WAL fsync failed: {exc}") from exc
        if synced:
            self._m_wal_syncs.inc()
        return synced

    def put_metadata(self, key: str, value: str) -> None:
        with self._lock:
            if not self._replaying:
                nbytes = self._wal.append(META, _encode_meta(key, value))
                self._m_wal_appends.inc()
                self._m_wal_bytes.inc(nbytes)
            super().put_metadata(key, value)
            if not self._replaying:
                self._commit_locked()

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        with self._lock:
            if not self._replaying:
                self._ensure_loaded(sid)
                nbytes = self._wal.append(CUTOFF, _encode_cutoff(sid, cutoff))
                self._m_wal_appends.inc()
                self._m_wal_bytes.inc(nbytes)
            removed = super().delete_before(sid, cutoff)
            if cutoff > self._cutoffs.get(sid, -(1 << 63)):
                self._cutoffs[sid] = cutoff
            if not self._replaying:
                self._commit_locked()
        return removed

    # -- seal / checkpoint -------------------------------------------------

    def _sealed(self, frozen: dict[SensorId, _Segment]) -> None:
        for sid, segment in frozen.items():
            self._unsealed.setdefault(sid, []).append(segment)
        if self._replaying:
            # A mid-replay seal only accumulates: its rows' sole durable
            # copy is the WAL being replayed, which the recovery-ending
            # checkpoint truncates — so the recovery-ending persist must
            # merge every frozen segment into the disk image first.
            return
        try:
            self._persist_unsealed_locked()
        except (OSError, StorageError):
            # The rows stay in memory AND in the un-rotated WAL, so
            # nothing acknowledged is lost; the next seal retries.
            self._m_seg_errors.inc()

    def _persist_unsealed_locked(self) -> None:
        def sensors() -> Iterator[tuple[SensorId, np.ndarray, np.ndarray, np.ndarray]]:
            for sid in sorted(self._unsealed):
                segments = self._unsealed[sid]
                if len(segments) == 1:
                    seg = segments[0]
                    yield sid, seg.timestamps, seg.values, seg.expiries
                else:
                    yield sid, *_merge_lww(
                        [(s.timestamps, s.values, s.expiries) for s in segments]
                    )

        fileno = self._next_fileno
        stats = write_segment(
            segment_path(self.data_dir, fileno), sensors(), disk=self._disk
        )
        if stats is None:
            self._unsealed.clear()
            return
        self._next_fileno = fileno + 1
        self._seg_files.append((fileno, SegmentFile(stats.path, disk=self._disk)))
        self._unsealed.clear()
        self._raw_bytes += stats.raw_bytes
        self._encoded_bytes += stats.file_bytes
        self._m_seg_written.inc()
        self._checkpoint_locked()
        self._maybe_compact_files_locked()

    def _checkpoint_locked(self) -> None:
        """Rotate the WAL, persist the manifest, trim sealed WAL files."""
        floor = self._wal.rotate()
        self._m_wal_rotations.inc()
        _atomic_json(
            self.data_dir / "metadata.json",
            {"format": _MANIFEST_FORMAT, "metadata": dict(self._metadata)},
        )
        _atomic_json(
            self.data_dir / "manifest.json",
            {
                "format": _MANIFEST_FORMAT,
                "wal_floor": floor,
                "next_fileno": self._next_fileno,
                "segments": [fileno for fileno, _ in self._seg_files],
                "cutoffs": {sid.hex(): c for sid, c in self._cutoffs.items()},
            },
        )
        self._wal.delete_below(floor)

    # -- tiered compaction -------------------------------------------------

    def _maybe_compact_files_locked(self) -> None:
        while len(self._seg_files) > self.max_segment_files:
            run = min(self.compact_min_run, len(self._seg_files))
            # Pick the cheapest contiguous run (manifest order == LWW
            # order, so only contiguous runs may merge).
            best_at = min(
                range(len(self._seg_files) - run + 1),
                key=lambda i: sum(
                    sf.size_bytes for _, sf in self._seg_files[i : i + run]
                ),
            )
            self._merge_run_locked(best_at, run)

    def _merge_run_locked(self, at: int, run: int) -> None:
        victims = self._seg_files[at : at + run]
        run_sids = sorted({sid for _, sf in victims for sid in sf.sids()})
        # Force-load affected sensors first so lazy references never
        # point at a merged (deleted) file.
        for sid in run_sids:
            self._ensure_loaded(sid)
        now = self._clock()

        def sensors() -> Iterator[tuple[SensorId, np.ndarray, np.ndarray, np.ndarray]]:
            for sid in run_sids:
                parts = [sf.read(sid) for _, sf in victims if sid in sf]
                ts, vals, exp = (
                    parts[0] if len(parts) == 1 else _merge_lww(parts, now=None)
                )
                cutoff = self._cutoffs.get(sid)
                live = exp > now
                if cutoff is not None:
                    live &= ts >= cutoff
                if not live.all():
                    ts, vals, exp = ts[live], vals[live], exp[live]
                yield sid, ts, vals, exp

        fileno = self._next_fileno
        stats = write_segment(
            segment_path(self.data_dir, fileno), sensors(), disk=self._disk
        )
        self._next_fileno = fileno + 1
        merged: list[tuple[int, SegmentFile]] = []
        if stats is not None:
            merged.append((fileno, SegmentFile(stats.path, disk=self._disk)))
            self._raw_bytes += stats.raw_bytes
            self._encoded_bytes += stats.file_bytes
            self._m_seg_written.inc()
        self._seg_files[at : at + run] = merged
        self._m_seg_compactions.inc()
        self._checkpoint_locked()
        for fileno_old, sf in victims:
            sf.close()
            segment_path(self.data_dir, fileno_old).unlink(missing_ok=True)

    def compact(self) -> None:
        """Full merge: memory and disk both collapse to one image."""
        with self._lock:
            self._ensure_all_loaded()
            super().compact()
            victims = self._seg_files

            def sensors() -> Iterator[tuple[SensorId, np.ndarray, np.ndarray, np.ndarray]]:
                for sid in sorted(self._data):
                    segments = self._data[sid].segments
                    if not segments:
                        continue
                    seg = segments[0]
                    yield sid, seg.timestamps, seg.values, seg.expiries

            fileno = self._next_fileno
            stats = write_segment(
                segment_path(self.data_dir, fileno), sensors(), disk=self._disk
            )
            self._next_fileno = fileno + 1
            self._seg_files = []
            if stats is not None:
                self._seg_files = [(fileno, SegmentFile(stats.path, disk=self._disk))]
                self._raw_bytes += stats.raw_bytes
                self._encoded_bytes += stats.file_bytes
                self._m_seg_written.inc()
            self._checkpoint_locked()
            for fileno_old, sf in victims:
                sf.close()
                segment_path(self.data_dir, fileno_old).unlink(missing_ok=True)

    # -- lazy disk loads ---------------------------------------------------

    def _ensure_loaded(self, sid: SensorId) -> None:
        refs = self._lazy.pop(sid, None)
        if not refs:
            return
        cutoff = self._cutoffs.get(sid)
        decoded: list[_Segment] = []
        for seg_file in refs:
            ts, vals, exp = seg_file.read(sid)
            if cutoff is not None:
                keep = ts >= cutoff
                if not keep.all():
                    ts, vals, exp = ts[keep], vals[keep], exp[keep]
            if ts.size:
                decoded.append(_Segment(ts, vals, exp))
        data = self._data.get(sid)
        if data is None:
            data = self._data[sid] = _SensorData()
            self._sids_cache = None
        # Disk blocks predate everything sealed this process lifetime:
        # prepend so the LWW merge keeps newer writes winning.
        data.segments[:0] = decoded

    def _ensure_all_loaded(self) -> None:
        for sid in list(self._lazy):
            self._ensure_loaded(sid)

    # -- read path ---------------------------------------------------------

    def query(self, sid: SensorId, start: int, end: int):
        with self._lock:
            self._ensure_loaded(sid)
        return super().query(sid, start, end)

    def query_many(self, sids, start: int, end: int):
        if not isinstance(sids, (list, tuple)):
            sids = list(sids)
        with self._lock:
            for sid in sids:
                self._ensure_loaded(sid)
        return super().query_many(sids, start, end)

    @property
    def row_count(self) -> int:
        """Total stored rows, pre-TTL/pre-retention.

        Lazily-referenced disk blocks are counted from the segment
        footer index instead of being decoded: the base class exports
        these counts as gauges, and a /metrics scrape must not
        materialize the whole store.  (``getattr``: the base gauge can
        be scraped via a shared registry before ``_lazy`` exists.)
        """
        with self._lock:
            lazy = getattr(self, "_lazy", None) or {}
            lazy_rows = sum(
                seg_file.rows_for(sid)
                for sid, refs in lazy.items()
                for seg_file in refs
            )
            return super().row_count + lazy_rows

    @property
    def segment_count(self) -> int:
        with self._lock:
            lazy = getattr(self, "_lazy", None) or {}
            return super().segment_count + sum(len(refs) for refs in lazy.values())

    # -- fingerprint / lifecycle -------------------------------------------

    def state_fingerprint(self) -> str:
        """Deterministic digest of all queryable state.

        Two nodes answering every query identically produce the same
        fingerprint — the chaos battery's bit-identical recovery check.
        """
        import hashlib

        digest = hashlib.sha256()
        for sid in self.sids():
            ts, vals = self.query(sid, 0, (1 << 63) - 1)
            digest.update(sid.hex().encode())
            digest.update(ts.tobytes())
            digest.update(vals.tobytes())
        for key in self.metadata_keys():
            digest.update(key.encode("utf-8"))
            digest.update((self.get_metadata(key) or "").encode("utf-8"))
        return digest.hexdigest()

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def segment_file_count(self) -> int:
        with self._lock:
            return len(self._seg_files)

    def close(self) -> None:
        """Sync and release files. The memtable is NOT sealed: reopening
        replays the WAL, which is exactly the path worth exercising."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wal.close()
            for _, sf in self._seg_files:
                sf.close()


class DurableBackend(StorageBackend):
    """Single-node durable :class:`StorageBackend` over a data directory.

    The file-backed sibling of :class:`~repro.storage.memory.MemoryBackend`:
    same contract (the suite in ``tests/storage/test_backends_contract.py``
    runs against it, including a reopen-between-write-and-read variant),
    plus ``commit_durable()`` — the group-commit barrier the batching
    writer invokes before acknowledging a batch.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        name: str = "durable0",
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        flush_threshold: int = 100_000,
        max_segment_files: int = 8,
        clock=None,
        metrics: MetricsRegistry | None = None,
        disk=None,
    ) -> None:
        self.node = DurableNode(
            name=name,
            data_dir=data_dir,
            fsync=fsync,
            fsync_interval_s=fsync_interval_s,
            flush_threshold=flush_threshold,
            max_segment_files=max_segment_files,
            clock=clock,
            metrics=metrics,
            disk=disk,
        )

    # -- data plane --------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        self.node.insert(sid, timestamp, value, ttl_s)

    def insert_batch(self, items: Iterable[InsertItem]) -> int:
        return self.node.insert_batch(items)

    def commit_durable(self) -> bool:
        return self.node.commit_durable()

    def query(self, sid: SensorId, start: int, end: int):
        return self.node.query(sid, start, end)

    def query_many(self, sids, start: int, end: int):
        return self.node.query_many(sids, start, end)

    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        keep_bits = SID_BITS_PER_LEVEL * levels
        mask = (
            ((1 << keep_bits) - 1) << (SID_LEVELS * SID_BITS_PER_LEVEL - keep_bits)
            if keep_bits
            else 0
        )
        candidates = [sid for sid in self.node.sids() if (sid.value & mask) == prefix]
        results = self.node.query_many(candidates, start, end)
        for sid in candidates:
            ts, vals = results[sid]
            if ts.size:
                yield sid, ts, vals

    def sids(self) -> list[SensorId]:
        return self.node.sids()

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        return self.node.delete_before(sid, cutoff)

    # -- metadata plane ----------------------------------------------------

    def put_metadata(self, key: str, value: str) -> None:
        self.node.put_metadata(key, value)

    def get_metadata(self, key: str) -> str | None:
        return self.node.get_metadata(key)

    def metadata_keys(self, prefix: str = "") -> list[str]:
        return self.node.metadata_keys(prefix)

    # -- maintenance -------------------------------------------------------

    def compact(self) -> None:
        self.node.compact()

    def flush(self) -> None:
        self.node.flush()

    def close(self) -> None:
        self.node.close()

    # -- observability -----------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        return self.node.metrics

    def metrics_registries(self) -> list[MetricsRegistry]:
        return [self.node.metrics]

    @property
    def recovery_info(self) -> dict:
        return self.node.recovery_info

    def state_fingerprint(self) -> str:
        return self.node.state_fingerprint()


# Re-exported for introspection/tooling convenience.
FSYNC_POLICIES = walmod.FSYNC_POLICIES
