"""Immutable on-disk columnar segment files.

A segment file is the durable image of one memtable seal (or one
compaction merge): for every sensor it stores three compressed column
blocks — timestamps (delta-of-delta), values (Gorilla XOR), TTL
expiries (delta-of-delta; almost always the constant "never", costing
about one bit per row) — followed by a footer index and a fixed-size
tail, so a reader finds the footer without scanning::

    +--------------------------------------------------+
    | header: magic "DSEG", version u16, reserved u16  |
    | sensor block 0: ts bits | value bits | exp bits  |
    | sensor block 1: ...                              |
    | footer: one entry per sensor                     |
    |   sid_hi u64, sid_lo u64, offset u64, rows u32,  |
    |   ts_len u32, val_len u32, exp_len u32,          |
    |   min_ts i64, max_ts i64, block_crc u32          |
    | tail: footer_off u64, entries u32,               |
    |       footer_crc u32, magic u32                  |
    +--------------------------------------------------+

Files are written whole to a ``.tmp`` sibling, fsynced, then
``os.replace``d into place — a crash never leaves a half-visible
segment, only an orphan ``.tmp`` the next startup sweeps away.  Reads
go through ``mmap`` and decode straight from the mapped pages
(zero-copy until the bit-level decode), validating the per-sensor CRC
first so a corrupt block raises :class:`StorageError` instead of
returning garbage.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.common.errors import StorageError
from repro.core.sid import SensorId

from .codec import (
    decode_timestamps,
    decode_values,
    encode_timestamps,
    encode_values,
)

__all__ = ["SegmentFile", "SegmentWriteStats", "segment_path", "write_segment"]

_MAGIC = b"DSEG"
_TAIL_MAGIC = 0x44534547  # "DSEG" as u32
_VERSION = 1
_HEADER = struct.Struct("<4sHH")
_ENTRY = struct.Struct("<QQQIIIIqqI")
_TAIL = struct.Struct("<QIII")

#: Uncompressed cost of one reading in the memtable representation
#: (ts + value + expiry, int64 each) — the compression-ratio baseline.
RAW_BYTES_PER_ROW = 24


def segment_path(directory: Path, fileno: int) -> Path:
    return directory / f"seg-{fileno:08d}.seg"


class SegmentWriteStats:
    """What one :func:`write_segment` call put on disk."""

    __slots__ = ("path", "rows", "raw_bytes", "file_bytes", "sensors")

    def __init__(self, path: Path, rows: int, raw_bytes: int, file_bytes: int, sensors: int):
        self.path = path
        self.rows = rows
        self.raw_bytes = raw_bytes
        self.file_bytes = file_bytes
        self.sensors = sensors


def write_segment(path: Path, sensors, disk=None) -> SegmentWriteStats | None:
    """Write one segment file atomically; None if ``sensors`` is empty.

    ``sensors`` yields ``(sid, timestamps, values, expiries)`` int64
    arrays already holding the segment invariant (sorted, LWW-deduped).
    """
    body = bytearray(_HEADER.pack(_MAGIC, _VERSION, 0))
    footer = bytearray()
    rows = 0
    count = 0
    for sid, ts, vals, exp in sensors:
        if ts.size == 0:
            continue
        offset = len(body)
        ts_block = encode_timestamps(ts)
        val_block = encode_values(vals)
        exp_block = encode_timestamps(exp)
        body += ts_block
        body += val_block
        body += exp_block
        crc = zlib.crc32(body[offset:])
        footer += _ENTRY.pack(
            sid.value >> 64,
            sid.value & ((1 << 64) - 1),
            offset,
            ts.size,
            len(ts_block),
            len(val_block),
            len(exp_block),
            int(ts[0]),
            int(ts[-1]),
            crc,
        )
        rows += int(ts.size)
        count += 1
    if count == 0:
        return None
    footer_off = len(body)
    body += footer
    body += _TAIL.pack(footer_off, count, zlib.crc32(footer), _TAIL_MAGIC)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        if disk is not None:
            disk.write(handle, bytes(body))
        else:
            handle.write(body)
        handle.flush()
        if disk is not None:
            disk.fsync(handle)
        else:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    return SegmentWriteStats(path, rows, rows * RAW_BYTES_PER_ROW, len(body), count)


def _fsync_dir(directory: Path) -> None:
    """Persist the rename itself (best effort on exotic filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _Entry:
    __slots__ = ("offset", "rows", "ts_len", "val_len", "exp_len", "min_ts", "max_ts", "crc")

    def __init__(self, offset, rows, ts_len, val_len, exp_len, min_ts, max_ts, crc):
        self.offset = offset
        self.rows = rows
        self.ts_len = ts_len
        self.val_len = val_len
        self.exp_len = exp_len
        self.min_ts = min_ts
        self.max_ts = max_ts
        self.crc = crc


class SegmentFile:
    """mmap-backed reader over one immutable segment file.

    Construction validates the framing (magic, tail, footer CRC) and
    raises :class:`StorageError` on any mismatch; per-sensor blocks are
    CRC-checked lazily on first read.
    """

    def __init__(self, path: Path, disk=None) -> None:
        self.path = path
        self._file = open(path, "rb")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            self._file.close()
            raise StorageError(f"unreadable segment {path.name}: {exc}") from None
        buf: memoryview | bytes = memoryview(self._mmap)
        if disk is not None:
            # The fault seam returns a (possibly shortened) copy so
            # short-read scenarios surface as framing errors here.
            buf = disk.read(bytes(buf), str(path))
        try:
            self._buf = buf
            self._entries = self._parse(buf)
        except StorageError:
            self.close()
            raise
        self.rows = sum(entry.rows for entry in self._entries.values())
        self.size_bytes = len(buf)

    def _parse(self, buf) -> dict[SensorId, _Entry]:
        if len(buf) < _HEADER.size + _TAIL.size:
            raise StorageError(f"segment {self.path.name}: file shorter than framing")
        magic, version, _ = _HEADER.unpack_from(buf, 0)
        if bytes(magic) != _MAGIC:
            raise StorageError(f"segment {self.path.name}: bad magic")
        if version != _VERSION:
            raise StorageError(f"segment {self.path.name}: unsupported version {version}")
        footer_off, count, footer_crc, tail_magic = _TAIL.unpack_from(buf, len(buf) - _TAIL.size)
        if tail_magic != _TAIL_MAGIC:
            raise StorageError(f"segment {self.path.name}: bad tail magic")
        footer_end = footer_off + count * _ENTRY.size
        if footer_end != len(buf) - _TAIL.size:
            raise StorageError(f"segment {self.path.name}: footer bounds out of range")
        if zlib.crc32(bytes(buf[footer_off:footer_end])) != footer_crc:
            raise StorageError(f"segment {self.path.name}: footer CRC mismatch")
        entries: dict[SensorId, _Entry] = {}
        for i in range(count):
            hi, lo, offset, rows, ts_len, val_len, exp_len, min_ts, max_ts, crc = (
                _ENTRY.unpack_from(buf, footer_off + i * _ENTRY.size)
            )
            sid = SensorId((hi << 64) | lo)
            entries[sid] = _Entry(offset, rows, ts_len, val_len, exp_len, min_ts, max_ts, crc)
        return entries

    def sids(self) -> list[SensorId]:
        return sorted(self._entries)

    def rows_for(self, sid: SensorId) -> int:
        """One sensor's row count, straight from the footer index."""
        return self._entries[sid].rows

    def bounds_for(self, sid: SensorId) -> tuple[int, int]:
        """One sensor's ``(min_ts, max_ts)`` from the footer index —
        the read path prunes non-overlapping blocks on this alone,
        without touching (or decoding) the block bytes."""
        entry = self._entries[sid]
        return entry.min_ts, entry.max_ts

    def __contains__(self, sid: SensorId) -> bool:
        return sid in self._entries

    def read(self, sid: SensorId) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode one sensor's ``(timestamps, values, expiries)``."""
        entry = self._entries[sid]
        start = entry.offset
        end = start + entry.ts_len + entry.val_len + entry.exp_len
        block = self._buf[start:end]
        if len(block) != end - start:
            raise StorageError(f"segment {self.path.name}: short read for {sid.hex()}")
        if zlib.crc32(bytes(block)) != entry.crc:
            raise StorageError(f"segment {self.path.name}: block CRC mismatch for {sid.hex()}")
        ts = decode_timestamps(block[: entry.ts_len], entry.rows)
        vals = decode_values(block[entry.ts_len : entry.ts_len + entry.val_len], entry.rows)
        exp = decode_timestamps(block[entry.ts_len + entry.val_len :], entry.rows)
        return ts, vals, exp

    def close(self) -> None:
        buf = getattr(self, "_buf", None)
        if isinstance(buf, memoryview):
            buf.release()
        self._buf = b""
        try:
            self._mmap.close()
        except (BufferError, ValueError):
            pass
        self._file.close()
