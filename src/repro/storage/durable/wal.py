"""Per-node write-ahead log: append-only, CRC-framed, group commit.

Every mutation a :class:`~repro.storage.durable.DurableNode` accepts is
first framed into the active WAL file; the batching writer's flush
completion then calls ``commit()`` once per batch, so a single fsync
covers the whole batch (*group commit* — the discipline the COMPASS
CDB event store and Cassandra's commitlog share).  Three fsync
policies trade durability for throughput:

* ``always``   — fsync on every commit; zero acknowledged-write loss
  across ``kill -9``.
* ``interval`` — fsync when ``fsync_interval_s`` has elapsed since the
  last sync; bounded loss window, near-memory throughput.
* ``off``      — never fsync; the OS page cache decides (crash-unsafe,
  benchmark baseline only).

Record framing (little-endian)::

    magic  u16  = 0xDA7A
    type   u8   (DATA=1, META=2, CUTOFF=3)
    flags  u8   (reserved, 0)
    length u32  payload byte count
    seq    u64  file sequence number (sanity check against renames)
    crc    u32  CRC-32 over type byte + seq + payload
    payload     ``length`` bytes

A reader stops at the first frame that fails any check — short header,
short payload, wrong magic/seq, CRC mismatch — and reports *why*, so a
torn tail (the expected artefact of power loss mid-append) recovers to
the last valid record instead of refusing to start.

Truncation is *ack-driven* (the lsst-dm buffer-manager discipline):
the log only shrinks when the owning node seals its memtable into a
segment file and checkpoints the manifest; ``rotate()`` starts a fresh
file and the node deletes files below the manifest's ``wal_floor``
afterwards.  Deleting before the manifest points past a file would
lose un-sealed records; deleting after is safe because replay is
idempotent under last-write-wins.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic

from repro.common.errors import StorageError

__all__ = [
    "DATA",
    "META",
    "CUTOFF",
    "FSYNC_POLICIES",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal_file",
    "wal_path",
]

#: Record types.
DATA = 1
META = 2
CUTOFF = 3

FSYNC_POLICIES = ("always", "interval", "off")

_MAGIC = 0xDA7A
_HEADER = struct.Struct("<HBBIQI")  # magic, type, flags, length, seq, crc
HEADER_SIZE = _HEADER.size


def _crc(rtype: int, seq: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(bytes((rtype,)) + seq.to_bytes(8, "little")))


def wal_path(directory: Path, seq: int) -> Path:
    return directory / f"wal-{seq:08d}.log"


@dataclass(slots=True)
class WalRecord:
    """One decoded WAL frame."""

    rtype: int
    seq: int
    payload: bytes


@dataclass(slots=True)
class WalScan:
    """Result of scanning one WAL file to its last valid record."""

    records: list[WalRecord] = field(default_factory=list)
    valid_bytes: int = 0
    #: Why the scan stopped early, or None for a clean end-of-file.
    truncated_reason: str | None = None


def scan_wal_file(path: Path, expect_seq: int, *, disk=None) -> WalScan:
    """Read frames from ``path`` up to the last valid record.

    Never raises on corruption: a torn tail, a flipped bit, a header
    from a different file — all stop the scan with a diagnostic in
    ``truncated_reason`` and everything before the bad frame intact.
    """
    raw = path.read_bytes()
    if disk is not None:
        raw = disk.read(raw, str(path))
    scan = WalScan()
    offset = 0
    total = len(raw)
    while offset < total:
        if offset + HEADER_SIZE > total:
            scan.truncated_reason = "torn header at end of file"
            return scan
        magic, rtype, _flags, length, seq, crc = _HEADER.unpack_from(raw, offset)
        if magic != _MAGIC:
            scan.truncated_reason = f"bad magic 0x{magic:04x} at offset {offset}"
            return scan
        if seq != expect_seq:
            scan.truncated_reason = f"wrong file seq {seq} (expected {expect_seq})"
            return scan
        body_start = offset + HEADER_SIZE
        if body_start + length > total:
            scan.truncated_reason = "torn payload at end of file"
            return scan
        payload = raw[body_start : body_start + length]
        if _crc(rtype, seq, payload) != crc:
            scan.truncated_reason = f"CRC mismatch at offset {offset}"
            return scan
        scan.records.append(WalRecord(rtype, seq, payload))
        offset = body_start + length
        scan.valid_bytes = offset
    return scan


class WriteAheadLog:
    """The active, append-only end of a node's log.

    Not thread-safe on its own — the owning node serializes appends
    under its lock; ``commit()`` may race a rotation only through the
    same lock.
    """

    def __init__(
        self,
        directory: Path,
        seq: int,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        disk=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.directory = directory
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        self._disk = disk
        self.seq = seq
        self._file = open(wal_path(directory, seq), "ab", buffering=0)
        self.size_bytes = self._file.tell()
        self._pending = bytearray()
        self._dirty = False
        self._last_sync = monotonic()
        # Cumulative stats the node surfaces as dcdb_wal_* metrics.
        self.appends = 0
        self.bytes_written = 0
        self.syncs = 0
        self.rotations = 0

    # -- write side -----------------------------------------------------

    def append(self, rtype: int, payload: bytes) -> int:
        """Frame and buffer one record — no syscall; the whole pending
        batch reaches the file in one write at the next commit barrier
        (or sync/rotate/close), so a flush of N records costs one
        ``write`` plus at most one ``fsync`` instead of N writes."""
        self._pending += _HEADER.pack(
            _MAGIC, rtype, 0, len(payload), self.seq, _crc(rtype, self.seq, payload)
        )
        self._pending += payload
        frame_len = HEADER_SIZE + len(payload)
        self._dirty = True
        self.appends += 1
        self.bytes_written += frame_len
        self.size_bytes += frame_len
        return frame_len

    def _flush_pending(self) -> None:
        """Hand buffered frames to the OS in a single write."""
        if not self._pending:
            return
        batch = bytes(self._pending)
        self._pending.clear()
        if self._disk is not None:
            self._disk.write(self._file, batch)
        else:
            self._file.write(batch)

    def commit(self) -> bool:
        """Apply the fsync policy; returns True if a sync happened.

        Pending frames always reach the OS here even when the policy
        skips the fsync — the in-process loss window stays exactly what
        it was with per-record writes; only the syscall count changes.
        """
        self._flush_pending()
        if not self._dirty or self.fsync == "off":
            return False
        if self.fsync == "interval" and monotonic() - self._last_sync < self.fsync_interval_s:
            return False
        self._sync()
        return True

    def sync_now(self) -> bool:
        """Unconditional sync of pending bytes (close/shutdown path)."""
        self._flush_pending()
        if not self._dirty:
            return False
        self._sync()
        return True

    def _sync(self) -> None:
        self._flush_pending()
        self._file.flush()
        if self._disk is not None:
            self._disk.fsync(self._file)
        else:
            os.fsync(self._file.fileno())
        self._dirty = False
        self._last_sync = monotonic()
        self.syncs += 1

    # -- truncation (ack-driven) ----------------------------------------

    def rotate(self) -> int:
        """Start a fresh file; returns the new sequence number.

        The caller (the node's seal/checkpoint path) persists the new
        floor in its manifest and only then deletes the older files —
        see :meth:`delete_below`.
        """
        self.sync_now()
        self._file.close()
        self.seq += 1
        self._file = open(wal_path(self.directory, self.seq), "ab", buffering=0)
        self.size_bytes = 0
        self._dirty = False
        self.rotations += 1
        return self.seq

    def delete_below(self, floor: int) -> int:
        """Unlink sealed-and-checkpointed files with seq < ``floor``."""
        deleted = 0
        for path in sorted(self.directory.glob("wal-*.log")):
            try:
                seq = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if seq < floor:
                path.unlink(missing_ok=True)
                deleted += 1
        return deleted

    def close(self) -> None:
        if self._file.closed:
            return
        try:
            self.sync_now()
        except (OSError, StorageError):
            pass
        self._file.close()
