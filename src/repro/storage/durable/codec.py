"""Columnar compression codecs for on-disk segments.

Two bit-level codecs, straight out of Facebook's Gorilla paper (the
scheme the COMPASS CDB work adopts for its compressed columnar event
store, and the natural fit for DCDB's monitoring data):

* **Delta-of-delta** for timestamps (and TTL expiries): monitoring
  readings arrive on a fixed sampling interval, so the second
  difference of consecutive timestamps is almost always zero — one
  bit per reading.  Jitter falls into small variable-width buckets.
* **XOR** for values: consecutive sensor values are equal or close, so
  ``v[i] XOR v[i-1]`` is zero (one bit) or has a short run of
  meaningful bits which is stored with a leading/trailing-zero window
  that is reused while it keeps fitting.

Both codecs operate on int64 columns — the storage layer's native
reading representation (see :mod:`repro.core.sensor` for the scaling
convention).  Float-valued sensors that store raw IEEE-754 bit
patterns (NaN, ±inf included) round-trip bit-identically, because the
codecs never interpret the payload arithmetically beyond differencing.

Encoded blocks carry no row count; callers (the segment writer, the
WAL) store the count in their own framing and pass it to decode.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import StorageError

__all__ = [
    "BitReader",
    "BitWriter",
    "decode_timestamps",
    "decode_values",
    "encode_timestamps",
    "encode_values",
]

_M64 = (1 << 64) - 1


class BitWriter:
    """Append-only MSB-first bit stream over a ``bytearray``."""

    __slots__ = ("_out", "_acc", "_n")

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._n = 0

    def write(self, value: int, bits: int) -> None:
        acc = (self._acc << bits) | (value & ((1 << bits) - 1))
        n = self._n + bits
        out = self._out
        while n >= 8:
            n -= 8
            out.append((acc >> n) & 0xFF)
        self._acc = acc & ((1 << n) - 1)
        self._n = n

    def finish(self) -> bytes:
        """Zero-pad to a byte boundary and return the stream."""
        if self._n:
            self._out.append((self._acc << (8 - self._n)) & 0xFF)
            self._acc = 0
            self._n = 0
        return bytes(self._out)


class BitReader:
    """MSB-first bit reader over ``bytes``/``memoryview`` (mmap-safe)."""

    __slots__ = ("_data", "_i", "_acc", "_n")

    def __init__(self, data) -> None:
        self._data = data
        self._i = 0
        self._acc = 0
        self._n = 0

    def read(self, bits: int) -> int:
        acc = self._acc
        n = self._n
        data = self._data
        i = self._i
        try:
            while n < bits:
                acc = (acc << 8) | data[i]
                i += 1
                n += 8
        except IndexError:
            raise StorageError("truncated compressed block") from None
        self._i = i
        n -= bits
        self._n = n
        self._acc = acc & ((1 << n) - 1)
        return acc >> n


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 127)


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _to_int64(unsigned: list[int]) -> np.ndarray:
    """Two's-complement reinterpretation of uint64 words as int64."""
    if not unsigned:
        return np.empty(0, dtype=np.int64)
    return np.array(unsigned, dtype=np.uint64).view(np.int64)


def encode_timestamps(values) -> bytes:
    """Delta-of-delta encode an int64 column (timestamps, expiries).

    Bucket codes: ``0`` dod=0; ``10``+7 bits; ``110``+16; ``1110``+32;
    ``1111``+68 (zigzag; 68 bits covers the worst-case second
    difference of two int64 extremes).
    """
    vals = values.tolist() if isinstance(values, np.ndarray) else [int(v) for v in values]
    if not vals:
        return b""
    w = BitWriter()
    write = w.write
    write(vals[0] & _M64, 64)
    prev = vals[0]
    prev_delta = 0
    for v in vals[1:]:
        delta = v - prev
        dod = delta - prev_delta
        prev = v
        prev_delta = delta
        if dod == 0:
            write(0, 1)
            continue
        zz = _zigzag(dod)
        if zz < (1 << 7):
            write(0b10, 2)
            write(zz, 7)
        elif zz < (1 << 16):
            write(0b110, 3)
            write(zz, 16)
        elif zz < (1 << 32):
            write(0b1110, 4)
            write(zz, 32)
        else:
            write(0b1111, 4)
            write(zz, 68)
    return w.finish()


def decode_timestamps(data, count: int) -> np.ndarray:
    """Inverse of :func:`encode_timestamps`; ``count`` rows expected."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    r = BitReader(data)
    read = r.read
    first = read(64)
    prev = first - (1 << 64) if first >= (1 << 63) else first
    out = [prev]
    delta = 0
    for _ in range(count - 1):
        if read(1) == 0:
            dod = 0
        elif read(1) == 0:
            dod = _unzigzag(read(7))
        elif read(1) == 0:
            dod = _unzigzag(read(16))
        elif read(1) == 0:
            dod = _unzigzag(read(32))
        else:
            dod = _unzigzag(read(68))
        delta += dod
        prev += delta
        out.append(prev)
    return np.array(out, dtype=np.int64)


def encode_values(values) -> bytes:
    """Gorilla-style XOR encode an int64 value column.

    Per value: ``0`` if the XOR with the previous value is zero;
    ``10`` + meaningful bits reusing the previous leading/trailing-zero
    window; ``11`` + 6-bit leading count + 6-bit (length-1) + bits for
    a fresh window.
    """
    vals = values.tolist() if isinstance(values, np.ndarray) else [int(v) for v in values]
    if not vals:
        return b""
    w = BitWriter()
    write = w.write
    prev = vals[0] & _M64
    write(prev, 64)
    lead = -1
    trail = 0
    window = 0
    for v in vals[1:]:
        u = v & _M64
        x = u ^ prev
        prev = u
        if x == 0:
            write(0, 1)
            continue
        bits = x.bit_length()
        l = 64 - bits
        t = ((x & -x).bit_length()) - 1
        if lead >= 0 and l >= lead and t >= trail:
            write(0b10, 2)
            write(x >> trail, window)
        else:
            lead = l
            trail = t
            window = 64 - l - t
            write(0b11, 2)
            write(l, 6)
            write(window - 1, 6)
            write(x >> t, window)
    return w.finish()


def decode_values(data, count: int) -> np.ndarray:
    """Inverse of :func:`encode_values`; ``count`` rows expected."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    r = BitReader(data)
    read = r.read
    prev = read(64)
    out = [prev]
    trail = 0
    window = 64
    for _ in range(count - 1):
        if read(1) == 0:
            out.append(prev)
            continue
        if read(1) == 0:
            x = read(window) << trail
        else:
            lead = read(6)
            window = read(6) + 1
            trail = 64 - lead - window
            if trail < 0:
                raise StorageError("corrupt XOR window in compressed block")
            x = read(window) << trail
        prev ^= x
        out.append(prev)
    return _to_int64(out)
