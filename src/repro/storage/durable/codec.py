"""Columnar compression codecs for on-disk segments.

Two bit-level codecs, straight out of Facebook's Gorilla paper (the
scheme the COMPASS CDB work adopts for its compressed columnar event
store, and the natural fit for DCDB's monitoring data):

* **Delta-of-delta** for timestamps (and TTL expiries): monitoring
  readings arrive on a fixed sampling interval, so the second
  difference of consecutive timestamps is almost always zero — one
  bit per reading.  Jitter falls into small variable-width buckets.
* **XOR** for values: consecutive sensor values are equal or close, so
  ``v[i] XOR v[i-1]`` is zero (one bit) or has a short run of
  meaningful bits which is stored with a leading/trailing-zero window
  that is reused while it keeps fitting.

Both codecs operate on int64 columns — the storage layer's native
reading representation (see :mod:`repro.core.sensor` for the scaling
convention).  Float-valued sensors that store raw IEEE-754 bit
patterns (NaN, ±inf included) round-trip bit-identically, because the
codecs never interpret the payload arithmetically beyond differencing.

Encoded blocks carry no row count; callers (the segment writer, the
WAL) store the count in their own framing and pass it to decode.

The kernels are NumPy-vectorized: deltas, delta-of-deltas, zigzag,
bucket classification, XOR leading/trailing-zero windows and the final
bit-packing all run column-at-a-time (MSB-first bit matrix +
``np.packbits``/``np.unpackbits``), with Python-level work confined to
the rows that need it (irregular delta-of-delta buckets, XOR window
renegotiations).  The wire format is **bit-identical** to the original
per-reading loop implementation — locked by the golden vectors in
``tests/storage/test_durable_codecs.py``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import StorageError

__all__ = [
    "BitReader",
    "BitWriter",
    "decode_timestamps",
    "decode_values",
    "encode_timestamps",
    "encode_values",
]

_M64 = (1 << 64) - 1
_U0 = np.uint64(0)
_U1 = np.uint64(1)

#: Bits one delta-of-delta token occupies, per bucket (control+payload).
_DOD_TOKEN_BITS = np.array([1, 9, 19, 36, 72], dtype=np.int64)

#: Cap on the rows × width temporary matrices the bit scatter/gather
#: helpers materialize at once (keeps peak memory bounded for huge
#: adversarial blocks without touching the common-case fast path).
_CHUNK_ROWS = 1 << 16


class BitWriter:
    """Append-only MSB-first bit stream over a ``bytearray``."""

    __slots__ = ("_out", "_acc", "_n")

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._n = 0

    def write(self, value: int, bits: int) -> None:
        acc = (self._acc << bits) | (value & ((1 << bits) - 1))
        n = self._n + bits
        out = self._out
        while n >= 8:
            n -= 8
            out.append((acc >> n) & 0xFF)
        self._acc = acc & ((1 << n) - 1)
        self._n = n

    def finish(self) -> bytes:
        """Zero-pad to a byte boundary and return the stream."""
        if self._n:
            self._out.append((self._acc << (8 - self._n)) & 0xFF)
            self._acc = 0
            self._n = 0
        return bytes(self._out)


class BitReader:
    """MSB-first bit reader over ``bytes``/``memoryview`` (mmap-safe)."""

    __slots__ = ("_data", "_i", "_acc", "_n")

    def __init__(self, data) -> None:
        self._data = data
        self._i = 0
        self._acc = 0
        self._n = 0

    def read(self, bits: int) -> int:
        acc = self._acc
        n = self._n
        data = self._data
        i = self._i
        try:
            while n < bits:
                acc = (acc << 8) | data[i]
                i += 1
                n += 8
        except IndexError:
            raise StorageError("truncated compressed block") from None
        self._i = i
        n -= bits
        self._n = n
        self._acc = acc & ((1 << n) - 1)
        return acc >> n


# -- vector helpers -------------------------------------------------------


def _as_i64_column(values) -> np.ndarray:
    if isinstance(values, np.ndarray):
        return np.ascontiguousarray(values, dtype=np.int64)
    return np.array([int(v) for v in values], dtype=np.int64)


def _scatter_bits(bits: np.ndarray, offsets: np.ndarray, values: np.ndarray, width: int) -> None:
    """Write ``width``-bit MSB-first fields of uint64 ``values`` into the
    0/1 array ``bits`` starting at bit positions ``offsets``."""
    if offsets.size == 0:
        return
    span = np.arange(width, dtype=np.int64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    for at in range(0, offsets.size, _CHUNK_ROWS):
        off = offsets[at : at + _CHUNK_ROWS]
        val = values[at : at + _CHUNK_ROWS]
        bits[off[:, None] + span[None, :]] = (
            (val[:, None] >> shifts[None, :]) & _U1
        ).astype(np.uint8)


def _gather_bits(bits: np.ndarray, offsets: np.ndarray, width: int) -> np.ndarray:
    """Read ``width``-bit MSB-first uint64 fields at bit ``offsets``."""
    span = np.arange(width, dtype=np.int64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    out = np.empty(offsets.size, dtype=np.uint64)
    for at in range(0, offsets.size, _CHUNK_ROWS):
        off = offsets[at : at + _CHUNK_ROWS]
        chunk = bits[off[:, None] + span[None, :]].astype(np.uint64)
        out[at : at + off.size] = (chunk << shifts[None, :]).sum(
            axis=1, dtype=np.uint64
        )
    return out


def _bit_length_u64(v: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` over a uint64 column."""
    v = v.copy()
    out = np.zeros(v.shape, dtype=np.int64)
    for s in (32, 16, 8, 4, 2, 1):
        t = v >> np.uint64(s)
        big = t != 0
        out[big] += s
        v[big] = t[big]
    out += v != 0
    return out


def _small_int(bb: bytes, off: int, width: int) -> int:
    value = 0
    for b in bb[off : off + width]:
        value = (value << 1) | b
    return value


# -- delta-of-delta timestamp codec ---------------------------------------


def encode_timestamps(values) -> bytes:
    """Delta-of-delta encode an int64 column (timestamps, expiries).

    Bucket codes: ``0`` dod=0; ``10``+7 bits; ``110``+16; ``1110``+32;
    ``1111``+68 (zigzag; 68 bits covers the worst-case second
    difference of two int64 extremes).
    """
    ts = _as_i64_column(values)
    n = int(ts.size)
    if n == 0:
        return b""
    head = int(ts[0]) & _M64
    if n == 1:
        return head.to_bytes(8, "big")
    u = ts.view(np.uint64)
    m = n - 1
    # True deltas are 65-bit quantities: carry the wrapped int64 value
    # plus a ±2^64 correction term so classification stays exact.
    a, b = ts[1:], ts[:-1]
    d = (u[1:] - u[:-1]).view(np.int64)
    ovf = ((a < 0) != (b < 0)) & ((d < 0) != (a < 0))
    c = np.where(a >= 0, 1, -1) * ovf
    sd = np.empty(m, dtype=np.int64)
    sd[0] = d[0]
    du = d.view(np.uint64)
    sd[1:] = (du[1:] - du[:-1]).view(np.int64)
    k = np.empty(m, dtype=np.int64)
    k[0] = c[0]
    ovf2 = ((d[1:] < 0) != (d[:-1] < 0)) & ((sd[1:] < 0) != (d[1:] < 0))
    k[1:] = np.where(d[1:] >= 0, 1, -1) * ovf2 + c[1:] - c[:-1]
    # dod_i = sd_i + (k_i << 64); k != 0 always lands in the 68-bit
    # bucket because |dod| >= 2^63 then.
    zz = (sd.view(np.uint64) << _U1) ^ np.right_shift(sd, 63).view(np.uint64)
    bucket = np.full(m, 4, dtype=np.uint8)
    small = k == 0
    cls_small = np.where(
        sd == 0,
        0,
        np.where(zz < 128, 1, np.where(zz < (1 << 16), 2, np.where(zz < (1 << 32), 3, 4))),
    ).astype(np.uint8)
    bucket[small] = cls_small[small]

    widths = _DOD_TOKEN_BITS[bucket]
    ends = np.cumsum(widths)
    offsets = np.empty(m, dtype=np.int64)
    offsets[0] = 64
    offsets[1:] = 64 + ends[:-1]
    total = 64 + int(ends[-1])
    bits = np.zeros(total, dtype=np.uint8)
    _scatter_bits(
        bits, np.zeros(1, dtype=np.int64), np.array([head], dtype=np.uint64), 64
    )
    # Bucket 0 is the single '0' bit — already zeroed.
    for cls, ctl, pay in ((1, 0b10, 7), (2, 0b110, 16), (3, 0b1110, 32)):
        idx = np.flatnonzero(bucket == cls)
        if idx.size:
            vals = np.uint64(ctl << pay) | zz[idx]
            _scatter_bits(bits, offsets[idx], vals, 2 + pay if cls == 1 else (3 + pay if cls == 2 else 4 + pay))
    idx4 = np.flatnonzero(bucket == 4)
    if idx4.size:
        hi = np.empty(idx4.size, dtype=np.uint64)
        lo = np.empty(idx4.size, dtype=np.uint64)
        for i, (s, kk) in enumerate(zip(sd[idx4].tolist(), k[idx4].tolist())):
            dod = s + (kk << 64)
            z = (dod << 1) ^ (dod >> 127)
            hi[i] = (0b1111 << 4) | (z >> 64)
            lo[i] = z & _M64
        _scatter_bits(bits, offsets[idx4], hi, 8)
        _scatter_bits(bits, offsets[idx4] + 8, lo, 64)
    return np.packbits(bits).tobytes()


def decode_timestamps(data, count: int) -> np.ndarray:
    """Inverse of :func:`encode_timestamps`; ``count`` rows expected."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size < 8:
        raise StorageError("truncated compressed block")
    first = int.from_bytes(raw[:8].tobytes(), "big")
    out = np.empty(count, dtype=np.uint64)
    out[0] = first
    if count == 1:
        return out.view(np.int64)
    m = count - 1
    bits = np.unpackbits(raw)
    total = int(bits.size)
    bb = bits.tobytes()  # byte-per-bit copy: C-speed scalar indexing
    # Token scan: runs of '0' bits are dod=0 tokens, skipped in bulk by
    # memchr; only irregular tokens cost a Python iteration.
    pos: tuple[list, list, list, list] = ([], [], [], [])
    find = bb.find
    p = 64
    tok = 0
    while tok < m:
        if p < total and bb[p]:
            q = p
        else:
            q = find(1, p)
            if q < 0:
                q = total
        run = q - p
        if run:
            if run >= m - tok:
                tok = m
                break
            tok += run
        if q + 1 < total and not bb[q + 1]:
            off, w, cls = q + 2, 7, 0
        elif q + 2 < total and not bb[q + 2]:
            off, w, cls = q + 3, 16, 1
        elif q + 3 < total and not bb[q + 3]:
            off, w, cls = q + 4, 32, 2
        else:
            off, w, cls = q + 4, 68, 3
        end = off + w
        if end > total:
            raise StorageError("truncated compressed block")
        pos[cls].append((tok, off))
        tok += 1
        p = end

    dod = np.zeros(m, dtype=np.uint64)
    for cls, w in ((0, 7), (1, 16), (2, 32)):
        rows = pos[cls]
        if not rows:
            continue
        arr = np.array(rows, dtype=np.int64)
        zz = _gather_bits(bits, arr[:, 1], w)
        dod[arr[:, 0]] = (zz >> _U1) ^ (_U0 - (zz & _U1))
    rows = pos[3]
    if rows:
        arr = np.array(rows, dtype=np.int64)
        hi = _gather_bits(bits, arr[:, 1], 4)
        lo = _gather_bits(bits, arr[:, 1] + 4, 64)
        # 68-bit zigzag, reduced mod 2^64: exact because the final
        # timestamps are int64 and every step is bitwise/additive.
        dod[arr[:, 0]] = (((hi & _U1) << np.uint64(63)) | (lo >> _U1)) ^ (
            _U0 - (lo & _U1)
        )
    deltas = np.cumsum(dod)
    out[1:] = np.uint64(first) + np.cumsum(deltas)
    return out.view(np.int64)


# -- Gorilla XOR value codec ----------------------------------------------


def encode_values(values) -> bytes:
    """Gorilla-style XOR encode an int64 value column.

    Per value: ``0`` if the XOR with the previous value is zero;
    ``10`` + meaningful bits reusing the previous leading/trailing-zero
    window; ``11`` + 6-bit leading count + 6-bit (length-1) + bits for
    a fresh window.
    """
    vals = _as_i64_column(values)
    n = int(vals.size)
    if n == 0:
        return b""
    u = vals.view(np.uint64)
    head = int(u[0])
    if n == 1:
        return head.to_bytes(8, "big")
    x = u[1:] ^ u[:-1]
    m = n - 1
    nz_idx = np.flatnonzero(x)
    widths = np.ones(m, dtype=np.int64)
    kind = win = sh = lead_v = None
    if nz_idx.size:
        xs = x[nz_idx]
        bl = _bit_length_u64(xs)
        lead_v = 64 - bl
        tz = _bit_length_u64(xs & (_U0 - xs)) - 1
        # The window state machine is inherently sequential, but only
        # over rows whose XOR is non-zero — everything around it
        # (leading/trailing-zero counts, payload shifts, bit packing)
        # is vectorized.
        kind_l: list[bool] = []
        win_l: list[int] = []
        sh_l: list[int] = []
        lead_s = -1
        trail_s = 0
        win_s = 0
        for l, t in zip(lead_v.tolist(), tz.tolist()):
            if lead_s >= 0 and l >= lead_s and t >= trail_s:
                kind_l.append(False)
                win_l.append(win_s)
                sh_l.append(trail_s)
            else:
                lead_s = l
                trail_s = t
                win_s = 64 - l - t
                kind_l.append(True)
                win_l.append(win_s)
                sh_l.append(t)
        kind = np.array(kind_l, dtype=bool)
        win = np.array(win_l, dtype=np.int64)
        sh = np.array(sh_l, dtype=np.uint64)
        widths[nz_idx] = np.where(kind, 14 + win, 2 + win)
    ends = np.cumsum(widths)
    offsets = np.empty(m, dtype=np.int64)
    offsets[0] = 64
    offsets[1:] = 64 + ends[:-1]
    total = 64 + int(ends[-1])
    bits = np.zeros(total, dtype=np.uint8)
    _scatter_bits(
        bits, np.zeros(1, dtype=np.int64), np.array([head], dtype=np.uint64), 64
    )
    if nz_idx.size:
        payload = x[nz_idx] >> sh
        off_nz = offsets[nz_idx]
        reuse = ~kind
        if reuse.any():
            _scatter_bits(
                bits,
                off_nz[reuse],
                np.full(int(reuse.sum()), 0b10, dtype=np.uint64),
                2,
            )
        if kind.any():
            meta = (
                (np.uint64(0b11) << np.uint64(12))
                | (lead_v[kind].astype(np.uint64) << np.uint64(6))
                | (win[kind].astype(np.uint64) - _U1)
            )
            _scatter_bits(bits, off_nz[kind], meta, 14)
        pay_off = off_nz + np.where(kind, 14, 2)
        for w in np.unique(win):
            sel = win == w
            _scatter_bits(bits, pay_off[sel], payload[sel], int(w))
    return np.packbits(bits).tobytes()


def decode_values(data, count: int) -> np.ndarray:
    """Inverse of :func:`encode_values`; ``count`` rows expected."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size < 8:
        raise StorageError("truncated compressed block")
    first = int.from_bytes(raw[:8].tobytes(), "big")
    out = np.empty(count, dtype=np.uint64)
    out[0] = first
    if count == 1:
        return out.view(np.int64)
    m = count - 1
    bits = np.unpackbits(raw)
    total = int(bits.size)
    bb = bits.tobytes()  # byte-per-bit copy: C-speed scalar indexing
    rows: list[int] = []
    offs: list[int] = []
    ws: list[int] = []
    shs: list[int] = []
    find = bb.find
    rows_append = rows.append
    offs_append = offs.append
    ws_append = ws.append
    shs_append = shs.append
    p = 64
    tok = 0
    win = 64
    trail = 0
    while tok < m:
        if p < total and bb[p]:
            q = p
        else:
            q = find(1, p)
            if q < 0:
                q = total
        run = q - p
        if run:
            if run >= m - tok:
                tok = m
                break
            tok += run
        p = q
        if p + 1 >= total:
            raise StorageError("truncated compressed block")
        if not bb[p + 1]:
            off = p + 2
        else:
            if p + 14 > total:
                raise StorageError("truncated compressed block")
            lead = _small_int(bb, p + 2, 6)
            win = _small_int(bb, p + 8, 6) + 1
            trail = 64 - lead - win
            if trail < 0:
                raise StorageError("corrupt XOR window in compressed block")
            off = p + 14
        end = off + win
        if end > total:
            raise StorageError("truncated compressed block")
        rows_append(tok)
        offs_append(off)
        ws_append(win)
        shs_append(trail)
        tok += 1
        p = end

    xors = np.zeros(m, dtype=np.uint64)
    if rows:
        rows_a = np.array(rows, dtype=np.int64)
        offs_a = np.array(offs, dtype=np.int64)
        ws_a = np.array(ws, dtype=np.int64)
        shs_a = np.array(shs, dtype=np.uint64)
        for w in sorted(set(ws)):
            sel = ws_a == w
            xors[rows_a[sel]] = _gather_bits(bits, offs_a[sel], int(w)) << shs_a[sel]
    acc = np.bitwise_xor.accumulate(xors)
    out[1:] = np.uint64(first) ^ acc
    return out.view(np.int64)
