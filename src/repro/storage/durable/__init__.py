"""Durable log-structured storage: WAL, compressed segments, recovery.

The persistence layer the paper delegates to Cassandra (section 4.3),
reproduced in the LSM shape the COMPASS CDB paper describes: a
per-node write-ahead log with group commit (:mod:`.wal`), immutable
columnar segment files compressed with delta-of-delta timestamps and
Gorilla XOR values (:mod:`.codec`, :mod:`.segment`), and crash
recovery that replays the log into the memtable (:mod:`.node`).

See ``docs/durability.md`` for formats, fsync policies, compaction
triggers and recovery semantics.
"""

from repro.storage.durable.codec import (
    BitReader,
    BitWriter,
    decode_timestamps,
    decode_values,
    encode_timestamps,
    encode_values,
)
from repro.storage.durable.node import DurableBackend, DurableNode
from repro.storage.durable.segment import SegmentFile, write_segment
from repro.storage.durable.wal import (
    FSYNC_POLICIES,
    WriteAheadLog,
    scan_wal_file,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "DurableBackend",
    "DurableNode",
    "FSYNC_POLICIES",
    "SegmentFile",
    "WriteAheadLog",
    "decode_timestamps",
    "decode_values",
    "encode_timestamps",
    "encode_values",
    "scan_wal_file",
    "write_segment",
]
