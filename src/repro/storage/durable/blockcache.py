"""Byte-budgeted LRU cache of decoded segment blocks.

The durable read path decodes a sensor's on-disk block only when a
query window overlaps it (footer ``[min_ts, max_ts]`` pruning) and
parks the decoded columns here instead of permanently prepending them
into the memtable: a dashboard sweep over a store larger than RAM
re-reads cold blocks through a fixed byte budget instead of growing
the process without bound.

Entries are keyed ``(segment file name, sid)`` — segment file numbers
are monotonic and never reused, so a key can never alias a different
file's data.  Values are :class:`~repro.storage.node._Segment` objects
whose arrays are marked read-only; the query path hands out views of
them, so a cached block must never be written through.

The cache itself does no locking: every access happens under the
owning node's lock (queries stage under it, compaction invalidates
under it).  A budget of 0 disables caching — every lookup misses and
``put`` is a no-op — which keeps the decode-per-query behaviour
available for parity testing and memory-austere deployments.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["BlockCache"]


class _Nop:
    def inc(self, n: int = 1) -> None:
        pass


_NOP = _Nop()


class BlockCache:
    """LRU over decoded blocks, bounded by total array bytes."""

    def __init__(self, budget_bytes: int, *, hits=None, misses=None, evictions=None):
        self.budget_bytes = max(0, int(budget_bytes))
        self._entries: OrderedDict[tuple[str, object], object] = OrderedDict()
        self._sizes: dict[tuple[str, object], int] = {}
        self.bytes = 0
        self._hits = hits if hits is not None else _NOP
        self._misses = misses if misses is not None else _NOP
        self._evictions = evictions if evictions is not None else _NOP

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, file_key: str, sid):
        segment = self._entries.get((file_key, sid))
        if segment is None:
            self._misses.inc()
            return None
        self._entries.move_to_end((file_key, sid))
        self._hits.inc()
        return segment

    def put(self, file_key: str, sid, segment) -> None:
        if self.budget_bytes == 0:
            return
        key = (file_key, sid)
        nbytes = int(
            segment.timestamps.nbytes + segment.values.nbytes + segment.expiries.nbytes
        )
        old = self._sizes.pop(key, None)
        if old is not None:
            self.bytes -= old
            del self._entries[key]
        self._entries[key] = segment
        self._sizes[key] = nbytes
        self.bytes += nbytes
        while self.bytes > self.budget_bytes and len(self._entries) > 1:
            evicted_key, _ = self._entries.popitem(last=False)
            self.bytes -= self._sizes.pop(evicted_key)
            self._evictions.inc()
        # A single block larger than the whole budget may stay resident
        # while in use (evicting it would just thrash); it goes first
        # the moment anything else lands.

    def invalidate_file(self, file_key: str) -> int:
        """Drop every block decoded from one segment file."""
        doomed = [key for key in self._entries if key[0] == file_key]
        for key in doomed:
            del self._entries[key]
            self.bytes -= self._sizes.pop(key)
        return len(doomed)

    def invalidate_sid(self, sid) -> int:
        """Drop every cached block of one sensor (retention cutoff moved)."""
        doomed = [key for key in self._entries if key[1] == sid]
        for key in doomed:
            del self._entries[key]
            self.bytes -= self._sizes.pop(key)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self.bytes = 0
