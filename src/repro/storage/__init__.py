"""Distributed wide-column storage substrate.

The paper stores readings in Apache Cassandra (section 4.3), chosen
for its high ingest rate on streaming time-series data and for its
data-distribution mechanism: hierarchical SIDs are used as partition
keys so a sensor subtree lands on the nearest database server.

This package is a from-scratch reproduction of the storage semantics
DCDB relies on:

* :mod:`repro.storage.node` — one storage server: an append-optimized
  memtable flushed into immutable sorted segments (SSTable analogue),
  background-free compaction, TTL expiry and range scans.
* :mod:`repro.storage.partitioner` — partition-key policies: the
  paper's hierarchical SID-prefix partitioner and a hash partitioner
  used as the ablation baseline.
* :mod:`repro.storage.cluster` — a multi-node cluster with replication
  and routing; tracks cross-node traffic so experiments can quantify
  the locality benefit of hierarchical partitioning.
* :mod:`repro.storage.membership` — elastic membership: the
  epoch-versioned partition ownership table and the phi-accrual
  failure detector behind live ``add_node``/``remove_node``.
* :mod:`repro.storage.backend` — the backend-independent API
  (libDCDB's storage abstraction, paper section 5.1) plus simple
  alternative implementations (:class:`~repro.storage.memory.MemoryBackend`,
  :class:`~repro.storage.sqlite.SqliteBackend`) proving the swap works.
* :mod:`repro.storage.csv_io` — CSV import/export used by the
  ``dcdb-csvimport`` and ``dcdb-query`` tools.
"""

from repro.storage.backend import StorageBackend
from repro.storage.node import StorageNode
from repro.storage.partitioner import (
    Partitioner,
    HierarchicalPartitioner,
    HashPartitioner,
)
from repro.storage.cluster import StorageCluster
from repro.storage.membership import (
    ClusterMembership,
    FailureDetector,
    PartitionMove,
)
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SqliteBackend
from repro.storage.csv_io import export_csv, import_csv
from repro.storage.durable import DurableBackend, DurableNode
from repro.storage.persistence import (
    load_cluster,
    load_node,
    save_cluster,
    save_node,
)
from repro.storage.rollup import (
    ROLLUP_TIERS,
    RetentionPolicy,
    RollupConfig,
    RollupEngine,
    RollupTier,
    aggregate_buckets,
    is_rollup_sid,
    rollup_sid,
)

__all__ = [
    "save_node",
    "load_node",
    "save_cluster",
    "load_cluster",
    "DurableBackend",
    "DurableNode",
    "ROLLUP_TIERS",
    "RetentionPolicy",
    "RollupConfig",
    "RollupEngine",
    "RollupTier",
    "aggregate_buckets",
    "is_rollup_sid",
    "rollup_sid",
    "StorageBackend",
    "StorageNode",
    "ClusterMembership",
    "FailureDetector",
    "PartitionMove",
    "Partitioner",
    "HierarchicalPartitioner",
    "HashPartitioner",
    "StorageCluster",
    "MemoryBackend",
    "SqliteBackend",
    "export_csv",
    "import_csv",
]
