"""The distributed storage cluster.

Composes :class:`~repro.storage.node.StorageNode` servers behind the
:class:`~repro.storage.backend.StorageBackend` API with a pluggable
:class:`~repro.storage.partitioner.Partitioner` and synchronous
replication.  Any node "may be used to insert or query data" (paper
section 4.3); in our reproduction the cluster object is that
coordinator role, and it records how many operations had to leave the
contact node — the locality metric that motivates hierarchical
partitioning.

Availability under node churn follows the Cassandra playbook the
paper relies on:

* **writes** retry each replica with capped exponential backoff; a
  replica that stays unreachable gets a *hinted handoff* — the
  coordinator queues the sub-batch and replays it when the replica
  recovers — so one down node does not stall ingest.  Only when every
  replica of some reading fails does the write raise (and the batching
  writer re-queues the batch, see
  :class:`~repro.core.collectagent.writer.BatchingWriter`).
* **reads** fall back to the next live replica instead of erroring;
  a read touching a recovered node first drains its pending hints so
  the series it serves is complete.

Replay is idempotent because the node read/compaction paths dedup on
timestamp (last write wins), so a hint that races a writer retry never
produces duplicate readings.

Metadata (sensor properties, virtual sensor definitions) is replicated
to every node, mirroring Cassandra system tables: it is tiny, read
everywhere and must survive any single node.  Metadata writes to down
nodes are hinted exactly like data writes.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.common.errors import StorageError
from repro.common.timeutil import now_ns
from repro.core.sid import SID_LEVELS, SID_BITS_PER_LEVEL, SensorId
from repro.observability import MetricsRegistry
from repro.observability.spans import SpanRecorder, current_trace, default_recorder
from repro.storage.backend import InsertItem, StorageBackend
from repro.storage.node import StorageNode
from repro.storage.partitioner import HierarchicalPartitioner, Partitioner

logger = logging.getLogger(__name__)

# One process-wide pool shared by every cluster: replica write fan-out
# and subtree read fan-out are both I/O-shaped work (per-node lock
# waits, numpy bulk ops), and a shared pool keeps the thread count
# bounded no matter how many clusters a test process builds.  Created
# lazily so importing this module never spawns threads.
_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    global _pool
    pool = _pool
    if pool is None:
        with _pool_lock:
            pool = _pool
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=min(16, (os.cpu_count() or 2) * 2),
                    thread_name_prefix="dcdb-cluster-io",
                )
                _pool = pool
    return pool


def _node_up(node) -> bool:
    """Liveness of a member: plain nodes are always up; fault proxies
    (``repro.faults.FlakyNode``) expose ``is_up``."""
    return getattr(node, "is_up", True)


# Below this many SIDs a bulk read runs its per-node groups serially:
# submitting a future costs ~tens of microseconds and small in-memory
# groups hold the GIL anyway, so the fan-out only pays for itself on
# large scans (or backends that release the GIL, which get big batches
# from the callers that matter).
_PARALLEL_READ_MIN_SIDS = 256


class StorageCluster(StorageBackend):
    """A replicated, partitioned cluster of storage nodes.

    Parameters
    ----------
    nodes:
        The member servers; at least one.
    partitioner:
        Placement policy; defaults to the paper's hierarchical
        SID-prefix partitioner over two levels.
    replication:
        Number of copies of each reading (capped at the node count).
    contact_node:
        Index of the node this coordinator is "nearest" to; used only
        for the locality statistics.
    max_retries:
        Write attempts per replica beyond the first before the
        coordinator gives up on it and queues a hint.
    backoff_base_s / backoff_cap_s:
        Capped exponential backoff between write retries.
    hint_capacity:
        Per-node bound on hinted readings; beyond it the oldest hints
        are dropped (counted in ``dcdb_storage_hints_dropped_total``).
    sleep:
        Injectable sleep for the retry backoff; tests and simulations
        pass a no-op so chaos runs are instant and deterministic.
    slow_query_s:
        Reads slower than this are logged at WARNING with the ambient
        trace id (0 disables the slow-op log).
    spans:
        Span recorder for replica-write / hint / retry spans; defaults
        to the process-wide recorder.
    """

    def __init__(
        self,
        nodes: list[StorageNode] | None = None,
        partitioner: Partitioner | None = None,
        replication: int = 1,
        contact_node: int = 0,
        metrics: MetricsRegistry | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.005,
        backoff_cap_s: float = 0.1,
        hint_capacity: int = 1_000_000,
        sleep: Callable[[float], None] | None = None,
        slow_query_s: float = 1.0,
        spans: SpanRecorder | None = None,
    ) -> None:
        if nodes is None:
            nodes = [StorageNode("node0")]
        if not nodes:
            raise StorageError("a cluster needs at least one node")
        self.nodes = nodes
        self.partitioner = (
            partitioner
            if partitioner is not None
            else HierarchicalPartitioner(len(nodes))
        )
        if self.partitioner.num_nodes != len(nodes):
            raise StorageError(
                f"partitioner sized for {self.partitioner.num_nodes} nodes, "
                f"cluster has {len(nodes)}"
            )
        if replication < 1:
            raise StorageError("replication factor must be >= 1")
        if max_retries < 0:
            raise StorageError("max_retries must be >= 0")
        self.replication = min(replication, len(nodes))
        # The partitioner and replication factor are fixed for the
        # cluster's lifetime, so the replica list of each sensor is
        # memoized — the lookup sits on every read and write hot path
        # and hash partitioners recompute a digest per call.  Benign
        # races just recompute the same tuple.
        self._replica_cache: dict[SensorId, tuple[int, ...]] = {}
        self.contact_node = contact_node
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.hint_capacity = hint_capacity
        self._sleep = sleep if sleep is not None else time.sleep
        if slow_query_s < 0:
            raise StorageError("slow_query_s must be >= 0")
        self.slow_query_s = slow_query_s
        self.spans = spans if spans is not None else default_recorder()
        # Hinted handoff state: per-node FIFO of writes the node missed
        # while unreachable.  Entries are ("data", [InsertItem...]) or
        # ("meta", key, value); _hints_pending counts queued readings
        # (the gauge) and doubles as the cheap are-there-hints test on
        # the hot paths.
        self._hints: dict[int, deque] = {}
        self._hints_lock = threading.Lock()
        self._hints_pending_count = 0
        self._hints_hwm = 0
        # Locality statistics for the partitioning ablation.  Registry
        # counters stay monotonic; reset_stats() moves the baseline the
        # local_ops/remote_ops views subtract.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._local_ops = self.metrics.counter(
            "dcdb_cluster_local_ops_total", "Operations served by the contact node"
        )
        self._remote_ops = self.metrics.counter(
            "dcdb_cluster_remote_ops_total", "Operations that left the contact node"
        )
        self._write_retries = self.metrics.counter(
            "dcdb_storage_write_retries_total",
            "Replica write attempts retried after a failure",
        )
        self._read_failovers = self.metrics.counter(
            "dcdb_storage_read_failovers_total",
            "Reads that skipped an unavailable replica",
        )
        self._hints_queued = self.metrics.counter(
            "dcdb_storage_hints_queued_total",
            "Readings queued as hinted handoffs for unreachable replicas",
        )
        self._hints_replayed = self.metrics.counter(
            "dcdb_storage_hints_replayed_total",
            "Hinted readings replayed to recovered replicas",
        )
        self._hints_dropped = self.metrics.counter(
            "dcdb_storage_hints_dropped_total",
            "Hinted readings evicted by the per-node hint capacity",
        )
        self.metrics.gauge(
            "dcdb_storage_hints_pending", "Hinted readings awaiting replay"
        ).set_function(lambda: self._hints_pending_count)
        self.metrics.gauge(
            "dcdb_storage_hints_high_watermark",
            "Most hinted readings ever pending at once on this coordinator",
        ).set_function(lambda: self._hints_hwm)
        self._query_latency = self.metrics.histogram(
            "dcdb_cluster_query_seconds",
            "Cluster-layer read latency",
            ("op",),
        )
        self._local_base = 0.0
        self._remote_base = 0.0

    @property
    def local_ops(self) -> int:
        return int(self._local_ops.value - self._local_base)

    @property
    def remote_ops(self) -> int:
        return int(self._remote_ops.value - self._remote_base)

    @property
    def hints_pending(self) -> int:
        """Hinted readings queued for currently-unreachable replicas."""
        return self._hints_pending_count

    def metrics_registries(self) -> list[MetricsRegistry]:
        """This cluster's registry plus every member node's."""
        seen: set[int] = set()
        registries = [self.metrics] + [node.metrics for node in self.nodes]
        return [r for r in registries if not (id(r) in seen or seen.add(id(r)))]

    def node_liveness(self) -> tuple[int, int]:
        """(live, total) member count — the health-endpoint probe."""
        return sum(1 for node in self.nodes if _node_up(node)), len(self.nodes)

    def _observe_query(self, op: str, t0: float, detail: str = "") -> None:
        """Record read latency; slow reads go to the log with the
        ambient trace id so a ``/traces`` lookup can follow up."""
        duration = time.perf_counter() - t0
        self._query_latency.labels(op=op).observe(duration)
        if 0 < self.slow_query_s <= duration:
            trace_id = current_trace()
            logger.warning(
                "slow %s took %.3fs%s",
                op,
                duration,
                f" ({detail})" if detail else "",
                extra={
                    "trace_id": trace_id,
                    "duration_s": round(duration, 6),
                    "op": op,
                },
            )

    # -- write availability --------------------------------------------------

    def _try_write(
        self,
        node_idx: int,
        items: list[InsertItem],
        trace_id: int | None = None,
    ) -> StorageError | None:
        """Write one replica's sub-batch, retrying with capped backoff.

        Returns None on success; on persistent failure the sub-batch is
        queued as a hinted handoff and the final error is returned (so
        the coordinator can propagate the root cause when *every*
        replica fails).  A node that reports itself down is hinted
        immediately — retrying a known crash only burns the backoff
        budget.

        ``trace_id`` is passed explicitly (not read from the ambient
        context) because this runs on shared-pool threads that never
        see the coordinator thread's locals.
        """
        node = self.nodes[node_idx]
        replica = str(getattr(node, "name", node_idx))
        start_ns = now_ns() if trace_id is not None else 0
        last_error: StorageError = StorageError(f"node {replica} is down")
        fault = not _node_up(node)
        attempts_made = 0
        for attempt in range(self.max_retries + 1):
            if not _node_up(node):
                fault = True
                break
            attempts_made = attempt + 1
            try:
                node.insert_batch(items)
                self._account(node_idx)
                if trace_id is not None:
                    self.spans.record(
                        trace_id,
                        "replica-write",
                        "storage",
                        start_ns,
                        now_ns(),
                        replica=replica,
                        batch=len(items),
                        attempts=attempts_made,
                        retries=attempts_made - 1,
                    )
                return None
            except StorageError as exc:
                last_error = exc
                fault = True
                if attempt >= self.max_retries or not _node_up(node):
                    logger.warning(
                        "replica %s failed %d attempts (%s); hinting %d readings",
                        replica,
                        attempt + 1,
                        exc,
                        len(items),
                    )
                    break
                self._write_retries.inc()
                self._sleep(
                    min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** attempt))
                )
        self._queue_hint(node_idx, ("data", items), len(items))
        if trace_id is not None:
            self.spans.record(
                trace_id,
                "hinted-handoff",
                "storage",
                start_ns,
                now_ns(),
                replica=replica,
                batch=len(items),
                attempts=attempts_made,
                faultInjected=fault,
                error=str(last_error),
            )
        return last_error

    def _queue_hint(self, node_idx: int, entry: tuple, readings: int) -> None:
        with self._hints_lock:
            dq = self._hints.get(node_idx)
            if dq is None:
                dq = self._hints.setdefault(node_idx, deque())
            dq.append(entry)
            self._hints_pending_count += readings
            if self._hints_pending_count > self._hints_hwm:
                self._hints_hwm = self._hints_pending_count
            self._hints_queued.inc(readings)
            # Enforce the per-node bound by evicting oldest-first; a
            # replica down for longer than the budget loses its oldest
            # hints (bounded memory beats unbounded growth — the gap is
            # visible in dcdb_storage_hints_dropped_total).
            pending_here = sum(self._entry_size(e) for e in dq)
            while pending_here > self.hint_capacity and len(dq) > 1:
                evicted = dq.popleft()
                size = self._entry_size(evicted)
                pending_here -= size
                self._hints_pending_count -= size
                self._hints_dropped.inc(size)

    @staticmethod
    def _entry_size(entry: tuple) -> int:
        return len(entry[1]) if entry[0] == "data" else 0

    def replay_hints(self, node_idx: int | None = None) -> int:
        """Replay queued hints to recovered nodes; returns readings landed.

        Called explicitly by operators/tests and piggybacked on every
        read so a recovered replica is repaired before it serves (the
        acceptance path: kill, ingest, restart, query -> complete
        series).  Hints for still-down nodes stay queued.
        """
        replayed = 0
        indices = [node_idx] if node_idx is not None else list(self._hints)
        for idx in indices:
            node = self.nodes[idx]
            if not _node_up(node):
                continue
            while True:
                with self._hints_lock:
                    dq = self._hints.get(idx)
                    if not dq:
                        break
                    entry = dq[0]
                try:
                    if entry[0] == "data":
                        node.insert_batch(entry[1])
                    else:
                        node.put_metadata(entry[1], entry[2])
                except StorageError:
                    break  # node flapped again; keep the hint for later
                size = self._entry_size(entry)
                with self._hints_lock:
                    dq = self._hints.get(idx)
                    # Only we pop from this deque's head under replay;
                    # a concurrent replay of the same node may have
                    # raced us, so re-check identity before popping.
                    if dq and dq[0] is entry:
                        dq.popleft()
                        self._hints_pending_count -= size
                        self._hints_replayed.inc(size)
                        replayed += size
        return replayed

    def _repair_before_read(self) -> None:
        if self._hints_pending_count:
            self.replay_hints()

    def _replicas(self, sid: SensorId) -> tuple[int, ...]:
        cached = self._replica_cache.get(sid)
        if cached is None:
            cached = tuple(self.partitioner.replicas_for(sid, self.replication))
            self._replica_cache[sid] = cached
        return cached

    # -- data plane ---------------------------------------------------------

    def insert(self, sid: SensorId, timestamp: int, value: int, ttl_s: int = 0) -> None:
        items = [(sid, timestamp, value, ttl_s)]
        trace_id = current_trace()
        ok = 0
        last_error: StorageError | None = None
        for node_idx in self._replicas(sid):
            error = self._try_write(node_idx, items, trace_id)
            if error is None:
                ok += 1
            else:
                last_error = error
        if ok == 0:
            raise StorageError(
                f"insert failed on all {self.replication} replicas of {sid}: "
                f"{last_error}"
            ) from last_error

    def insert_batch(self, items: Iterable[InsertItem]) -> int:
        """Route a batch grouping by owner to amortize lock traffic.

        Per-node sub-batches are written concurrently on the shared
        module pool, so replicas and partitions overlap instead of
        serializing behind one another; a single-node cluster skips
        the grouping pass entirely and hands the list straight to the
        node (no-copy fast path).

        Failed replicas are retried, then hinted; the call raises only
        if some reading landed on *no* replica at all (the batching
        writer then re-queues the whole batch — replay/retry overlap is
        deduplicated by the nodes' last-write-wins semantics).
        """
        if not isinstance(items, list):
            items = list(items)  # materialized once: retries re-send it
        # Captured once on the coordinator thread: the pool threads the
        # fan-out runs on have their own (empty) ambient context.
        trace_id = current_trace()
        if len(self.nodes) == 1:
            if not items:
                return 0
            error = self._try_write(0, items, trace_id)
            if error is not None:
                raise StorageError(
                    f"insert_batch failed on the only node: {error}"
                ) from error
            return len(items)
        per_node: dict[int, list[InsertItem]] = {}
        count = 0
        replicas_for = self._replicas
        for item in items:
            for node_idx in replicas_for(item[0]):
                target = per_node.get(node_idx)
                if target is None:
                    target = per_node.setdefault(node_idx, [])
                target.append(item)
            count += 1
        if not per_node:
            return 0
        if len(per_node) == 1:
            ((node_idx, node_items),) = per_node.items()
            results = {node_idx: self._try_write(node_idx, node_items, trace_id)}
        else:
            pool = _shared_pool()
            futures = [
                (node_idx, pool.submit(self._try_write, node_idx, node_items, trace_id))
                for node_idx, node_items in per_node.items()
            ]
            results = {node_idx: future.result() for node_idx, future in futures}
        failed = {node_idx for node_idx, err in results.items() if err is not None}
        if failed:
            # A reading is lost only if its entire replica set failed;
            # hints cover partially-failed sets.
            for item in items:
                replicas = replicas_for(item[0])
                if all(node_idx in failed for node_idx in replicas):
                    cause = results[replicas[0]]
                    raise StorageError(
                        f"write failed on all replicas {list(replicas)} of "
                        f"{item[0]}: {cause}"
                    ) from cause
        return count

    def query(self, sid: SensorId, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        """Read from the first *live* replica, failing over down the
        replica list; with synchronous replication (plus hint replay
        for recovered nodes) any replica holds the full series."""
        t0 = time.perf_counter()
        self._repair_before_read()
        replicas = self._replicas(sid)
        last_error: StorageError | None = None
        for node_idx in replicas:
            node = self.nodes[node_idx]
            if not _node_up(node):
                self._read_failovers.inc()
                continue
            try:
                result = node.query(sid, start, end)
            except StorageError as exc:
                last_error = exc
                self._read_failovers.inc()
                continue
            self._account(node_idx)
            self._observe_query("query", t0, detail=str(sid))
            return result
        raise StorageError(
            f"no live replica of {sid} (tried nodes {list(replicas)})"
        ) from last_error

    def query_many(
        self, sids, start: int, end: int
    ) -> dict[SensorId, tuple[np.ndarray, np.ndarray]]:
        """Bulk read across many sensors with one coordinated fan-out.

        SIDs are grouped by their first *live* replica, each group is
        read with a single :meth:`StorageNode.query_many` call (one
        lock round-trip per node instead of one per SID), and on large
        batches groups on different nodes run concurrently on the
        shared cluster pool — the read-side mirror of
        :meth:`insert_batch`'s write fan-out.  Below
        ``_PARALLEL_READ_MIN_SIDS`` the groups run serially on the
        calling thread: dispatching a future costs more than a small
        GIL-bound group saves.

        Failure semantics match looped :meth:`query`: a node that fails
        mid-read triggers per-SID failover to the remaining replicas,
        and only a SID with *no* live replica raises.
        """
        t0 = time.perf_counter()
        self._repair_before_read()
        unique = list(dict.fromkeys(sids))
        # Liveness is sampled once for the whole batch (per-SID getattr
        # probes dominated the grouping pass); a node that dies between
        # the sample and the read is caught by the per-group failover.
        up = [_node_up(node) for node in self.nodes]
        per_node: dict[int, list[SensorId]] = {}
        for sid in unique:
            replicas = self._replicas(sid)
            target = None
            for node_idx in replicas:
                if up[node_idx]:
                    target = node_idx
                    break
                self._read_failovers.inc()
            if target is None:
                raise StorageError(
                    f"no live replica of {sid} (tried nodes {list(replicas)})"
                )
            group = per_node.get(target)
            if group is None:
                group = per_node.setdefault(target, [])
            group.append(sid)
        if not per_node:
            return {}

        def read_group(node_idx: int, group: list[SensorId]):
            node = self.nodes[node_idx]
            bulk = getattr(node, "query_many", None)
            if bulk is not None:
                return bulk(group, start, end)
            return {sid: node.query(sid, start, end) for sid in group}

        outcomes: dict[int, dict | StorageError] = {}
        if len(per_node) == 1 or len(unique) < _PARALLEL_READ_MIN_SIDS:
            for node_idx, group in per_node.items():
                try:
                    outcomes[node_idx] = read_group(node_idx, group)
                except StorageError as exc:
                    outcomes[node_idx] = exc
        else:
            # The largest group runs on the calling thread while the
            # rest are in flight — one fewer pool round-trip and the
            # coordinator does work instead of blocking on futures.
            pool = _shared_pool()
            ordered = sorted(per_node.items(), key=lambda kv: len(kv[1]))
            inline_idx, inline_group = ordered[-1]
            futures = [
                (node_idx, pool.submit(read_group, node_idx, group))
                for node_idx, group in ordered[:-1]
            ]
            try:
                outcomes[inline_idx] = read_group(inline_idx, inline_group)
            except StorageError as exc:
                outcomes[inline_idx] = exc
            for node_idx, future in futures:
                try:
                    outcomes[node_idx] = future.result()
                except StorageError as exc:
                    outcomes[node_idx] = exc
        results: dict[SensorId, tuple[np.ndarray, np.ndarray]] = {}
        for node_idx, group in per_node.items():
            outcome = outcomes[node_idx]
            if isinstance(outcome, StorageError):
                # The grouped replica failed under us: fail over SID by
                # SID so sensors with other live replicas still return.
                self._read_failovers.inc()
                for sid in group:
                    results[sid] = self.query(sid, start, end)
            else:
                results.update(outcome)
                self._account_many(node_idx, len(group))
        self._observe_query("query_many", t0, detail=f"{len(unique)} sids")
        return {sid: results[sid] for sid in unique}

    def query_prefix(
        self, prefix: int, levels: int, start: int, end: int
    ) -> Iterator[tuple[SensorId, np.ndarray, np.ndarray]]:
        """Scan a hierarchy subtree.

        With the hierarchical partitioner and a query at or below the
        partition depth, only the owning node is touched ("directing
        them directly to the respective server", paper section 4.3).
        If that owner is unavailable — or for partitioners without
        prefix locality — the scan fans out to every live node
        *concurrently* on the shared cluster pool, each node serving
        its whole subtree through one bulk :meth:`StorageNode.query_many`
        call; the replica dedup pass keeps each sensor counted once and
        runs in node order, so the result is deterministic regardless
        of scan completion order.
        """
        t0 = time.perf_counter()
        self._repair_before_read()
        keep_bits = SID_BITS_PER_LEVEL * levels
        mask = (
            ((1 << keep_bits) - 1) << (SID_LEVELS * SID_BITS_PER_LEVEL - keep_bits)
            if keep_bits
            else 0
        )
        single = None
        node_for_prefix = getattr(self.partitioner, "node_for_prefix", None)
        if node_for_prefix is not None:
            single = node_for_prefix(prefix, levels)
        if single is not None and not _node_up(self.nodes[single]):
            # Owner down: replicas of its sensors live on other nodes,
            # so fall back to the full fan-out rather than erroring.
            self._read_failovers.inc()
            single = None
        node_indices = [single] if single is not None else list(range(len(self.nodes)))

        def scan(node_idx: int):
            """One node's subtree: (matching sids, per-sid series)."""
            node = self.nodes[node_idx]
            if not _node_up(node):
                return None  # down: skip, replicas cover its sensors
            try:
                matching = [
                    sid for sid in node.sids() if (sid.value & mask) == prefix
                ]
                bulk = getattr(node, "query_many", None)
                if bulk is not None:
                    series = bulk(matching, start, end)
                else:
                    series = {sid: node.query(sid, start, end) for sid in matching}
            except StorageError:
                return "failed"
            return matching, series

        if len(node_indices) == 1:
            outcomes = [scan(node_indices[0])]
        else:
            # First node scans on the calling thread, the rest on the
            # pool: the coordinator contributes a scan instead of
            # idling on futures.
            pool = _shared_pool()
            futures = [pool.submit(scan, idx) for idx in node_indices[1:]]
            outcomes = [scan(node_indices[0])]
            outcomes.extend(future.result() for future in futures)
        results: list[tuple[SensorId, np.ndarray, np.ndarray]] = []
        seen: set[SensorId] = set()
        for node_idx, outcome in zip(node_indices, outcomes):
            if outcome is None:
                continue
            if outcome == "failed":
                self._read_failovers.inc()
                continue
            matching, series = outcome
            self._account(node_idx)
            for sid in matching:
                if sid in seen:
                    continue
                seen.add(sid)
                ts, vals = series[sid]
                if ts.size:
                    results.append((sid, ts, vals))
        self._observe_query("query_prefix", t0, detail=f"prefix={prefix:#x}")
        return iter(results)

    def sids(self) -> list[SensorId]:
        self._repair_before_read()
        merged: set[SensorId] = set()
        for node in self.nodes:
            if not _node_up(node):
                continue
            try:
                merged.update(node.sids())
            except StorageError:
                continue
        return sorted(merged)

    def delete_before(self, sid: SensorId, cutoff: int) -> int:
        """Best-effort on live replicas; a down replica catches up via
        TTL/compaction rather than a replayed delete."""
        removed = 0
        for node_idx in self._replicas(sid):
            node = self.nodes[node_idx]
            if not _node_up(node):
                continue
            try:
                removed = max(removed, node.delete_before(sid, cutoff))
            except StorageError:
                continue
        return removed

    # -- metadata (replicated everywhere) -----------------------------------

    def put_metadata(self, key: str, value: str) -> None:
        ok = 0
        for node_idx, node in enumerate(self.nodes):
            try:
                if not _node_up(node):
                    raise StorageError(f"node {node_idx} down")
                node.put_metadata(key, value)
                ok += 1
            except StorageError:
                self._queue_hint(node_idx, ("meta", key, value), 0)
        if ok == 0:
            raise StorageError(f"metadata write {key!r} failed on every node")

    def get_metadata(self, key: str) -> str | None:
        return self._metadata_read(lambda node: node.get_metadata(key))

    def metadata_keys(self, prefix: str = "") -> list[str]:
        return self._metadata_read(lambda node: node.metadata_keys(prefix))

    def _metadata_read(self, fn):
        """Read from the contact node, failing over round-robin."""
        self._repair_before_read()
        n = len(self.nodes)
        last_error: StorageError | None = None
        for offset in range(n):
            node = self.nodes[(self.contact_node + offset) % n]
            if not _node_up(node):
                self._read_failovers.inc()
                continue
            try:
                return fn(node)
            except StorageError as exc:
                last_error = exc
                self._read_failovers.inc()
        raise StorageError("metadata read failed on every node") from last_error

    # -- maintenance ----------------------------------------------------------

    def compact(self) -> None:
        for node in self.nodes:
            if _node_up(node):
                node.compact()

    def flush(self) -> None:
        for node in self.nodes:
            if _node_up(node):
                node.flush()

    def commit_durable(self) -> bool:
        """Group-commit barrier across durable members.

        Forwards to every live node that implements ``commit_durable``
        (the :class:`~repro.storage.durable.DurableNode` WAL sync);
        in-memory members ignore it.  Returns True if any node synced.
        """
        synced = False
        for node in self.nodes:
            commit = getattr(node, "commit_durable", None)
            if commit is not None and _node_up(node):
                synced = commit() or synced
        return synced

    def close(self) -> None:
        for node in self.nodes:
            close = getattr(node, "close", None)
            if close is not None:
                close()

    @classmethod
    def open_durable(
        cls,
        data_dir,
        num_nodes: int = 1,
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        flush_threshold: int = 100_000,
        clock=None,
        metrics: MetricsRegistry | None = None,
        **cluster_kwargs,
    ) -> "StorageCluster":
        """Build a cluster of durable nodes under one data directory.

        Each replica gets its own subdirectory (``<data_dir>/node<i>``)
        so per-node WALs and segment files never interleave — reopening
        the same directory recovers every member independently.
        """
        from pathlib import Path

        from repro.storage.durable import DurableNode

        root = Path(data_dir)
        nodes = [
            DurableNode(
                f"node{i}",
                data_dir=root / f"node{i}",
                fsync=fsync,
                fsync_interval_s=fsync_interval_s,
                flush_threshold=flush_threshold,
                clock=clock,
                metrics=metrics,
            )
            for i in range(num_nodes)
        ]
        return cls(nodes, metrics=metrics, **cluster_kwargs)

    # -- stats ------------------------------------------------------------------

    def _account(self, node_idx: int) -> None:
        if node_idx == self.contact_node:
            self._local_ops.inc()
        else:
            self._remote_ops.inc()

    def _account_many(self, node_idx: int, count: int) -> None:
        """Bulk accounting: one op per SID served, matching what the
        same SIDs would have recorded through looped query()."""
        if count <= 0:
            return
        if node_idx == self.contact_node:
            self._local_ops.inc(count)
        else:
            self._remote_ops.inc(count)

    def reset_stats(self) -> None:
        self._local_base = self._local_ops.value
        self._remote_base = self._remote_ops.value

    @property
    def row_count(self) -> int:
        """Total rows across all nodes (replicas counted)."""
        return sum(node.row_count for node in self.nodes)
